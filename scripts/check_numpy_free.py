#!/usr/bin/env python
"""Verify the numpy-free footprint: big-int mining + serving end to end.

The mining + serving core must stay functional with no third-party
packages at all — the dense kernel is an optional accelerator, never a
dependency (`docs/ALGORITHMS.md` §9).  This script *blocks* numpy and
scipy imports before touching ``repro`` (so it exercises the fallback
even on machines that have them installed), then:

* imports the package and checks the kernel reports numpy as absent,
* mines a small hand-built database on ``backend="auto"`` (which must
  fall back to big-int) and on an explicit ``backend="bigint"``,
  asserting identical non-empty rule sets,
* checks an explicit ``backend="dense"`` fails loudly,
* checks the out-of-core ``backend="ooc"`` fails just as loudly (its
  memmapped store is the dense kernel's representation on disk),
* serves recommendations for every training basket through the compiled
  inverted index,
* exercises the shape-split columnar rule store: indexed audit queries
  must match the naive scan, and a format-v3 save/load round trip must
  reproduce the ranked view — all on ``array``-module columns with no
  numpy in sight,
* serves ranked top-k portfolios (batched vs naive parity) and plans a
  small campaign where greedy and exact selection must agree — the
  portfolio layer is plain-dict arithmetic and must survive a
  numpy-free install too.

Run from the repository root::

    PYTHONPATH=src python scripts/check_numpy_free.py

Exits non-zero on any failure.  The CI perf-smoke workflow runs it on a
leg with no numpy installed; locally the import blocker makes that
environment reproducible anywhere.
"""

from __future__ import annotations

import sys


class _BlockNumpy:
    """Meta-path hook that makes numpy/scipy imports fail."""

    BLOCKED = ("numpy", "scipy")

    def find_spec(self, name, path=None, target=None):
        root = name.partition(".")[0]
        if root in self.BLOCKED:
            raise ImportError(f"{name} is blocked: simulating a numpy-free install")
        return None


def main() -> None:
    for module_name in list(sys.modules):
        if module_name.partition(".")[0] in _BlockNumpy.BLOCKED:
            raise SystemExit(
                f"{module_name} already imported; run this script directly, "
                "not from a process that loaded numpy"
            )
    sys.meta_path.insert(0, _BlockNumpy())

    from repro import (
        Item,
        ItemCatalog,
        MinerConfig,
        MOAHierarchy,
        MPFRecommender,
        PromotionCode,
        Sale,
        SavingMOA,
        Transaction,
        TransactionDB,
        ConceptHierarchy,
    )
    from repro.core.engine.kernel import HAVE_NUMPY, resolve_backend
    from repro.core.mining import mine_rules
    from repro.errors import MiningError

    assert not HAVE_NUMPY, "numpy import should have been blocked"
    assert resolve_backend("auto", 10**9) == "bigint"

    def promo(code: str, price: float, cost: float) -> PromotionCode:
        return PromotionCode(code=code, price=price, cost=cost)

    catalog = ItemCatalog.from_items(
        [
            Item("Perfume", (promo("P1", 10.0, 6.0),)),
            Item("Bread", (promo("P1", 2.0, 1.0), promo("P2", 2.4, 1.0))),
            Item(
                "Sunchip",
                (promo("L", 3.8, 2.0), promo("M", 4.5, 2.0), promo("H", 5.0, 2.0)),
                is_target=True,
            ),
        ]
    )
    hierarchy = ConceptHierarchy.for_catalog(catalog, {"Grocery": ["Bread"]})
    transactions = [
        Transaction(
            tid,
            (Sale("Perfume", "P1"),) if tid % 2 else (Sale("Bread", "P1"),),
            Sale("Sunchip", "H" if tid % 2 else "L"),
        )
        for tid in range(80)
    ]
    db = TransactionDB(catalog=catalog, transactions=transactions)
    moa = MOAHierarchy(catalog=catalog, hierarchy=hierarchy, use_moa=True)

    config = MinerConfig(min_support=0.05, max_body_size=2)
    auto = mine_rules(db, moa, SavingMOA(), config)
    bigint = mine_rules(
        db, moa, SavingMOA(), MinerConfig(min_support=0.05, max_body_size=2, backend="bigint")
    )
    assert auto.all_rules, "the fallback mine produced no rules"
    signature = lambda result: [  # noqa: E731 - tiny local comparator
        (s.rule.order, s.stats.n_hits, s.stats.rule_profit)
        for s in result.all_rules
    ]
    assert signature(auto) == signature(bigint), "auto != bigint without numpy"

    try:
        mine_rules(
            db,
            moa,
            SavingMOA(),
            MinerConfig(min_support=0.05, backend="dense"),
        )
    except MiningError as error:
        assert "numpy" in str(error)
    else:
        raise AssertionError("backend='dense' without numpy must raise")

    try:
        mine_rules(
            db,
            moa,
            SavingMOA(),
            MinerConfig(min_support=0.05, backend="ooc"),
        )
    except MiningError as error:
        assert "numpy" in str(error)
    else:
        raise AssertionError("backend='ooc' without numpy must raise")

    recommender = MPFRecommender(auto.all_rules, moa)
    served = sum(
        recommender.recommendation_rule(t.nontarget_sales) is not None
        for t in db
    )
    assert served == len(db), "serving must cover every training basket"

    # The columnar rule store is stdlib `array` columns end to end: it
    # must import, query, and round-trip through format v3 with numpy
    # still blocked.
    import tempfile
    from pathlib import Path

    from repro.core.rulestore import SHAPES, RuleStore
    from repro.data.model_io import load_model, save_model

    store = recommender.rule_store
    assert isinstance(store, RuleStore)
    assert sum(store.shape_counts().values()) == len(recommender.ranked_rules)
    queries = [{}, {"min_conf": 0.5}, {"top": 3}]
    queries += [{"shape": shape} for shape in SHAPES]
    for kwargs in queries:
        indexed = [h.rank for h in store.query(**kwargs)]
        naive = [h.rank for h in store.query(naive=True, **kwargs)]
        assert indexed == naive, f"query {kwargs} diverged without numpy"
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.json"
        save_model(recommender, path)  # v3: persists the columnar store
        restored = load_model(path)
    assert list(restored.ranked_rules) == list(recommender.ranked_rules)

    # Top-k portfolios and the campaign planner are stdlib arithmetic on
    # top of serving; both must keep working with numpy blocked.
    from repro.campaign import plan_campaign

    baskets = [t.nontarget_sales for t in db]
    batched = recommender.recommend_top_k_many(baskets, 3)
    for basket, indexed in zip(baskets, batched):
        naive = recommender.recommend_top_k(basket, 3, naive=True)
        pairs = [(r.item_id, r.promo_code) for r in indexed]
        assert pairs == [(r.item_id, r.promo_code) for r in naive], (
            "top-k batched vs naive diverged without numpy"
        )
    greedy_plan = plan_campaign(recommender, baskets, method="greedy")
    exact_plan = plan_campaign(recommender, baskets, method="exact")
    assert greedy_plan.offers == exact_plan.offers, (
        "greedy and exact campaign plans diverged on the small world"
    )
    assert exact_plan.expected_profit > 0.0

    print(
        f"numpy-free fallback OK: {len(auto.all_rules)} rules mined on "
        f"big-int backend, {served}/{len(db)} baskets served, "
        f"{len(queries)} store queries + v3 round trip verified, "
        f"top-3 parity on {len(baskets)} baskets, campaign plan "
        f"${exact_plan.expected_profit:.2f} (greedy == exact)"
    )


if __name__ == "__main__":
    main()
