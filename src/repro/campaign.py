"""Campaign planning: from per-basket offers to a store-wide portfolio.

The paper turns mined patterns into *actions* one basket at a time; a
store manager plans one level up: "out of every promotion I could run,
which few should the whole store actually run this week, given a budget
and limited stock?"  This module answers that question in the style of
the Generalized PROFSET model (optimal product selection from frequent
sets): aggregate the per-basket expected profits of every candidate
offer across a workload of baskets, then select the portfolio that
maximizes total expected profit under budget and inventory constraints.

The per-basket kernel is :func:`repro.whatif.what_if`: for each distinct
basket it prices every candidate ``⟨target item, promotion code⟩`` as
``E[profit] = acceptance × profit_per_package × quantity``.  Baskets are
deduplicated by :func:`~repro.core.rule_index.basket_key` and weighted
by multiplicity, so a workload of a million baskets costs one ``what_if``
per *distinct* basket.

A campaign ``S`` (a set of offers) serves each basket the best selected
offer, so its value is::

    f(S) = Σ_baskets w_b · max_{o ∈ S} E[profit_b(o)]       (max ∅ = 0)

``f`` is monotone and submodular (a weighted maximum-coverage
objective), which buys the planner its guarantee: under a cardinality
budget the lazy greedy sweep is within ``1 − 1/e ≈ 0.63`` of optimal,
and every run also carries a *data-dependent certificate* — by
submodularity ``f(OPT) ≤ f(S) + Σ top-cap marginal gains at S`` — which
:class:`CampaignPlan` reports as ``profit_upper_bound``.  Inventory
constraints only shrink the feasible set, so the certificate (computed
on the unconstrained relaxation) stays a valid upper bound.  At small
scale the planner switches to exhaustive search and returns the exact
optimum; the gated benchmark ``benchmarks/test_topk_campaign.py``
asserts greedy ≥ its bound's implied floor and exact == brute force.

Everything here is stdlib-only; the module must import and plan with
numpy blocked (``scripts/check_numpy_free.py`` asserts it).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.mpf import MPFRecommender
from repro.core.rule_index import basket_key
from repro.core.sales import Sale, TransactionDB
from repro.errors import ValidationError
from repro.obs import trace as obs
from repro.whatif import what_if

__all__ = ["PlannedOffer", "CampaignPlan", "plan_campaign"]

#: ``method="auto"`` runs exhaustive search only while the subset count
#: stays below this; beyond it the greedy sweep (with its certificate)
#: takes over.
EXACT_SUBSET_LIMIT = 20_000

#: Profit comparisons tolerate float noise at this absolute scale.
_TOL = 1e-9


@dataclass(frozen=True)
class PlannedOffer:
    """One selected offer with its share of the campaign's expectation."""

    item_id: str
    promo_code: str
    #: Expected profit over the baskets this offer is assigned (its share
    #: of the plan's total).
    expected_profit: float
    #: Number of workload baskets assigned to this offer.
    n_baskets: int
    #: Expected base units consumed: Σ acceptance × quantity × packing —
    #: the demand the inventory constraint meters.
    expected_units: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready row used by the CLI ``--json`` and ``POST /plan``."""
        return {
            "item": self.item_id,
            "promo": self.promo_code,
            "expected_profit": self.expected_profit,
            "n_baskets": self.n_baskets,
            "expected_units": self.expected_units,
        }

    def describe(self) -> str:
        """One-line human rendering of this offer's expected contribution."""
        return (
            f"{self.item_id} @ {self.promo_code}: "
            f"E[profit]=${self.expected_profit:.2f} over "
            f"{self.n_baskets} baskets (≈{self.expected_units:.1f} units)"
        )


@dataclass(frozen=True)
class CampaignPlan:
    """A selected promotion portfolio with its optimality evidence."""

    offers: tuple[PlannedOffer, ...]
    #: Total expected campaign profit ``f(S)``.
    expected_profit: float
    #: Certified upper bound on any feasible portfolio's profit — equals
    #: ``expected_profit`` when ``method == "exact"``.
    profit_upper_bound: float
    #: ``"greedy"`` or ``"exact"`` — what the selection actually ran.
    method: str
    n_baskets: int
    n_distinct_baskets: int
    n_candidates: int
    max_offers: int | None
    budget: float | None
    inventory: dict[str, float]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form served by the CLI ``--json`` and ``POST /plan``."""
        return {
            "offers": [offer.to_dict() for offer in self.offers],
            "expected_profit": self.expected_profit,
            "profit_upper_bound": self.profit_upper_bound,
            "method": self.method,
            "n_baskets": self.n_baskets,
            "n_distinct_baskets": self.n_distinct_baskets,
            "n_candidates": self.n_candidates,
            "max_offers": self.max_offers,
            "budget": self.budget,
            "inventory": dict(self.inventory),
        }

    def describe(self) -> str:
        """Multi-line human rendering for reports and the CLI."""
        lines = [
            f"campaign plan ({self.method}): {len(self.offers)} offers, "
            f"E[profit]=${self.expected_profit:.2f} "
            f"(certified ≤ ${self.profit_upper_bound:.2f}) over "
            f"{self.n_baskets} baskets",
        ]
        lines.extend(f"  {offer.describe()}" for offer in self.offers)
        return "\n".join(lines)


@dataclass(frozen=True)
class _Scored:
    """The aggregated what-if scores of one candidate offer.

    ``postings`` holds ``(distinct-basket index, expected profit,
    expected units)`` triples for the baskets where the offer has a
    positive expectation — a sparse column of the basket × offer matrix.
    """

    pair: tuple[str, str]
    postings: tuple[tuple[int, float, float], ...]


def _normalize_baskets(
    baskets: TransactionDB | Sequence[Sequence[Sale]],
) -> list[Sequence[Sale]]:
    if isinstance(baskets, TransactionDB):
        return [t.nontarget_sales for t in baskets]
    return list(baskets)


def _score_candidates(
    recommender: MPFRecommender, baskets: Sequence[Sequence[Sale]]
) -> tuple[list[int], list[_Scored]]:
    """Run the what-if kernel once per distinct basket.

    Returns the per-distinct-basket workload weights and one sparse
    scored column per candidate offer that can earn anything at all,
    in deterministic ``(item, promo)`` order.
    """
    weights: list[int] = []
    representatives: list[Sequence[Sale]] = []
    index_of: dict[frozenset[tuple[str, str]], int] = {}
    for basket in baskets:
        key = basket_key(basket)
        at = index_of.get(key)
        if at is None:
            index_of[key] = len(representatives)
            representatives.append(basket)
            weights.append(1)
        else:
            weights[at] += 1
    catalog = recommender.moa.catalog
    columns: dict[tuple[str, str], list[tuple[int, float, float]]] = {}
    for b_idx, basket in enumerate(representatives):
        for option in what_if(recommender, basket):
            if option.expected_profit <= _TOL:
                continue
            packing = catalog.promotion(
                option.item_id, option.promo_code
            ).packing
            units = (
                option.acceptance_estimate
                * option.quantity_estimate
                * packing
            )
            columns.setdefault(
                (option.item_id, option.promo_code), []
            ).append((b_idx, option.expected_profit, units))
    scored = [
        _Scored(pair=pair, postings=tuple(columns[pair]))
        for pair in sorted(columns)
    ]
    return weights, scored


def _assignment(
    selected: Sequence[_Scored], n_baskets: int
) -> list[tuple[float, float, tuple[str, str]] | None]:
    """Which selected offer serves each distinct basket.

    Deterministic: the highest expectation wins, ties by lexicographic
    ``(item, promo)``.  Baskets no selected offer can earn on get
    ``None`` and contribute nothing (to profit or to inventory).
    """
    best: list[tuple[float, float, tuple[str, str]] | None] = [
        None
    ] * n_baskets
    for offer in selected:
        for b_idx, profit, units in offer.postings:
            incumbent = best[b_idx]
            if (
                incumbent is None
                or profit > incumbent[0] + _TOL
                or (
                    abs(profit - incumbent[0]) <= _TOL
                    and offer.pair < incumbent[2]
                )
            ):
                best[b_idx] = (profit, units, offer.pair)
    return best


def _plan_value(
    selected: Sequence[_Scored], weights: Sequence[int]
) -> float:
    assigned = _assignment(selected, len(weights))
    return sum(
        weights[b] * entry[0]
        for b, entry in enumerate(assigned)
        if entry is not None
    )


def _feasible(
    selected: Sequence[_Scored],
    weights: Sequence[int],
    inventory: Mapping[str, float],
) -> bool:
    """Whether the whole-set assignment respects every inventory cap."""
    if not inventory:
        return True
    demand: dict[str, float] = {}
    for b, entry in enumerate(_assignment(selected, len(weights))):
        if entry is None:
            continue
        _, units, (item, _) = entry
        if item in inventory:
            demand[item] = demand.get(item, 0.0) + weights[b] * units
    return all(
        demand.get(item, 0.0) <= cap + _TOL
        for item, cap in inventory.items()
    )


def _marginal_gain(
    offer: _Scored,
    current_best: Sequence[float],
    weights: Sequence[int],
) -> float:
    """``Δ(offer | S)`` against the per-basket values ``S`` already earns."""
    return sum(
        weights[b] * (profit - current_best[b])
        for b, profit, _ in offer.postings
        if profit > current_best[b] + _TOL
    )


def plan_campaign(
    recommender: MPFRecommender,
    baskets: TransactionDB | Sequence[Sequence[Sale]],
    max_offers: int | None = None,
    budget: float | None = None,
    offer_cost: float = 1.0,
    inventory: Mapping[str, float] | None = None,
    method: str = "auto",
) -> CampaignPlan:
    """Select the promotion portfolio to run store-wide.

    Parameters
    ----------
    recommender:
        The fitted MPF recommender whose rules price the offers (the
        ``what_if`` kernel runs against it).
    baskets:
        The workload to plan for: a :class:`TransactionDB` (its
        non-target sales are the baskets) or an explicit sequence of
        baskets — typically a recent traffic sample.
    max_offers:
        Cardinality budget: run at most this many distinct offers.
    budget:
        Dollar budget; together with ``offer_cost`` (the flat cost of
        running one promotion, default ``1.0``) it caps the portfolio at
        ``⌊budget / offer_cost⌋`` offers.  Both caps may be given; the
        tighter one binds.  With neither, every earning candidate may run.
    inventory:
        Per-item caps on *expected base units* consumed by the campaign
        (``Σ acceptance × quantity × packing`` over assigned baskets).
        Items absent from the mapping are unconstrained.
    method:
        ``"greedy"`` (lazy greedy + certificate), ``"exact"``
        (exhaustive over every feasible subset within the cap — raises
        when the subset count exceeds :data:`EXACT_SUBSET_LIMIT`), or
        ``"auto"`` (exact while affordable, greedy beyond).
    """
    if method not in ("auto", "greedy", "exact"):
        raise ValidationError(
            f"method must be 'auto', 'greedy' or 'exact', got {method!r}"
        )
    if max_offers is not None and max_offers < 1:
        raise ValidationError(
            f"max_offers must be at least 1, got {max_offers}"
        )
    if budget is not None and budget < 0:
        raise ValidationError(f"budget must be >= 0, got {budget}")
    if offer_cost <= 0:
        raise ValidationError(f"offer_cost must be positive, got {offer_cost}")
    inventory = dict(inventory or {})
    for item, cap in inventory.items():
        if cap < 0:
            raise ValidationError(
                f"inventory for {item!r} must be >= 0, got {cap}"
            )
    basket_list = _normalize_baskets(baskets)
    if not basket_list:
        raise ValidationError("campaign planning needs at least one basket")

    with obs.span("campaign", method=method):
        with obs.span("campaign.score"):
            weights, candidates = _score_candidates(recommender, basket_list)
        obs.count("campaign.baskets", len(basket_list))
        obs.count("campaign.distinct_baskets", len(weights))
        obs.count("campaign.candidates", len(candidates))

        cap = len(candidates)
        if max_offers is not None:
            cap = min(cap, max_offers)
        if budget is not None:
            cap = min(cap, int(budget / offer_cost + _TOL))

        n_subsets = sum(
            math.comb(len(candidates), r) for r in range(cap + 1)
        )
        if method == "exact" and n_subsets > EXACT_SUBSET_LIMIT:
            raise ValidationError(
                f"exact search over {n_subsets} subsets exceeds the "
                f"{EXACT_SUBSET_LIMIT}-subset limit; use method='greedy' "
                f"(its plan carries a certified upper bound) or tighten "
                f"max_offers/budget"
            )
        resolved = (
            "exact"
            if method == "exact"
            or (method == "auto" and n_subsets <= EXACT_SUBSET_LIMIT)
            else "greedy"
        )

        with obs.span("campaign.select", resolved=resolved):
            if resolved == "exact":
                selected, value = _select_exact(
                    candidates, weights, cap, inventory
                )
                upper = value
            else:
                selected, value, upper = _select_greedy(
                    candidates, weights, cap, inventory
                )
        obs.count("campaign.selected", len(selected))

    offers = _planned_offers(selected, weights)
    return CampaignPlan(
        offers=offers,
        expected_profit=value,
        profit_upper_bound=upper,
        method=resolved,
        n_baskets=len(basket_list),
        n_distinct_baskets=len(weights),
        n_candidates=len(candidates),
        max_offers=max_offers,
        budget=budget,
        inventory=inventory,
    )


def _select_greedy(
    candidates: Sequence[_Scored],
    weights: Sequence[int],
    cap: int,
    inventory: Mapping[str, float],
) -> tuple[list[_Scored], float, float]:
    """Greedy sweep plus the submodular certificate.

    Each round adds the feasible offer with the largest marginal gain
    (ties by lexicographic pair).  The returned upper bound is
    ``f(S) + Σ top-cap marginal gains at S`` over the *unselected*
    offers, ignoring inventory — by submodularity no feasible portfolio
    within the cap can beat it.
    """
    selected: list[_Scored] = []
    current_best = [0.0] * len(weights)
    rounds = 0
    while len(selected) < cap:
        rounds += 1
        best_offer: _Scored | None = None
        best_gain = 0.0
        for offer in candidates:
            if any(offer.pair == s.pair for s in selected):
                continue
            gain = _marginal_gain(offer, current_best, weights)
            if gain <= _TOL or gain < best_gain - _TOL:
                continue
            if (
                best_offer is not None
                and abs(gain - best_gain) <= _TOL
                and offer.pair > best_offer.pair
            ):
                continue
            if inventory and not _feasible(
                [*selected, offer], weights, inventory
            ):
                continue
            best_offer, best_gain = offer, gain
        if best_offer is None:
            break
        selected.append(best_offer)
        for b, profit, _ in best_offer.postings:
            if profit > current_best[b]:
                current_best[b] = profit
    obs.count("campaign.greedy_rounds", rounds)
    value = _plan_value(selected, weights)
    remaining = sorted(
        (
            _marginal_gain(offer, current_best, weights)
            for offer in candidates
            if not any(offer.pair == s.pair for s in selected)
        ),
        reverse=True,
    )
    upper = value + sum(remaining[:cap])
    return selected, value, upper


def _select_exact(
    candidates: Sequence[_Scored],
    weights: Sequence[int],
    cap: int,
    inventory: Mapping[str, float],
) -> tuple[list[_Scored], float]:
    """Exhaustive search over every feasible subset within the cap.

    Deterministic preference: highest value, then fewer offers, then
    lexicographic pairs — so an offer that earns nothing extra never
    pads the optimum.
    """
    best: tuple[float, int, tuple[tuple[str, str], ...]] = (0.0, 0, ())
    best_subset: list[_Scored] = []
    examined = 0
    for r in range(cap + 1):
        for combo in itertools.combinations(candidates, r):
            examined += 1
            if inventory and not _feasible(combo, weights, inventory):
                continue
            value = _plan_value(combo, weights)
            key = (value, -len(combo), tuple(s.pair for s in combo))
            if (
                value > best[0] + _TOL
                or (
                    abs(value - best[0]) <= _TOL
                    and (key[1], key[2]) > (best[1], best[2])
                )
            ):
                best = (value, -len(combo), key[2])
                best_subset = list(combo)
    obs.count("campaign.exact_subsets", examined)
    return best_subset, best[0]


def _planned_offers(
    selected: Sequence[_Scored], weights: Sequence[int]
) -> tuple[PlannedOffer, ...]:
    """Fold the final assignment into per-offer stats.

    Selected offers every basket deserted (a later pick dominates them
    everywhere) carry nothing and are dropped from the reported plan.
    """
    totals: dict[tuple[str, str], list[float]] = {}
    for b, entry in enumerate(_assignment(selected, len(weights))):
        if entry is None:
            continue
        profit, units, pair = entry
        stats = totals.setdefault(pair, [0.0, 0, 0.0])
        stats[0] += weights[b] * profit
        stats[1] += weights[b]
        stats[2] += weights[b] * units
    offers = [
        PlannedOffer(
            item_id=pair[0],
            promo_code=pair[1],
            expected_profit=stats[0],
            n_baskets=int(stats[1]),
            expected_units=stats[2],
        )
        for pair, stats in totals.items()
    ]
    offers.sort(key=lambda o: (-o.expected_profit, o.item_id, o.promo_code))
    return tuple(offers)
