"""repro — a reproduction of "Profit Mining: From Patterns to Actions".

Wang, Zhou & Han (EDBT 2002) proposed *profit mining*: build, from past
transactions, a recommender of (target item, promotion code) pairs that
maximizes net profit on future customers.  This package implements the full
pipeline — the MOA(H) generalization hierarchy, profit-sensitive
generalized association-rule mining, the MPF recommender, and cut-optimal
pruning with pessimistic profit estimation — together with the baselines
(kNN, MPI, CONF±MOA), the IBM Quest-style synthetic data generator and the
complete evaluation harness of the paper's Section 5.

Quickstart::

    from repro import ProfitMiner, make_dataset_i

    dataset = make_dataset_i(n_transactions=2000, n_items=100, n_patterns=50)
    miner = ProfitMiner(dataset.hierarchy).fit(dataset.db)
    basket = dataset.db[0].nontarget_sales
    print(miner.recommend(basket).describe())

The top-level names are resolved lazily (PEP 562): the mining + serving
core (``repro.core``) depends only on the standard library, while the
baselines, synthetic data generators and evaluation harness need numpy
(and scipy).  Deferring their import keeps ``import repro`` — and the
big-int mining backend behind it — functional on a numpy-free install;
touching a numpy-backed name then raises the usual ``ImportError`` at
the point of use.
"""

from importlib import import_module

__version__ = "1.0.0"

#: Public name → defining submodule, imported on first attribute access.
_EXPORTS = {
    "DecisionTreeRecommender": "repro.baselines",
    "KNNRecommender": "repro.baselines",
    "MPIRecommender": "repro.baselines",
    "BinaryProfit": "repro.core",
    "BuyingMOA": "repro.core",
    "ConceptHierarchy": "repro.core",
    "GSale": "repro.core",
    "Item": "repro.core",
    "ItemCatalog": "repro.core",
    "MinerConfig": "repro.core",
    "MOAHierarchy": "repro.core",
    "MPFRecommender": "repro.core",
    "ProfitMiner": "repro.core",
    "ProfitMinerConfig": "repro.core",
    "PromotionCode": "repro.core",
    "PruneConfig": "repro.core",
    "Recommendation": "repro.core",
    "Recommender": "repro.core",
    "QueryHit": "repro.core",
    "RankedView": "repro.core",
    "Rule": "repro.core",
    "RuleStats": "repro.core",
    "RuleStore": "repro.core",
    "Sale": "repro.core",
    "SavingMOA": "repro.core",
    "ScoredRule": "repro.core",
    "Transaction": "repro.core",
    "TransactionDB": "repro.core",
    "Dataset": "repro.data",
    "DatasetConfig": "repro.data",
    "PricingModel": "repro.data",
    "QuestConfig": "repro.data",
    "QuestGenerator": "repro.data",
    "load_model": "repro.data",
    "load_transactions": "repro.data",
    "make_dataset_i": "repro.data",
    "make_dataset_ii": "repro.data",
    "WorldCache": "repro.data",
    "save_model": "repro.data",
    "save_transactions": "repro.data",
    "coverage_report": "repro.analysis",
    "export_rules_csv": "repro.analysis",
    "pruning_summary": "repro.analysis",
    "rules_table": "repro.analysis",
    "ProfitMiningError": "repro.errors",
    "Trace": "repro.obs",
    "tracing": "repro.obs",
    "OfferOption": "repro.whatif",
    "what_if": "repro.whatif",
    "CampaignPlan": "repro.campaign",
    "PlannedOffer": "repro.campaign",
    "plan_campaign": "repro.campaign",
    "BehaviorAdjustedProfit": "repro.eval",
    "EvalConfig": "repro.eval",
    "EvalResult": "repro.eval",
    "ExperimentScale": "repro.eval",
    "cross_validate": "repro.eval",
    "evaluate": "repro.eval",
    "evaluate_top_k": "repro.eval",
    "run_support_sweep": "repro.eval",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
