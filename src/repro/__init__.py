"""repro — a reproduction of "Profit Mining: From Patterns to Actions".

Wang, Zhou & Han (EDBT 2002) proposed *profit mining*: build, from past
transactions, a recommender of (target item, promotion code) pairs that
maximizes net profit on future customers.  This package implements the full
pipeline — the MOA(H) generalization hierarchy, profit-sensitive
generalized association-rule mining, the MPF recommender, and cut-optimal
pruning with pessimistic profit estimation — together with the baselines
(kNN, MPI, CONF±MOA), the IBM Quest-style synthetic data generator and the
complete evaluation harness of the paper's Section 5.

Quickstart::

    from repro import ProfitMiner, make_dataset_i

    dataset = make_dataset_i(n_transactions=2000, n_items=100, n_patterns=50)
    miner = ProfitMiner(dataset.hierarchy).fit(dataset.db)
    basket = dataset.db[0].nontarget_sales
    print(miner.recommend(basket).describe())
"""

from repro.baselines import (
    DecisionTreeRecommender,
    KNNRecommender,
    MPIRecommender,
)
from repro.core import (
    BinaryProfit,
    BuyingMOA,
    ConceptHierarchy,
    GSale,
    Item,
    ItemCatalog,
    MinerConfig,
    MOAHierarchy,
    MPFRecommender,
    ProfitMiner,
    ProfitMinerConfig,
    PromotionCode,
    PruneConfig,
    Recommendation,
    Recommender,
    Rule,
    RuleStats,
    Sale,
    SavingMOA,
    ScoredRule,
    Transaction,
    TransactionDB,
)
from repro.data import (
    Dataset,
    DatasetConfig,
    PricingModel,
    QuestConfig,
    QuestGenerator,
    load_model,
    load_transactions,
    make_dataset_i,
    make_dataset_ii,
    save_model,
    save_transactions,
)
from repro.analysis import (
    coverage_report,
    export_rules_csv,
    pruning_summary,
    rules_table,
)
from repro.errors import ProfitMiningError
from repro.whatif import OfferOption, what_if
from repro.eval import (
    BehaviorAdjustedProfit,
    EvalConfig,
    EvalResult,
    ExperimentScale,
    cross_validate,
    evaluate,
    evaluate_top_k,
    run_support_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "BinaryProfit",
    "BuyingMOA",
    "ConceptHierarchy",
    "Dataset",
    "DecisionTreeRecommender",
    "DatasetConfig",
    "EvalConfig",
    "EvalResult",
    "ExperimentScale",
    "GSale",
    "Item",
    "ItemCatalog",
    "KNNRecommender",
    "MinerConfig",
    "MOAHierarchy",
    "MPFRecommender",
    "MPIRecommender",
    "PricingModel",
    "ProfitMiner",
    "ProfitMinerConfig",
    "ProfitMiningError",
    "PromotionCode",
    "PruneConfig",
    "QuestConfig",
    "QuestGenerator",
    "Recommendation",
    "Recommender",
    "Rule",
    "RuleStats",
    "Sale",
    "SavingMOA",
    "ScoredRule",
    "Transaction",
    "TransactionDB",
    "OfferOption",
    "__version__",
    "BehaviorAdjustedProfit",
    "coverage_report",
    "cross_validate",
    "evaluate",
    "evaluate_top_k",
    "export_rules_csv",
    "pruning_summary",
    "rules_table",
    "load_model",
    "load_transactions",
    "make_dataset_i",
    "make_dataset_ii",
    "run_support_sweep",
    "save_model",
    "save_transactions",
    "what_if",
]
