"""Model inspection and export utilities.

The paper's Requirement 5 is interpretability: "knowing what triggers the
recommendation of certain target items could be useful for setting up a
cross-selling plan".  This module turns a fitted
:class:`~repro.core.miner.ProfitMiner` into auditable artifacts:

* :func:`rules_table` — one dict per surviving rule with every worth
  measure, ready for a DataFrame or a report;
* :func:`export_rules_csv` — the same as a CSV file;
* :func:`coverage_report` — training coverage and within-coverage hit rate
  per rule, straight from the covering tree;
* :func:`pruning_summary` — what the cut-optimal phase did.

The rule and recommendation exporters accept either a fitted
:class:`~repro.core.miner.ProfitMiner` or a bare
:class:`~repro.core.mpf.MPFRecommender` — so a model restored with
:func:`repro.data.model_io.load_model` can be audited without refitting.
The coverage and pruning reports need the miner's training artifacts and
keep requiring the miner itself.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.core.miner import ProfitMiner
from repro.core.mining import TransactionIndex
from repro.core.mpf import MPFRecommender
from repro.errors import RecommenderError

__all__ = [
    "rules_table",
    "export_rules_csv",
    "recommendations_table",
    "export_recommendations_csv",
    "coverage_report",
    "pruning_summary",
    "validation_report",
]

_RULE_FIELDS = (
    "rank",
    "body",
    "target_item",
    "promotion",
    "body_size",
    "support",
    "confidence",
    "rule_profit",
    "recommendation_profit",
    "n_matched",
    "n_hits",
    "is_default",
)


def _as_recommender(model: ProfitMiner | MPFRecommender) -> MPFRecommender:
    """A fitted recommender from either a miner or the recommender itself."""
    if isinstance(model, ProfitMiner):
        return model.require_fitted_recommender()
    return model


def rules_table(model: ProfitMiner | MPFRecommender) -> list[dict[str, Any]]:
    """The final recommender's rules as dict rows, in MPF rank order."""
    recommender = _as_recommender(model)
    rows: list[dict[str, Any]] = []
    for rank, scored in enumerate(recommender.ranked_rules, start=1):
        rule, stats = scored.rule, scored.stats
        rows.append(
            {
                "rank": rank,
                "body": " & ".join(g.describe() for g in sorted(rule.body)),
                "target_item": rule.head.node,
                "promotion": rule.head.promo,
                "body_size": rule.body_size,
                "support": stats.support,
                "confidence": stats.confidence,
                "rule_profit": stats.rule_profit,
                "recommendation_profit": stats.recommendation_profit,
                "n_matched": stats.n_matched,
                "n_hits": stats.n_hits,
                "is_default": rule.is_default,
            }
        )
    return rows


def export_rules_csv(
    model: ProfitMiner | MPFRecommender, path: str | Path
) -> int:
    """Write :func:`rules_table` to ``path``; returns the number of rules."""
    rows = rules_table(model)
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_RULE_FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


_RECOMMENDATION_FIELDS = (
    "tid",
    "target_item",
    "promotion",
    "rule_rank",
    "rule",
    "recommendation_profit",
)


def recommendations_table(
    model: ProfitMiner | MPFRecommender, db
) -> list[dict[str, Any]]:
    """Per-transaction recommendations as dict rows, batch-served.

    Uses :meth:`~repro.core.mpf.MPFRecommender.recommend_many` — the
    indexed batch path — so exporting recommendations for a large
    transaction file costs one index walk per distinct basket.
    """
    recommender = _as_recommender(model)
    ranks = {
        s.rule.order: rank
        for rank, s in enumerate(recommender.ranked_rules, start=1)
    }
    recommendations = recommender.recommend_many(
        [t.nontarget_sales for t in db.transactions]
    )
    rows: list[dict[str, Any]] = []
    for transaction, rec in zip(db.transactions, recommendations):
        scored = rec.rule
        assert scored is not None  # MPF recommendations always carry a rule
        rows.append(
            {
                "tid": transaction.tid,
                "target_item": rec.item_id,
                "promotion": rec.promo_code,
                "rule_rank": ranks[scored.rule.order],
                "rule": scored.rule.describe(),
                "recommendation_profit": scored.stats.recommendation_profit,
            }
        )
    return rows


def export_recommendations_csv(
    model: ProfitMiner | MPFRecommender, db, path: str | Path
) -> int:
    """Write :func:`recommendations_table` to ``path``; returns the row count."""
    rows = recommendations_table(model, db)
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=_RECOMMENDATION_FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def coverage_report(miner: ProfitMiner) -> list[dict[str, Any]]:
    """Training coverage per surviving rule, from the covering tree.

    ``coverage`` counts training transactions whose MPF rule this is (after
    pruning merged pruned subtrees upward); ``coverage_hit_rate`` is the
    head's hit rate within that coverage — the quantity the pessimistic
    estimate discounts.
    """
    if miner.covering_tree is None:
        raise RecommenderError("ProfitMiner has not been fitted")
    tree = miner.covering_tree
    index = tree.index
    rows: list[dict[str, Any]] = []
    for node in sorted(tree.root.subtree(), key=lambda n: n.scored.rank_key()):
        head_id = index.gsale_id(node.scored.rule.head)
        covered = node.cover_mask
        hits_mask = covered & index.head_hits_mask(head_id)
        n_covered = covered.bit_count()
        profit = sum(
            index.hit_profit(pos, head_id)
            for pos in TransactionIndex.iter_bits(hits_mask)
        )
        rows.append(
            {
                "rule": node.scored.rule.describe(),
                "coverage": n_covered,
                "coverage_hits": hits_mask.bit_count(),
                "coverage_hit_rate": (
                    hits_mask.bit_count() / n_covered if n_covered else 0.0
                ),
                "coverage_profit": profit,
                "children": len(node.children),
            }
        )
    return rows


def pruning_summary(miner: ProfitMiner) -> dict[str, Any]:
    """Headline numbers of the cut-optimal phase, as a dict."""
    if miner.prune_report is None or miner.mining_result is None:
        raise RecommenderError("ProfitMiner has not been fitted")
    report = miner.prune_report
    assert miner.covering_tree is not None
    return {
        "rules_mined": len(miner.mining_result.scored_rules),
        "dominated_removed": miner.covering_tree.n_dominated_removed,
        "tree_nodes": report.n_rules_before,
        "rules_kept": report.n_rules_after,
        "subtrees_pruned": report.n_subtrees_pruned,
        "projected_profit_before": report.tree_profit_before,
        "projected_profit_after": report.tree_profit_after,
        "reduction_factor": (
            len(miner.mining_result.scored_rules) / max(1, report.n_rules_after)
        ),
    }


def validation_report(
    miner: ProfitMiner,
    validation,
    hierarchy,
    profit_model=None,
) -> list[dict[str, Any]]:
    """Per-rule validation diagnostics: who fires, who hits, who earns.

    For each rule that actually fires on the validation transactions,
    reports how often it was the MPF choice (``uses``), its out-of-sample
    hit rate, the credited and recorded profit of its cohort, and its
    *training* confidence for comparison — the gap between the two is the
    overfitting signal the pessimistic pruning is meant to bound.
    Rows are sorted by uses, descending.
    """
    from repro.core.moa import MOAHierarchy
    from repro.core.profit import SavingMOA

    recommender = miner.require_fitted_recommender()
    profit_model = profit_model or SavingMOA()
    judge = MOAHierarchy(
        validation.catalog, hierarchy, use_moa=miner.config.use_moa
    )
    per_rule: dict[int, dict[str, Any]] = {}
    for transaction in validation:
        scored = recommender.recommendation_rule(transaction.nontarget_sales)
        order = scored.rule.order
        row = per_rule.setdefault(
            order,
            {
                "rule": scored.rule.describe(),
                "train_confidence": scored.stats.confidence,
                "uses": 0,
                "hits": 0,
                "credited_profit": 0.0,
                "recorded_profit": 0.0,
            },
        )
        row["uses"] += 1
        row["recorded_profit"] += transaction.recorded_target_profit(
            validation.catalog
        )
        head = scored.rule.head
        if judge.hits(head, transaction.target_sale):
            row["hits"] += 1
            row["credited_profit"] += profit_model.credited_profit(
                head, transaction.target_sale, validation.catalog
            )
    rows = sorted(per_rule.values(), key=lambda r: -r["uses"])
    for row in rows:
        row["validation_hit_rate"] = row["hits"] / row["uses"]
    return rows
