"""Dependency-free observability for the profit-mining pipeline.

Public surface re-exported from :mod:`repro.obs.trace`; see that module
for the full story.  Quick start::

    from repro import obs

    with obs.tracing("fit") as trace:
        ProfitMiner(config).fit(db)
    print(trace.summary())
"""

from repro.obs.trace import (
    Span,
    Trace,
    annotate,
    cache_event,
    count,
    current_trace,
    merge_traces,
    run_traced,
    span,
    tracing,
)

__all__ = [
    "Span",
    "Trace",
    "annotate",
    "cache_event",
    "count",
    "current_trace",
    "merge_traces",
    "run_traced",
    "span",
    "tracing",
]
