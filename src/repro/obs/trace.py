"""Structured observability: stage spans, counters and cache telemetry.

The pipeline is instrumented with three primitives, all dependency-free
and all routed through a single :class:`Trace` object carried in a
``contextvars.ContextVar``:

* **spans** — a tree of named stages (mine, cover, prune, serve, eval,
  sweep cells, ...) with wall-clock elapsed time and optional string
  metadata,
* **counters** — flat named tallies (candidates per Apriori level,
  rules emitted, postings scanned per recommendation, backend chosen),
* **cache events** — per-cache hit / miss / eviction / clear / build
  tallies plus resident-byte estimates for the five caches the fit and
  serve paths lean on (``FitCache``, the judge and eval-prep caches in
  :mod:`repro.eval.metrics`, the serving basket memo, and the dense
  kernel's packed mask matrices).

Tracing is **disabled by default**.  Every instrumentation point first
asks :func:`current_trace` (one ``ContextVar.get``) and does nothing
when no trace is installed, so the cold path stays within the <2%
overhead gate enforced by ``benchmarks/test_obs_overhead.py``.  Enable
tracing with::

    from repro import obs

    with obs.tracing("fit dataset I") as trace:
        recommender = ProfitMiner(config).fit(db)
    print(trace.summary())
    trace.write("trace.json")

``contextvars`` does not cross process boundaries, so the ``n_jobs``
paths in :mod:`repro.eval.harness` and
:mod:`repro.eval.cross_validation` wrap worker tasks in
:func:`run_traced`, which installs a fresh worker-side trace, returns
it as a plain dict alongside the result, and lets the parent fold it
back in with :meth:`Trace.merge`.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "Span",
    "Trace",
    "annotate",
    "cache_event",
    "count",
    "current_trace",
    "merge_traces",
    "run_traced",
    "span",
    "tracing",
]

_TRACE: ContextVar[Trace | None] = ContextVar("repro_trace", default=None)

# Cache stats treated as gauges (merged/accumulated with max, not sum).
_GAUGE_STATS = frozenset({"entries", "resident_bytes"})


class Span:
    """One timed stage; children are stages that ran while it was open."""

    __slots__ = ("name", "meta", "elapsed_s", "children")

    def __init__(self, name: str, meta: dict[str, str] | None = None):
        self.name = name
        self.meta: dict[str, str] = dict(meta or {})
        self.elapsed_s: float = 0.0
        self.children: list[Span] = []

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form: name, elapsed seconds, meta and children."""
        data: dict[str, Any] = {"name": self.name, "elapsed_s": self.elapsed_s}
        if self.meta:
            data["meta"] = dict(self.meta)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Span:
        """Rebuild a span (and its subtree) from :meth:`to_dict` output."""
        span_obj = cls(str(data["name"]), data.get("meta"))
        span_obj.elapsed_s = float(data.get("elapsed_s", 0.0))
        span_obj.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return span_obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.elapsed_s:.4f}s, {len(self.children)} children)"


class _SpanHandle:
    """Context manager that opens/closes one span on its trace's stack."""

    __slots__ = ("_trace", "_span", "_started")

    def __init__(self, trace: Trace, span_obj: Span):
        self._trace = trace
        self._span = span_obj
        self._started = 0.0

    def __enter__(self) -> Span:
        trace = self._trace
        stack = trace._stack
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(self._span)
        else:
            trace.spans.append(self._span)
        stack.append(self._span)
        trace.events += 1
        self._started = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._span.elapsed_s += time.perf_counter() - self._started
        stack = self._trace._stack
        if stack and stack[-1] is self._span:
            stack.pop()


class _NullSpan:
    """Shared no-op span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Trace:
    """Mutable collection point for spans, counters and cache telemetry.

    A trace is bound to whichever context installed it (see
    :func:`tracing`); it is not safe to mutate from several threads at
    once.  The instrumented hot loops (kernel chunk workers) therefore
    never touch the trace — recording happens at stage granularity in
    the orchestrating thread.
    """

    def __init__(self, name: str = "trace", meta: dict[str, str] | None = None):
        self.name = name
        self.meta: dict[str, str] = dict(meta or {})
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self.caches: dict[str, dict[str, float]] = {}
        # Number of recording calls that hit this trace; the overhead
        # benchmark uses it as the touchpoint count for its no-op model.
        self.events: int = 0
        self._stack: list[Span] = []

    # -- recording ----------------------------------------------------
    def span(self, name: str, **meta: str) -> _SpanHandle:
        """A context manager opening a child span of the innermost one."""
        return _SpanHandle(self, Span(name, meta))

    def annotate(self, **meta: str) -> None:
        """Attach metadata to the innermost open span (or the trace)."""
        target = self._stack[-1].meta if self._stack else self.meta
        target.update(meta)

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the named counter (created at 0 on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n
        self.events += 1

    def cache_event(self, cache: str, **stats: float) -> None:
        """Accumulate per-cache stats (gauges like ``entries`` take max)."""
        entry = self.caches.setdefault(cache, {})
        for stat, value in stats.items():
            if stat in _GAUGE_STATS:
                entry[stat] = max(entry.get(stat, 0), value)
            else:
                entry[stat] = entry.get(stat, 0) + value
        self.events += 1

    # -- merge / serialization ----------------------------------------
    def merge(self, data: dict[str, Any], label: str = "worker") -> None:
        """Fold a worker trace (as a dict) into this one.

        Counters and cache stats accumulate (gauges take the max); the
        worker's spans are attached under a synthetic ``label`` span so
        the tree records where the work actually ran.
        """
        for name, value in data.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for cache, stats in data.get("caches", {}).items():
            entry = self.caches.setdefault(cache, {})
            for stat, value in stats.items():
                if stat in _GAUGE_STATS:
                    entry[stat] = max(entry.get(stat, 0), value)
                else:
                    entry[stat] = entry.get(stat, 0) + value
        # The worker already counted its recording calls; folding them in
        # must not add events of its own (the overhead model relies on
        # ``events`` equalling the number of touchpoints hit).
        self.events += data.get("events", 0)
        worker_spans = [Span.from_dict(d) for d in data.get("spans", ())]
        if worker_spans:
            holder = Span(label, data.get("meta"))
            holder.children = worker_spans
            holder.elapsed_s = sum(child.elapsed_s for child in worker_spans)
            if self._stack:
                self._stack[-1].children.append(holder)
            else:
                self.spans.append(holder)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form of the whole trace (spans, counters, caches)."""
        return {
            "name": self.name,
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "caches": {cache: dict(stats) for cache, stats in self.caches.items()},
            "events": self.events,
            "spans": [span_obj.to_dict() for span_obj in self.spans],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Trace:
        """Rebuild a trace from :meth:`to_dict` output (JSON round-trip)."""
        trace = cls(str(data.get("name", "trace")), data.get("meta"))
        trace.counters = dict(data.get("counters", {}))
        trace.caches = {
            cache: dict(stats) for cache, stats in data.get("caches", {}).items()
        }
        trace.events = int(data.get("events", 0))
        trace.spans = [Span.from_dict(d) for d in data.get("spans", ())]
        return trace

    def write(self, path: str) -> None:
        """Dump the trace to ``path`` as stable, sorted, indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> Trace:
        """Load a trace previously saved with :meth:`write`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    # -- reporting ----------------------------------------------------
    def summary(self) -> str:
        """Human-readable report: span tree, counters, cache table."""
        lines: list[str] = []
        total = sum(span_obj.elapsed_s for span_obj in self.spans)
        header = f"trace '{self.name}' — {total:.3f}s across {len(self.spans)} top-level span(s)"
        if self.meta:
            header += "  (" + ", ".join(
                f"{key}={value}" for key, value in sorted(self.meta.items())
            ) + ")"
        lines.append(header)

        def walk(span_obj: Span, depth: int) -> None:
            meta = ""
            if span_obj.meta:
                meta = "  [" + ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(span_obj.meta.items())
                ) + "]"
            lines.append(
                f"  {'  ' * depth}{span_obj.name:<28s} {span_obj.elapsed_s:9.3f}s{meta}"
            )
            for child in span_obj.children:
                walk(child, depth + 1)

        if self.spans:
            lines.append("spans:")
            for span_obj in self.spans:
                walk(span_obj, 0)
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                value = self.counters[name]
                shown = int(value) if float(value).is_integer() else value
                lines.append(f"  {name:<40s} {shown}")
        if self.caches:
            lines.append("caches:")
            stat_order = (
                "hits",
                "misses",
                "evictions",
                "clears",
                "builds",
                "entries",
                "resident_bytes",
            )
            for cache in sorted(self.caches):
                stats = self.caches[cache]
                ordered = [s for s in stat_order if s in stats]
                ordered += [s for s in sorted(stats) if s not in stat_order]
                rendered = ", ".join(
                    f"{stat}={int(stats[stat]) if float(stats[stat]).is_integer() else stats[stat]}"
                    for stat in ordered
                )
                lines.append(f"  {cache:<32s} {rendered}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Module-level helpers — the instrumentation surface used by the pipeline.
# ---------------------------------------------------------------------------

def current_trace() -> Trace | None:
    """The trace installed in the current context, or ``None``."""
    return _TRACE.get()


def span(name: str, **meta: str):
    """A context manager timing one stage; no-op when tracing is off."""
    trace = _TRACE.get()
    if trace is None:
        return _NULL_SPAN
    return trace.span(name, **meta)


def annotate(**meta: str) -> None:
    """Attach metadata to the innermost open span, if tracing is on."""
    trace = _TRACE.get()
    if trace is not None:
        trace.annotate(**meta)


def count(name: str, n: float = 1) -> None:
    """Bump a counter on the active trace, if any."""
    trace = _TRACE.get()
    if trace is not None:
        trace.count(name, n)


def cache_event(cache: str, **stats: float) -> None:
    """Record cache telemetry on the active trace, if any."""
    trace = _TRACE.get()
    if trace is not None:
        trace.cache_event(cache, **stats)


@contextmanager
def tracing(name: str = "trace", **meta: str) -> Iterator[Trace]:
    """Install a fresh :class:`Trace` for the duration of the block."""
    trace = Trace(name, meta)
    token = _TRACE.set(trace)
    try:
        yield trace
    finally:
        _TRACE.reset(token)


def merge_traces(
    snapshots: Iterable[dict[str, Any]],
    name: str = "merged",
    label: str = "worker",
) -> Trace:
    """Fold trace snapshots (``Trace.to_dict`` payloads) into a fresh trace.

    The aggregation primitive behind the serving pool's ``/stats`` view:
    every worker reports a *cumulative* snapshot, so each aggregation
    must start from an empty trace rather than accumulate into a
    long-lived one (merging cumulative snapshots twice would double
    count).  Counters and cache stats sum (gauges take the max, exactly
    as :meth:`Trace.merge` does); snapshots carrying only ``counters`` /
    ``caches`` — the shape ``/stats`` exposes — merge fine.
    """
    merged = Trace(name)
    for index, snapshot in enumerate(snapshots):
        merged.merge(snapshot, label=f"{label}-{index}")
    return merged


def run_traced(
    fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> tuple[Any, dict[str, Any]]:
    """Run ``fn`` under a fresh trace and return ``(result, trace_dict)``.

    Module-level and picklable on both ends, so process-pool paths can
    submit ``run_traced(task, ...)`` when the parent has tracing on and
    :meth:`Trace.merge` the returned dict.  The worker-side trace is
    always fresh: worker processes never see the parent's contextvar.
    """
    with tracing("worker") as trace:
        result = fn(*args, **kwargs)
    return result, trace.to_dict()
