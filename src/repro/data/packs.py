"""Dataset III (ours): multi-packing promotions — Example 1 at scale.

The paper's synthetic datasets use a single packing everywhere, so the
favorability relation degenerates to a total order per item.  Example 1
(2%-Milk) and the introduction's Egg story, however, are about *packings*:
a 4-pack at a better unit price is incomparable with a single pack under
``≺`` ("it is not favorable to pay more for unwanted quantity"), giving
each item a two-chain partial order.

This module builds an evaluation dataset exercising exactly that:

* every target item carries a **single chain** (packing 1, two price
  steps) and a **bulk chain** (packing 4 at a ~10% unit discount, two
  steps) — four promotion codes forming two incomparable ≺-chains;
* customer segments (item windows, as in datasets I/II) prefer a target
  item, a *mode* (single vs bulk) and a price step; recorded prices
  disperse one step upward within the preferred mode's chain (shopping on
  unavailability never crosses modes);
* single-mode buyers purchase 1–4 packs (quantities matter!), bulk buyers
  one package.

A profit-aware MOA recommender should learn both the item/mode of each
segment and the profitable rung of the right chain; exact-match systems
lose the dispersed half of every chain, and mode confusion is punished by
the hit test (a bulk recommendation never hits a single-pack sale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.items import Item, ItemCatalog
from repro.core.promotion import PromotionCode
from repro.core.sales import Sale, Transaction, TransactionDB
from repro.data.datasets import Dataset, DatasetConfig, zipf_target_specs
from repro.data.hierarchy_gen import grouped_hierarchy
from repro.data.pricing import PricingModel
from repro.data.quest import QuestConfig, QuestGenerator
from repro.errors import DataGenerationError

__all__ = ["PacksConfig", "make_dataset_packs", "pack_code_name"]

#: Markup steps of the two chains: singles at +20%/+30% over cost, bulk
#: packages at +10%/+20% per unit — the bulk chain undercuts per unit.
_SINGLE_MARKUPS = (1.20, 1.30)
_BULK_MARKUPS = (1.10, 1.20)
_BULK_PACKING = 4


def pack_code_name(mode: str, step: int) -> str:
    """Promotion-code id of a chain rung: ``S1``/``S2`` or ``B1``/``B2``."""
    if mode not in ("S", "B"):
        raise DataGenerationError(f"mode must be 'S' or 'B', got {mode!r}")
    if step not in (1, 2):
        raise DataGenerationError(f"step must be 1 or 2, got {step}")
    return f"{mode}{step}"


@dataclass(frozen=True)
class PacksConfig:
    """Parameters of the multi-packing dataset."""

    n_transactions: int = 2500
    n_items: int = 300
    n_patterns: int | None = None
    signal_strength: float = 0.95
    bulk_share: float = 0.4  # fraction of segments preferring the bulk chain
    dispersion: float = 0.4  # probability the recorded rung is one step up
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise DataGenerationError("n_transactions must be >= 1")
        if not 0 <= self.bulk_share <= 1:
            raise DataGenerationError(
                f"bulk_share must be in [0, 1], got {self.bulk_share}"
            )
        if not 0 <= self.dispersion <= 1:
            raise DataGenerationError(
                f"dispersion must be in [0, 1], got {self.dispersion}"
            )
        if not 0 <= self.signal_strength <= 1:
            raise DataGenerationError(
                f"signal_strength must be in [0, 1], got {self.signal_strength}"
            )


def _target_item(item_id: str, cost: float) -> Item:
    """A target with two incomparable promotion chains."""
    singles = tuple(
        PromotionCode(
            code=pack_code_name("S", step),
            price=round(markup * cost, 6),
            cost=cost,
            packing=1,
        )
        for step, markup in enumerate(_SINGLE_MARKUPS, start=1)
    )
    bulks = tuple(
        PromotionCode(
            code=pack_code_name("B", step),
            price=round(markup * cost * _BULK_PACKING, 6),
            cost=cost * _BULK_PACKING,
            packing=_BULK_PACKING,
        )
        for step, markup in enumerate(_BULK_MARKUPS, start=1)
    )
    return Item(item_id=item_id, promotions=singles + bulks, is_target=True)


def make_dataset_packs(config: PacksConfig | None = None) -> Dataset:
    """Build dataset III; deterministic given the config's seed."""
    config = config or PacksConfig()
    rng = np.random.default_rng(config.seed + 7_777_777)
    pricing = PricingModel()

    quest_config = QuestConfig(
        n_items=config.n_items,
        n_patterns=config.n_patterns
        or 8 * max(1, config.n_items // 10),
        avg_pattern_size=4.0,
        avg_transaction_size=4.0,
        corruption_mean=0.25,
        window_size=10,
    )
    generator = QuestGenerator(config=quest_config, seed=config.seed)
    baskets = generator.generate(config.n_transactions)

    specs = zipf_target_specs()
    items = [
        pricing.nontarget_item(f"I{i + 1:04d}", i + 1)
        for i in range(config.n_items)
    ]
    items.extend(_target_item(spec.item_id, spec.cost) for spec in specs)
    catalog = ItemCatalog.from_items(items)
    hierarchy = grouped_hierarchy(catalog, group_size=10, levels=1)

    # Stratified segment preferences: (target item, mode, step) per window.
    n_windows = quest_config.n_windows
    total_weight = sum(spec.weight for spec in specs)
    window_prefs: list[tuple[str, str, int]] = []
    for spec in specs:
        quota = round(spec.weight / total_weight * n_windows)
        for _ in range(max(1, quota)):
            mode = "B" if rng.random() < config.bulk_share else "S"
            step = 1 if rng.random() < 0.55 else 2
            window_prefs.append((spec.item_id, mode, step))
    window_prefs = window_prefs[:n_windows]
    while len(window_prefs) < n_windows:
        window_prefs.append((specs[0].item_id, "S", 1))
    order = rng.permutation(n_windows)
    window_prefs = [window_prefs[i] for i in order]

    transactions: list[Transaction] = []
    for tid, basket in enumerate(baskets):
        nontarget = tuple(
            Sale(
                item_id=f"I{index + 1:04d}",
                promo_code=f"P{int(rng.integers(1, pricing.m + 1))}",
            )
            for index in basket.items
        )
        window = generator.window_of_pattern(basket.dominant_pattern)
        if rng.random() < config.signal_strength:
            target_id, mode, step = window_prefs[window]
        else:
            target_id = specs[0].item_id if rng.random() < 5 / 6 else specs[1].item_id
            mode = "B" if rng.random() < config.bulk_share else "S"
            step = 1 if rng.random() < 0.55 else 2
        if step == 1 and rng.random() < config.dispersion:
            step = 2  # unavailability pushes one rung up the same chain
        quantity = (
            1.0 if mode == "B" else float(1 + rng.integers(0, 4))
        )
        target = Sale(
            item_id=target_id,
            promo_code=pack_code_name(mode, step),
            quantity=quantity,
        )
        transactions.append(
            Transaction(tid=tid, nontarget_sales=nontarget, target_sale=target)
        )

    db = TransactionDB(catalog=catalog, transactions=transactions)
    dataset_config = DatasetConfig(
        name="dataset-III-packs",
        n_transactions=config.n_transactions,
        quest=quest_config,
        targets=specs,
        signal_strength=config.signal_strength,
        levels=1,
        seed=config.seed,
    )
    return Dataset(config=dataset_config, db=db, hierarchy=hierarchy)
