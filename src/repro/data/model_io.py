"""Persistence for fitted recommenders.

A cut-optimal recommender is a self-contained artifact: its ranked rules
(with training statistics), the catalog the promotion codes resolve
against, the concept hierarchy, and the MOA switch.  This module
serializes all of that to a single JSON document so a model mined once can
be deployed, versioned and diffed without re-mining.

Round trip::

    save_model(miner.require_fitted_recommender(), moa, "model.json")
    recommender = load_model("model.json")
    recommender.recommend(basket)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.generalized import GKind, GSale
from repro.core.hierarchy import ConceptHierarchy
from repro.core.moa import MOAHierarchy
from repro.core.mpf import MPFRecommender
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.data.io import catalog_from_dict, catalog_to_dict
from repro.errors import SerializationError

__all__ = ["save_model", "load_model"]

_FORMAT = "repro-profit-mining-model-v1"


def _gsale_to_dict(gsale: GSale) -> dict[str, Any]:
    return {"kind": gsale.kind.value, "node": gsale.node, "promo": gsale.promo}


def _gsale_from_dict(payload: dict[str, Any]) -> GSale:
    try:
        return GSale(
            kind=GKind(payload["kind"]),
            node=payload["node"],
            promo=payload.get("promo"),
        )
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"malformed generalized sale: {exc}") from exc


def save_model(
    recommender: MPFRecommender, path: str | Path
) -> None:
    """Write a fitted MPF recommender (rules + world) to ``path``."""
    moa = recommender.moa
    payload = {
        "format": _FORMAT,
        "name": recommender.name,
        "use_moa": moa.use_moa,
        "catalog": catalog_to_dict(moa.catalog),
        "hierarchy": {
            "parents": {
                node: list(parents)
                for node, parents in moa.hierarchy.parents.items()
            },
            "items": sorted(moa.hierarchy.items),
        },
        "rules": [
            {
                "body": [_gsale_to_dict(g) for g in sorted(scored.rule.body)],
                "head": _gsale_to_dict(scored.rule.head),
                "order": scored.rule.order,
                "n_matched": scored.stats.n_matched,
                "n_hits": scored.stats.n_hits,
                "rule_profit": scored.stats.rule_profit,
                "n_total": scored.stats.n_total,
            }
            for scored in recommender.ranked_rules
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_model(path: str | Path) -> MPFRecommender:
    """Reconstruct a recommender written by :func:`save_model`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: not valid JSON: {exc}") from exc
    if payload.get("format") != _FORMAT:
        raise SerializationError(
            f"{path}: unexpected model format {payload.get('format')!r}"
        )
    try:
        catalog = catalog_from_dict(payload["catalog"])
        hierarchy = ConceptHierarchy(
            parents={
                node: tuple(parents)
                for node, parents in payload["hierarchy"]["parents"].items()
            },
            items=set(payload["hierarchy"]["items"]),
        )
        moa = MOAHierarchy(
            catalog=catalog,
            hierarchy=hierarchy,
            use_moa=bool(payload["use_moa"]),
        )
        scored_rules = [
            ScoredRule(
                rule=Rule(
                    body=frozenset(
                        _gsale_from_dict(g) for g in entry["body"]
                    ),
                    head=_gsale_from_dict(entry["head"]),
                    order=int(entry["order"]),
                ),
                stats=RuleStats(
                    n_matched=int(entry["n_matched"]),
                    n_hits=int(entry["n_hits"]),
                    rule_profit=float(entry["rule_profit"]),
                    n_total=int(entry["n_total"]),
                ),
            )
            for entry in payload["rules"]
        ]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"{path}: malformed model payload: {exc}") from exc
    return MPFRecommender(scored_rules, moa, name=str(payload.get("name", "MPF")))
