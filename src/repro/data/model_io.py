"""Persistence for fitted recommenders.

A cut-optimal recommender is a self-contained artifact: its ranked rules
(with training statistics), the catalog the promotion codes resolve
against, the concept hierarchy, and the MOA switch.  This module
serializes all of that to a single JSON document so a model mined once can
be deployed, versioned and diffed without re-mining.

Two formats are written and read:

* **v1** (``repro-profit-mining-model-v1``) — rules with string-form
  generalized sales.  Loading rebuilds every GSale from its dict and pays
  for rule validation, ranking and a full serving-index build on first
  use.  Kept as a write option (``save_model(..., version=1)``) and read
  transparently for old artifacts.
* **v2** (``repro-profit-mining-model-v2``) — additionally persists the
  engine layer: the
  :class:`~repro.core.engine.symbols.SymbolTable`'s symbol list, each
  rule's body/head as dense symbol ids, and the inverted postings of the
  :class:`~repro.core.engine.compiled.CompiledModel`.  Loading adopts the
  symbol list verbatim (ids = positions), restores the postings directly,
  and hands the recommender a ready compiled model — ``load_model`` →
  first recommendation performs no re-interning and no index build.
* **v3** (``repro-profit-mining-model-v3``, the default) — persists the
  shape-split columnar :class:`~repro.core.rulestore.RuleStore` instead
  of per-rule arrays.  Loading is column-wise: the arrays are adopted
  into shape tables and the recommender serves through a lazy
  :class:`~repro.core.rulestore.RankedView` — no re-interning and no
  per-rule Python objects until something actually touches a rule.

Every artifact written here carries an integer ``version`` field;
:func:`load_model` refuses documents whose version is missing (and whose
format string is unrecognizable), non-integer or from the future, always
via :class:`~repro.errors.SerializationError` naming what it saw.

A :class:`WorldCache` passed to :func:`load_model` shares one
(catalog, hierarchy, MOA) world — and through it one interned symbol
universe — across every artifact describing the same world, which is what
keeps N resident models memory-light in the multi-tenant daemon.

Round trip::

    save_model(miner.require_fitted_recommender(), "model.json")
    recommender = load_model("model.json")
    recommender.recommend(basket)
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.engine.compiled import CompiledModel
from repro.core.engine.symbols import SymbolTable
from repro.core.generalized import GKind, GSale
from repro.core.hierarchy import ConceptHierarchy
from repro.core.moa import MOAHierarchy
from repro.core.mpf import MPFRecommender
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.core.rulestore import COLUMNS, RuleStore
from repro.data.io import catalog_from_dict, catalog_to_dict
from repro.errors import SerializationError
from repro.obs import trace as obs

__all__ = ["save_model", "load_model", "WorldCache"]

_FORMAT_V1 = "repro-profit-mining-model-v1"
_FORMAT_V2 = "repro-profit-mining-model-v2"
_FORMAT_V3 = "repro-profit-mining-model-v3"

#: Format string → the version it implies, for legacy artifacts written
#: before the explicit integer ``version`` field existed.
_FORMAT_VERSIONS = {_FORMAT_V1: 1, _FORMAT_V2: 2, _FORMAT_V3: 3}

#: Versions this build knows how to read.
_SUPPORTED_VERSIONS = (1, 2, 3)

#: Compact symbol encodings used by the v2 ``symbols`` list.
_KIND_TAGS = {GKind.CONCEPT: "c", GKind.ITEM: "i", GKind.PROMO: "p"}
_TAG_KINDS = {tag: kind for kind, tag in _KIND_TAGS.items()}


def _gsale_to_dict(gsale: GSale) -> dict[str, Any]:
    return {"kind": gsale.kind.value, "node": gsale.node, "promo": gsale.promo}


def _gsale_from_dict(payload: dict[str, Any]) -> GSale:
    try:
        return GSale(
            kind=GKind(payload["kind"]),
            node=payload["node"],
            promo=payload.get("promo"),
        )
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"malformed generalized sale: {exc}") from exc


def _symbol_entry(gsale: GSale) -> list[str]:
    """A gsale as the compact v2 list form ``[tag, node(, promo)]``."""
    entry = [_KIND_TAGS[gsale.kind], gsale.node]
    if gsale.promo is not None:
        entry.append(gsale.promo)
    return entry


def _symbol_from_entry(entry: list[str]) -> GSale:
    """Decode one v2 symbol entry (validated by ``GSale.__post_init__``)."""
    try:
        kind = _TAG_KINDS[entry[0]]
        return GSale(kind, entry[1], entry[2] if len(entry) > 2 else None)
    except (KeyError, IndexError, TypeError) as exc:
        raise SerializationError(f"malformed symbol entry {entry!r}") from exc


def _world_to_dict(recommender: MPFRecommender) -> dict[str, Any]:
    """The shared (catalog, hierarchy, MOA-switch) section of both formats."""
    moa = recommender.moa
    return {
        "name": recommender.name,
        "use_moa": moa.use_moa,
        "catalog": catalog_to_dict(moa.catalog),
        "hierarchy": {
            "parents": {
                node: list(parents)
                for node, parents in moa.hierarchy.parents.items()
            },
            "items": sorted(moa.hierarchy.items),
        },
    }


def save_model(
    recommender: MPFRecommender, path: str | Path, version: int = 3
) -> None:
    """Write a fitted MPF recommender (rules + world) to ``path``.

    ``version=3`` (the default) persists the shape-split columnar rule
    store so loading is column-wise with no re-interning and no per-rule
    materialization; ``version=2`` writes the per-rule dense-id document
    with inverted postings; ``version=1`` writes the legacy string-form
    document.

    The write is atomic (temp file + :func:`os.replace`): concurrent
    readers — in particular a serving daemon's hot-swap watcher — see
    either the previous artifact or the complete new one, never a
    truncated document.
    """
    if version == 1:
        payload: dict[str, Any] = {
            "format": _FORMAT_V1,
            "version": 1,
            **_world_to_dict(recommender),
        }
        payload["rules"] = [
            {
                "body": [_gsale_to_dict(g) for g in sorted(scored.rule.body)],
                "head": _gsale_to_dict(scored.rule.head),
                "order": scored.rule.order,
                "n_matched": scored.stats.n_matched,
                "n_hits": scored.stats.n_hits,
                "rule_profit": scored.stats.rule_profit,
                "n_total": scored.stats.n_total,
            }
            for scored in recommender.ranked_rules
        ]
    elif version == 2:
        compiled = recommender.compiled
        symbols = compiled.symbols
        head_id = symbols.id_of
        payload = {
            "format": _FORMAT_V2,
            "version": 2,
            **_world_to_dict(recommender),
        }
        payload["symbols"] = [_symbol_entry(g) for g in symbols.gsales]
        # One array per rule, in rank order:
        # [body ids, head id, order, n_matched, n_hits, rule_profit, n_total]
        payload["rules"] = [
            [
                list(body_ids),
                head_id(scored.rule.head),
                scored.rule.order,
                scored.stats.n_matched,
                scored.stats.n_hits,
                scored.stats.rule_profit,
                scored.stats.n_total,
            ]
            for scored, body_ids in zip(compiled.ranked_rules, compiled.body_ids)
        ]
        # Inverted postings as [symbol id, [rank positions]] pairs.
        payload["postings"] = [
            [gid, positions] for gid, positions in sorted(compiled.postings.items())
        ]
    elif version == 3:
        compiled = recommender.compiled
        store = compiled.rule_store
        symbols = compiled.symbols
        payload = {
            "format": _FORMAT_V3,
            "version": 3,
            **_world_to_dict(recommender),
        }
        payload["symbols"] = [_symbol_entry(g) for g in symbols.gsales]
        # One column group per rule shape; empty shapes persist as empty
        # columns so the reader never special-cases a missing table.
        payload["store"] = {
            shape: table.to_columns() for shape, table in store.tables.items()
        }
    else:
        raise SerializationError(f"unsupported model format version {version}")
    _write_atomic(Path(path), payload)


def _write_atomic(path: Path, payload: dict[str, Any]) -> None:
    """Serialize ``payload`` to ``path`` via a same-directory temp file.

    A daemon hot-swap watcher (or any other reader) must never observe a
    truncated artifact: the document is fully serialized and flushed to a
    temp file in the target directory, then moved over ``path`` with
    :func:`os.replace` — atomic on POSIX and Windows for same-filesystem
    moves, which same-directory guarantees.  Any failure mid-serialization
    leaves a pre-existing artifact at ``path`` untouched.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - temp already gone
            pass
        raise


def _load_world(payload: dict[str, Any]) -> MOAHierarchy:
    """Rebuild the MOA engine from a payload's world section."""
    catalog = catalog_from_dict(payload["catalog"])
    hierarchy = ConceptHierarchy(
        parents={
            node: tuple(parents)
            for node, parents in payload["hierarchy"]["parents"].items()
        },
        items=set(payload["hierarchy"]["items"]),
    )
    return MOAHierarchy(
        catalog=catalog,
        hierarchy=hierarchy,
        use_moa=bool(payload["use_moa"]),
    )


class WorldCache:
    """Shares one MOA world across every model artifact describing it.

    Two artifacts whose (catalog, hierarchy, MOA-switch) sections are
    identical get back the *same* :class:`~repro.core.moa.MOAHierarchy`
    instance — and, because the engine's canonical
    :class:`~repro.core.engine.symbols.SymbolTable` is cached on that
    instance, the same interned symbol universe, per-sale expansion
    caches and subsumption tables.  This is what makes N resident models
    in the multi-tenant daemon cost one world plus N rule stores instead
    of N of everything.
    """

    def __init__(self) -> None:
        self._worlds: dict[str, MOAHierarchy] = {}

    def __len__(self) -> int:
        return len(self._worlds)

    def moa_for(self, payload: dict[str, Any]) -> MOAHierarchy:
        """The shared world of ``payload`` (built on first sight)."""
        key = json.dumps(
            {
                "use_moa": payload.get("use_moa"),
                "catalog": payload.get("catalog"),
                "hierarchy": payload.get("hierarchy"),
            },
            sort_keys=True,
        )
        moa = self._worlds.get(key)
        if moa is None:
            moa = _load_world(payload)
            self._worlds[key] = moa
            obs.cache_event(
                "model_io.worlds", misses=1, builds=1, entries=len(self._worlds)
            )
        else:
            obs.cache_event(
                "model_io.worlds", hits=1, entries=len(self._worlds)
            )
        return moa


def _resolve_moa(
    payload: dict[str, Any], worlds: WorldCache | None
) -> MOAHierarchy:
    if worlds is None:
        return _load_world(payload)
    return worlds.moa_for(payload)


def _adopt_symbols(
    moa: MOAHierarchy, payload: dict[str, Any], path: str | Path
) -> SymbolTable:
    """Install (or re-find) the artifact's symbol list on ``moa``.

    On a shared world (:class:`WorldCache`) the table may already exist
    from a sibling artifact; the persisted ids are only valid if the two
    symbol lists agree, so disagreement is a hard serialization error
    rather than silent id corruption.
    """
    gsales = [_symbol_from_entry(entry) for entry in payload["symbols"]]
    symbols = SymbolTable.adopt(moa, gsales)
    if symbols.gsales != gsales:
        raise SerializationError(
            f"{path}: artifact's symbol table disagrees with the shared "
            f"world's ({len(gsales)} vs {len(symbols.gsales)} symbols)"
        )
    return symbols


def _load_v1(
    payload: dict[str, Any],
    path: str | Path,
    worlds: WorldCache | None = None,
) -> MPFRecommender:
    """Reconstruct a legacy v1 document (string-form rules)."""
    try:
        moa = _resolve_moa(payload, worlds)
        scored_rules = [
            ScoredRule(
                rule=Rule(
                    body=frozenset(
                        _gsale_from_dict(g) for g in entry["body"]
                    ),
                    head=_gsale_from_dict(entry["head"]),
                    order=int(entry["order"]),
                ),
                stats=RuleStats(
                    n_matched=int(entry["n_matched"]),
                    n_hits=int(entry["n_hits"]),
                    rule_profit=float(entry["rule_profit"]),
                    n_total=int(entry["n_total"]),
                ),
            )
            for entry in payload["rules"]
        ]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"{path}: malformed model payload: {exc}") from exc
    return MPFRecommender(scored_rules, moa, name=str(payload.get("name", "MPF")))


def _load_v2(
    payload: dict[str, Any],
    path: str | Path,
    worlds: WorldCache | None = None,
) -> MPFRecommender:
    """Reconstruct a v2 document: adopt symbols, restore postings verbatim."""
    try:
        moa = _resolve_moa(payload, worlds)
        symbols = _adopt_symbols(moa, payload, path)
        gsales = symbols.gsales
        name = str(payload.get("name", "MPF"))
        ranked: list[ScoredRule] = []
        body_ids: list[tuple[int, ...]] = []
        for entry in payload["rules"]:
            ids, head_id, order, n_matched, n_hits, rule_profit, n_total = entry
            id_tuple = tuple(ids)
            body_ids.append(id_tuple)
            # Bodies/heads share the adopted GSale objects; the separation
            # constraint was validated at save time, so the rule is
            # assembled without re-running ``Rule.__post_init__``.
            rule = Rule.__new__(Rule)
            object.__setattr__(
                rule, "body", frozenset(gsales[gid] for gid in id_tuple)
            )
            object.__setattr__(rule, "head", gsales[head_id])
            object.__setattr__(rule, "order", int(order))
            ranked.append(
                ScoredRule(
                    rule=rule,
                    stats=RuleStats(
                        n_matched=int(n_matched),
                        n_hits=int(n_hits),
                        rule_profit=float(rule_profit),
                        n_total=int(n_total),
                    ),
                )
            )
        postings = {
            int(gid): [int(pos) for pos in positions]
            for gid, positions in payload["postings"]
        }
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SerializationError(f"{path}: malformed model payload: {exc}") from exc
    compiled = CompiledModel(
        symbols, ranked, body_ids, postings=postings, name=name
    )
    return MPFRecommender(
        ranked, moa, name=name, presorted=True, compiled=compiled
    )


def _load_v3(
    payload: dict[str, Any],
    path: str | Path,
    worlds: WorldCache | None = None,
) -> MPFRecommender:
    """Reconstruct a v3 document: adopt the columnar store, stay lazy.

    The shape tables are rebuilt directly from the persisted columns and
    the recommender serves through :class:`CompiledModel.from_store` —
    no rule objects exist until someone indexes the ranked view.
    """
    try:
        moa = _resolve_moa(payload, worlds)
        symbols = _adopt_symbols(moa, payload, path)
        name = str(payload.get("name", "MPF"))
        column_groups: dict[str, dict[str, Any]] = {}
        for shape, columns in payload["store"].items():
            column_groups[shape] = {
                column: columns[column] for column in COLUMNS
            }
        store = RuleStore.from_columns(symbols, column_groups, name=name)
    except (KeyError, TypeError, ValueError, IndexError, OverflowError) as exc:
        raise SerializationError(f"{path}: malformed model payload: {exc}") from exc
    compiled = CompiledModel.from_store(store, name=name)
    return MPFRecommender(
        compiled.ranked_rules, moa, name=name, presorted=True, compiled=compiled
    )


_MISSING = object()
_LOADERS = {1: _load_v1, 2: _load_v2, 3: _load_v3}


def _resolve_version(payload: Any, path: str | Path) -> int:
    """The format version of ``payload``, or a loud :class:`SerializationError`.

    New artifacts carry an integer ``version``; legacy v1/v2 documents
    are recognized by their format string.  A missing version with an
    unrecognizable format, a non-integer version, or a version from the
    future all fail naming exactly what was seen — never a ``KeyError``
    and never a silent misparse.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"{path}: model artifact must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    fmt = payload.get("format")
    format_version = _FORMAT_VERSIONS.get(fmt) if isinstance(fmt, str) else None
    version = payload.get("version", _MISSING)
    if version is _MISSING:
        if format_version is None:
            raise SerializationError(
                f"{path}: cannot determine model version: no 'version' "
                f"field and unrecognized format {fmt!r}"
            )
        return format_version  # legacy pre-'version' artifact
    if isinstance(version, bool) or not isinstance(version, int):
        raise SerializationError(
            f"{path}: model 'version' must be an integer, got {version!r}"
        )
    if version not in _LOADERS:
        raise SerializationError(
            f"{path}: model version {version} is not supported by this "
            f"build (reads versions {list(_SUPPORTED_VERSIONS)})"
        )
    if format_version is not None and format_version != version:
        raise SerializationError(
            f"{path}: model 'version' {version} disagrees with "
            f"format {fmt!r}"
        )
    return version


def load_model(
    path: str | Path, worlds: WorldCache | None = None
) -> MPFRecommender:
    """Reconstruct a recommender written by :func:`save_model` (v1/v2/v3).

    ``worlds`` shares the (catalog, hierarchy, MOA) world — and the
    interned symbol universe cached on it — across loads: pass one
    :class:`WorldCache` to every ``load_model`` call of a multi-model
    process and artifacts describing the same world are deduplicated.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: not valid JSON: {exc}") from exc
    version = _resolve_version(payload, path)
    return _LOADERS[version](payload, path, worlds)
