"""Dataset I and dataset II of the paper's evaluation (Section 5.2).

Both datasets start from Quest-generated baskets
(:mod:`repro.data.quest`) over ``n_items`` non-target items, priced with
the ladder of :mod:`repro.data.pricing` (each sale picks one of the ``m``
prices at random, unit quantity).  They differ in their target items:

* **Dataset I** — two target items costing $2 and $10; the cheap one occurs
  five times as frequently (the paper's two-point Zipf: "the higher the
  cost, the fewer the sales").
* **Dataset II** — ten target items with ``Cost(i) = 10·i``; frequency
  follows a (discretized) normal distribution over the item index, so most
  customers buy targets with cost around the mean.

Target prices are drawn uniformly from each item's ladder, like non-target
prices.

**Basket↔target association.**  The paper's recommenders reach hit rates
far above the best basket-independent strategy (95% vs ≈83% on dataset I),
so the generated target sale must correlate with the basket; Section 5.2
does not describe how.  We attach the signal to Quest pattern provenance:
every pattern is assigned a preferred ``(target item, price step)`` pair
drawn from the marginal distribution above, and each transaction adopts its
dominant pattern's pair with probability ``signal_strength`` (falling back
to an independent marginal draw otherwise).  Marginals are preserved in
expectation; ``signal_strength = 0`` recovers fully independent targets.
This substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.hierarchy import ConceptHierarchy
from repro.core.items import Item, ItemCatalog
from repro.core.sales import Sale, Transaction, TransactionDB
from repro.data.hierarchy_gen import grouped_hierarchy
from repro.data.pricing import PricingModel, price_code_name
from repro.data.quest import QuestConfig, QuestGenerator
from repro.errors import DataGenerationError

__all__ = [
    "DEFAULT_DISPERSION_PROFILE",
    "DEFAULT_STEP_WEIGHTS",
    "TargetSpec",
    "DatasetConfig",
    "Dataset",
    "build_dataset",
    "dataset_catalog",
    "dataset_hierarchy",
    "dataset_i_config",
    "dataset_ii_config",
    "iter_dataset_transactions",
    "make_dataset_i",
    "make_dataset_ii",
    "zipf_target_specs",
    "normal_target_specs",
]


@dataclass(frozen=True)
class TargetSpec:
    """One target item: id, cost, and relative sales frequency."""

    item_id: str
    cost: float
    weight: float

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise DataGenerationError(
                f"target {self.item_id!r}: cost must be positive, got {self.cost}"
            )
        if self.weight <= 0:
            raise DataGenerationError(
                f"target {self.item_id!r}: weight must be positive, got {self.weight}"
            )


def zipf_target_specs(costs: tuple[float, ...] = (2.0, 10.0)) -> tuple[TargetSpec, ...]:
    """Dataset I's targets: the cheap item occurs 5× as often (Zipf law)."""
    if len(costs) != 2:
        raise DataGenerationError("dataset I uses exactly two target items")
    return (
        TargetSpec(item_id="T1", cost=costs[0], weight=5.0),
        TargetSpec(item_id="T2", cost=costs[1], weight=1.0),
    )


def normal_target_specs(
    n_targets: int = 10,
    cost_step: float = 10.0,
    mean: float | None = None,
    sd: float = 1.5,
) -> tuple[TargetSpec, ...]:
    """Dataset II's targets: ``Cost(i) = 10·i``, normal frequency over ``i``."""
    if n_targets < 1:
        raise DataGenerationError(f"n_targets must be >= 1, got {n_targets}")
    mu = (n_targets + 1) / 2 if mean is None else mean
    specs = []
    for i in range(1, n_targets + 1):
        weight = float(np.exp(-((i - mu) ** 2) / (2 * sd**2)))
        specs.append(
            TargetSpec(item_id=f"T{i:02d}", cost=cost_step * i, weight=weight)
        )
    return tuple(specs)


@dataclass(frozen=True)
class DatasetConfig:
    """Everything needed to deterministically build one dataset."""

    name: str
    n_transactions: int
    quest: QuestConfig
    targets: tuple[TargetSpec, ...]
    pricing: PricingModel = field(default_factory=PricingModel)
    signal_strength: float = 0.8
    dispersion_profile: tuple[float, ...] = (1.0,)
    step_weights: tuple[float, ...] | None = None
    group_size: int = 10
    fanout: int = 5
    levels: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise DataGenerationError(
                f"n_transactions must be >= 1, got {self.n_transactions}"
            )
        if not self.targets:
            raise DataGenerationError("at least one target item is required")
        if not 0 <= self.signal_strength <= 1:
            raise DataGenerationError(
                f"signal_strength must be in [0, 1], got {self.signal_strength}"
            )
        if not self.dispersion_profile or any(
            w < 0 for w in self.dispersion_profile
        ):
            raise DataGenerationError(
                "dispersion_profile must be a non-empty tuple of non-negative "
                f"weights, got {self.dispersion_profile!r}"
            )
        if sum(self.dispersion_profile) <= 0:
            raise DataGenerationError("dispersion_profile weights sum to zero")
        if self.step_weights is not None:
            if len(self.step_weights) != self.pricing.m:
                raise DataGenerationError(
                    f"step_weights needs {self.pricing.m} entries, "
                    f"got {len(self.step_weights)}"
                )
            if any(w < 0 for w in self.step_weights) or sum(self.step_weights) <= 0:
                raise DataGenerationError(
                    "step_weights must be non-negative and sum to a positive value"
                )

    def scaled(self, n_transactions: int) -> "DatasetConfig":
        """The same dataset at a different transaction count."""
        return replace(self, n_transactions=n_transactions)


@dataclass
class Dataset:
    """A built dataset: transactions, hierarchy, and provenance."""

    config: DatasetConfig
    db: TransactionDB
    hierarchy: ConceptHierarchy

    @property
    def name(self) -> str:
        return self.config.name

    def target_profit_distribution(self) -> dict[float, int]:
        """Histogram of recorded target-sale profits (Figures 3(e)/4(e))."""
        histogram: dict[float, int] = {}
        for transaction in self.db:
            profit = round(transaction.recorded_target_profit(self.db.catalog), 6)
            histogram[profit] = histogram.get(profit, 0) + 1
        return dict(sorted(histogram.items()))


#: Default marginal over *preferred* price steps: customer segments prefer
#: the cheaper end of the ladder (the paper's inverse likelihood/spend
#: correlation); the upper steps are reached only through unavailability.
DEFAULT_STEP_WEIGHTS = (0.55, 0.45, 0.0, 0.0)

#: Default shopping-on-unavailability profile: the recorded price is the
#: segment's preferred step 55% of the time, one step above 30%, two above
#: 15% (capped at the top of the ladder).
DEFAULT_DISPERSION_PROFILE = (0.55, 0.30, 0.15)


def _experiment_quest_config(n_items: int, n_patterns: int | None) -> QuestConfig:
    """Quest settings shared by datasets I and II (windowed signal mode)."""
    window_size = 10
    if n_patterns is None:
        # Several patterns per window: enough that instance-based methods
        # see few examples per exact pattern while window-level (concept)
        # rules keep ample support — the sparsity regime of the paper's
        # |L| = 2000 patterns over 1000 items.
        n_patterns = 8 * max(1, n_items // window_size)
    return QuestConfig(
        n_items=n_items,
        n_patterns=n_patterns,
        avg_pattern_size=4.0,
        avg_transaction_size=4.0,
        corruption_mean=0.25,
        window_size=window_size,
    )


def dataset_i_config(
    n_transactions: int = 100_000,
    n_items: int = 1000,
    n_patterns: int | None = None,
    signal_strength: float = 0.95,
    dispersion_profile: tuple[float, ...] = DEFAULT_DISPERSION_PROFILE,
    seed: int = 0,
) -> DatasetConfig:
    """Paper dataset I (defaults at paper scale; pass smaller for tests)."""
    return DatasetConfig(
        name="dataset-I",
        n_transactions=n_transactions,
        quest=_experiment_quest_config(n_items, n_patterns),
        targets=zipf_target_specs(),
        signal_strength=signal_strength,
        dispersion_profile=dispersion_profile,
        step_weights=DEFAULT_STEP_WEIGHTS,
        levels=1,
        seed=seed,
    )


def dataset_ii_config(
    n_transactions: int = 100_000,
    n_items: int = 1000,
    n_patterns: int | None = None,
    signal_strength: float = 0.95,
    dispersion_profile: tuple[float, ...] = DEFAULT_DISPERSION_PROFILE,
    seed: int = 0,
) -> DatasetConfig:
    """Paper dataset II (ten targets, normal frequency)."""
    return DatasetConfig(
        name="dataset-II",
        n_transactions=n_transactions,
        quest=_experiment_quest_config(n_items, n_patterns),
        targets=normal_target_specs(),
        signal_strength=signal_strength,
        dispersion_profile=dispersion_profile,
        step_weights=DEFAULT_STEP_WEIGHTS,
        levels=1,
        seed=seed,
    )


def make_dataset_i(**kwargs: object) -> Dataset:
    """Build dataset I; keyword arguments as in :func:`dataset_i_config`."""
    return build_dataset(dataset_i_config(**kwargs))  # type: ignore[arg-type]


def make_dataset_ii(**kwargs: object) -> Dataset:
    """Build dataset II; keyword arguments as in :func:`dataset_ii_config`."""
    return build_dataset(dataset_ii_config(**kwargs))  # type: ignore[arg-type]


def build_dataset(config: DatasetConfig) -> Dataset:
    """Deterministically build a dataset from its configuration."""
    catalog = dataset_catalog(config)
    hierarchy = dataset_hierarchy(config, catalog)
    db = TransactionDB(
        catalog=catalog,
        transactions=list(iter_dataset_transactions(config, catalog)),
    )
    return Dataset(config=config, db=db, hierarchy=hierarchy)


def dataset_catalog(config: DatasetConfig) -> ItemCatalog:
    """The catalog a dataset config generates (deterministic, no RNG)."""
    return _build_catalog(config)


def dataset_hierarchy(
    config: DatasetConfig, catalog: ItemCatalog | None = None
) -> ConceptHierarchy:
    """The concept hierarchy a dataset config generates."""
    if catalog is None:
        catalog = _build_catalog(config)
    return grouped_hierarchy(
        catalog,
        group_size=config.group_size,
        fanout=config.fanout,
        levels=config.levels,
    )


def iter_dataset_transactions(
    config: DatasetConfig, catalog: ItemCatalog | None = None
):
    """Yield the dataset's transactions one at a time, in tid order.

    The streaming twin of :func:`build_dataset`: the builder RNG and the
    Quest generator's RNG are two *independent* streams (different seeds
    derived from ``config.seed``), so lazily interleaving basket
    generation with target assignment consumes each stream in exactly
    the order the batch builder does — the yielded transactions are
    identical to ``build_dataset(config).db``, but a multi-million-
    transaction dataset can be piped straight into
    :func:`~repro.data.io.write_transactions_stream` or the out-of-core
    store without ever materializing the list.  ``catalog`` avoids a
    rebuild when the caller already has it; it must be this config's.
    """
    rng = np.random.default_rng(config.seed + 1_000_003)
    if catalog is None:
        catalog = _build_catalog(config)

    generator = QuestGenerator(config=config.quest, seed=config.seed)

    marginal_pairs, marginal_probs = _target_marginal(config)
    if config.quest.window_size is not None:
        # Windowed mode: patterns sharing an item window share one preferred
        # pair, putting the signal at concept granularity (module docstring).
        # Windows are allocated to target items *stratified* — in exact
        # proportion to the item marginal (largest-remainder rounding) —
        # because iid sampling over a few dozen windows makes the realized
        # target mix swing wildly across seeds, flipping which item carries
        # the most profit mass.
        window_pairs = _stratified_window_pairs(
            config, config.quest.n_windows, rng
        )
        pattern_pairs = [
            window_pairs[generator.window_of_pattern(pid)]
            for pid in range(config.quest.n_patterns)
        ]
        pair_index = {pair: i for i, pair in enumerate(marginal_pairs)}
        pattern_pairs = [pair_index[pair] for pair in pattern_pairs]
    else:
        pattern_pairs = list(
            rng.choice(
                len(marginal_pairs), size=config.quest.n_patterns, p=marginal_probs
            )
        )

    m = config.pricing.m
    dispersion = np.array(config.dispersion_profile, dtype=np.float64)
    dispersion /= dispersion.sum()
    baskets = generator.iter_generate(config.n_transactions)
    for tid, basket in enumerate(baskets):
        nontarget = tuple(
            Sale(
                item_id=_nontarget_id(index),
                promo_code=price_code_name(int(rng.integers(1, m + 1))),
            )
            for index in basket.items
        )
        if rng.random() < config.signal_strength:
            pair_idx = int(pattern_pairs[basket.dominant_pattern])
        else:
            pair_idx = int(rng.choice(len(marginal_pairs), p=marginal_probs))
        target_id, step = marginal_pairs[pair_idx]
        # Shopping on unavailability (Section 2's MOA motivation): the
        # preferred price is sometimes not on offer at transaction time, so
        # the recorded price sits 0, 1, 2, … steps *above* the preferred
        # step, with probabilities given by the dispersion profile.
        offset = int(rng.choice(len(dispersion), p=dispersion))
        step = min(step + offset, m)
        target = Sale(item_id=target_id, promo_code=price_code_name(step))
        yield Transaction(
            tid=tid, nontarget_sales=nontarget, target_sale=target
        )


def _nontarget_id(index: int) -> str:
    """Stable id of the 0-based Quest item ``index`` (1-based item number)."""
    return f"I{index + 1:04d}"


def _build_catalog(config: DatasetConfig) -> ItemCatalog:
    items: list[Item] = [
        config.pricing.nontarget_item(_nontarget_id(index), index + 1)
        for index in range(config.quest.n_items)
    ]
    for spec in config.targets:
        items.append(config.pricing.target_item(spec.item_id, spec.cost))
    return ItemCatalog.from_items(items)


def _stratified_window_pairs(
    config: DatasetConfig, n_windows: int, rng: np.random.Generator
) -> list[tuple[str, int]]:
    """One (target item, preferred step) pair per window, stratified.

    Window counts per target item follow the item weights exactly (largest
    remainder); each window's preferred step is then drawn from the step
    marginal, and the item-to-window mapping is shuffled.
    """
    total_weight = sum(spec.weight for spec in config.targets)
    quotas = [spec.weight / total_weight * n_windows for spec in config.targets]
    counts = [int(q) for q in quotas]
    remainders = sorted(
        range(len(quotas)),
        key=lambda i: quotas[i] - counts[i],
        reverse=True,
    )
    for i in remainders[: n_windows - sum(counts)]:
        counts[i] += 1

    step_weights = np.array(
        config.step_weights or (1.0,) * config.pricing.m, dtype=np.float64
    )
    step_weights /= step_weights.sum()
    pairs: list[tuple[str, int]] = []
    for spec, count in zip(config.targets, counts):
        for _ in range(count):
            step = 1 + int(rng.choice(config.pricing.m, p=step_weights))
            pairs.append((spec.item_id, step))
    order = rng.permutation(len(pairs))
    return [pairs[i] for i in order]


def _target_marginal(
    config: DatasetConfig,
) -> tuple[list[tuple[str, int]], np.ndarray]:
    """Joint marginal over (target item, price step).

    Items are weighted by their spec weight; price steps are uniform unless
    ``step_weights`` biases them (the paper's "inverse correlation between
    the likelihood to buy and the dollar amount to spend": cheaper steps
    occur more often).
    """
    step_weights = config.step_weights or (1.0,) * config.pricing.m
    total_step = sum(step_weights)
    pairs: list[tuple[str, int]] = []
    probs: list[float] = []
    total_weight = sum(spec.weight for spec in config.targets)
    for spec in config.targets:
        for step in range(1, config.pricing.m + 1):
            pairs.append((spec.item_id, step))
            probs.append(
                spec.weight / total_weight * step_weights[step - 1] / total_step
            )
    return pairs, np.array(probs)
