"""Serialization of catalogs and transaction databases.

The on-disk format is JSON lines: the first line holds the catalog (items
with their promotion codes), every subsequent line one transaction.  The
format is self-contained — loading needs no external catalog — and round
trips exactly (see the property tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.core.items import Item, ItemCatalog
from repro.core.promotion import PromotionCode
from repro.core.sales import Sale, Transaction, TransactionDB
from repro.errors import SerializationError

__all__ = [
    "catalog_to_dict",
    "catalog_from_dict",
    "transaction_to_dict",
    "transaction_from_dict",
    "save_transactions",
    "load_transactions",
    "read_catalog",
    "iter_transactions",
    "write_transactions_stream",
]

_FORMAT = "repro-profit-mining-v1"


def catalog_to_dict(catalog: ItemCatalog) -> dict[str, Any]:
    """JSON-safe representation of a catalog."""
    return {
        "format": _FORMAT,
        "items": [
            {
                "item_id": item.item_id,
                "is_target": item.is_target,
                "promotions": [
                    {
                        "code": promo.code,
                        "price": promo.price,
                        "cost": promo.cost,
                        "packing": promo.packing,
                    }
                    for promo in item.promotions
                ],
            }
            for item in catalog
        ],
    }


def catalog_from_dict(payload: dict[str, Any]) -> ItemCatalog:
    """Inverse of :func:`catalog_to_dict`."""
    if payload.get("format") != _FORMAT:
        raise SerializationError(
            f"unexpected catalog format {payload.get('format')!r}; "
            f"expected {_FORMAT!r}"
        )
    try:
        items = [
            Item(
                item_id=entry["item_id"],
                is_target=bool(entry["is_target"]),
                promotions=tuple(
                    PromotionCode(
                        code=promo["code"],
                        price=float(promo["price"]),
                        cost=float(promo["cost"]),
                        packing=int(promo["packing"]),
                    )
                    for promo in entry["promotions"]
                ),
            )
            for entry in payload["items"]
        ]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed catalog payload: {exc}") from exc
    return ItemCatalog.from_items(items)


def transaction_to_dict(transaction: Transaction) -> dict[str, Any]:
    """JSON-safe representation of one transaction."""
    return {
        "tid": transaction.tid,
        "sales": [
            [sale.item_id, sale.promo_code, sale.quantity]
            for sale in transaction.nontarget_sales
        ],
        "target": [
            transaction.target_sale.item_id,
            transaction.target_sale.promo_code,
            transaction.target_sale.quantity,
        ],
    }


def transaction_from_dict(payload: dict[str, Any]) -> Transaction:
    """Inverse of :func:`transaction_to_dict`."""
    try:
        nontarget = tuple(
            Sale(item_id=entry[0], promo_code=entry[1], quantity=float(entry[2]))
            for entry in payload["sales"]
        )
        target_entry = payload["target"]
        target = Sale(
            item_id=target_entry[0],
            promo_code=target_entry[1],
            quantity=float(target_entry[2]),
        )
        return Transaction(
            tid=int(payload["tid"]), nontarget_sales=nontarget, target_sale=target
        )
    except (KeyError, IndexError, TypeError) as exc:
        raise SerializationError(f"malformed transaction payload: {exc}") from exc


def save_transactions(db: TransactionDB, path: str | Path) -> None:
    """Write ``db`` (catalog + transactions) as JSON lines to ``path``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(catalog_to_dict(db.catalog)) + "\n")
        for transaction in db:
            handle.write(json.dumps(transaction_to_dict(transaction)) + "\n")


def load_transactions(path: str | Path) -> TransactionDB:
    """Read a database written by :func:`save_transactions`."""
    path = Path(path)
    catalog = read_catalog(path)
    return TransactionDB(
        catalog=catalog, transactions=list(iter_transactions(path))
    )


def read_catalog(path: str | Path) -> ItemCatalog:
    """Read only the catalog header line of a JSON-lines database."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = handle.readline()
    if not header.strip():
        raise SerializationError(f"{path}: empty file")
    try:
        return catalog_from_dict(json.loads(header))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: bad catalog header: {exc}") from exc


def iter_transactions(path: str | Path) -> Iterator[Transaction]:
    """Yield the transactions of a JSON-lines database one at a time.

    The streaming twin of :func:`load_transactions`: the file is read
    line by line, so a multi-million-transaction database never has to
    fit in memory — this is how the out-of-core store
    (:class:`~repro.core.engine.store.ChunkedTransactionStore`) ingests
    its input.  The catalog header is validated but not returned; use
    :func:`read_catalog` for it.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = handle.readline()
        if not header.strip():
            raise SerializationError(f"{path}: empty file")
        try:
            catalog_from_dict(json.loads(header))
        except json.JSONDecodeError as exc:
            raise SerializationError(f"{path}: bad catalog header: {exc}") from exc
        for line_no, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                yield transaction_from_dict(json.loads(line))
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"{path}:{line_no}: bad transaction line: {exc}"
                ) from exc


def write_transactions_stream(
    path: str | Path,
    catalog: ItemCatalog,
    transactions: Iterable[Transaction],
) -> int:
    """Stream ``transactions`` to ``path`` as JSON lines; returns the count.

    The streaming twin of :func:`save_transactions`: transactions are
    serialized one at a time as they arrive, so a generator (e.g.
    :meth:`~repro.data.quest.QuestGenerator.iter_generate` routed through
    :func:`~repro.data.datasets.iter_dataset_transactions`) can emit
    multi-million-transaction files without either side holding the
    dataset in RAM.  The output is byte-identical to
    :func:`save_transactions` on the same data.
    """
    path = Path(path)
    n_written = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(catalog_to_dict(catalog)) + "\n")
        for transaction in transactions:
            handle.write(json.dumps(transaction_to_dict(transaction)) + "\n")
            n_written += 1
    return n_written
