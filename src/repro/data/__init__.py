"""Synthetic data: Quest generator, pricing, datasets I/II, hierarchy, IO."""

from repro.data.datasets import (
    Dataset,
    DatasetConfig,
    TargetSpec,
    build_dataset,
    dataset_i_config,
    dataset_ii_config,
    make_dataset_i,
    make_dataset_ii,
    normal_target_specs,
    zipf_target_specs,
)
from repro.data.hierarchy_gen import grouped_hierarchy
from repro.data.io import load_transactions, save_transactions
from repro.data.model_io import load_model, save_model
from repro.data.packs import PacksConfig, make_dataset_packs
from repro.data.pricing import DEFAULT_MAX_COST, PricingModel, price_code_name
from repro.data.quest import QuestBasket, QuestConfig, QuestGenerator, QuestPattern

__all__ = [
    "DEFAULT_MAX_COST",
    "Dataset",
    "DatasetConfig",
    "PacksConfig",
    "PricingModel",
    "QuestBasket",
    "QuestConfig",
    "QuestGenerator",
    "QuestPattern",
    "TargetSpec",
    "build_dataset",
    "dataset_i_config",
    "dataset_ii_config",
    "grouped_hierarchy",
    "load_model",
    "load_transactions",
    "make_dataset_i",
    "make_dataset_packs",
    "make_dataset_ii",
    "normal_target_specs",
    "price_code_name",
    "save_model",
    "save_transactions",
    "zipf_target_specs",
]
