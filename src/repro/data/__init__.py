"""Synthetic data: Quest generator, pricing, datasets I/II, hierarchy, IO.

Submodules are imported lazily: the synthetic generators
(:mod:`repro.data.datasets`, :mod:`repro.data.quest`, …) need numpy, but
the persistence layer (:mod:`repro.data.model_io`, :mod:`repro.data.io`)
must stay importable on a numpy-free install — the serving daemon loads
models without ever touching the generators
(``scripts/check_numpy_free.py`` enforces this).
"""

from importlib import import_module

_EXPORTS = {
    "Dataset": "repro.data.datasets",
    "DatasetConfig": "repro.data.datasets",
    "TargetSpec": "repro.data.datasets",
    "build_dataset": "repro.data.datasets",
    "dataset_i_config": "repro.data.datasets",
    "dataset_ii_config": "repro.data.datasets",
    "make_dataset_i": "repro.data.datasets",
    "make_dataset_ii": "repro.data.datasets",
    "normal_target_specs": "repro.data.datasets",
    "zipf_target_specs": "repro.data.datasets",
    "grouped_hierarchy": "repro.data.hierarchy_gen",
    "load_transactions": "repro.data.io",
    "save_transactions": "repro.data.io",
    "WorldCache": "repro.data.model_io",
    "load_model": "repro.data.model_io",
    "save_model": "repro.data.model_io",
    "PacksConfig": "repro.data.packs",
    "make_dataset_packs": "repro.data.packs",
    "DEFAULT_MAX_COST": "repro.data.pricing",
    "PricingModel": "repro.data.pricing",
    "price_code_name": "repro.data.pricing",
    "QuestBasket": "repro.data.quest",
    "QuestConfig": "repro.data.quest",
    "QuestGenerator": "repro.data.quest",
    "QuestPattern": "repro.data.quest",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: __getattr__ fires once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
