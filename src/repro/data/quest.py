"""IBM Quest-style synthetic basket generator (paper Section 5.2).

The paper builds its datasets with the IBM Almaden synthetic data generator
("syndata"), which is no longer distributed; this module re-implements the
algorithm from its published description (Agrawal & Srikant, "Fast
Algorithms for Mining Association Rules", VLDB 1994, Section 2.4.3):

* **Potentially large itemsets ("patterns").**  ``n_patterns`` maximal
  itemsets are drawn; each pattern's size is Poisson with mean
  ``avg_pattern_size`` (minimum 1).  To model common co-occurrence
  structure, a fraction of each pattern's items — exponentially distributed
  with mean ``correlation`` — is inherited from the previous pattern, the
  rest drawn uniformly.  Each pattern gets an exponentially distributed
  weight (normalized to a probability) and a corruption level drawn from
  ``Normal(corruption_mean, corruption_sd)`` clipped to ``[0, 1]``.
* **Transactions.**  Each transaction's size is Poisson with mean
  ``avg_transaction_size`` (minimum 1).  Patterns are picked by weight;
  a picked pattern is *corrupted* by repeatedly dropping a random item
  while a uniform draw stays below the pattern's corruption level.  If the
  corrupted pattern overflows the remaining transaction budget it is still
  kept in half the cases and deferred otherwise, as in the original
  generator.

Beyond the original we record, per transaction, the *dominant pattern* (the
pattern that contributed the most items).  The paper's experiments need the
target sale to be statistically associated with the basket — PROF+MOA
reaches a 95% hit rate, impossible under basket-independent target
assignment — but Section 5.2 does not spell out the mechanism.  Dominant-
pattern provenance is the hook :mod:`repro.data.datasets` uses to inject
that association with a controllable strength (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataGenerationError

__all__ = ["QuestConfig", "QuestPattern", "QuestBasket", "QuestGenerator"]


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of the Quest generator (names follow the original)."""

    n_items: int = 1000
    n_patterns: int = 200
    avg_pattern_size: float = 4.0
    avg_transaction_size: float = 10.0
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1
    max_transaction_size: int = 40
    window_size: int | None = None

    def __post_init__(self) -> None:
        if self.n_items < 2:
            raise DataGenerationError(f"n_items must be >= 2, got {self.n_items}")
        if self.n_patterns < 1:
            raise DataGenerationError(
                f"n_patterns must be >= 1, got {self.n_patterns}"
            )
        if self.avg_pattern_size < 1:
            raise DataGenerationError(
                f"avg_pattern_size must be >= 1, got {self.avg_pattern_size}"
            )
        if self.avg_transaction_size < 1:
            raise DataGenerationError(
                f"avg_transaction_size must be >= 1, got {self.avg_transaction_size}"
            )
        if not 0 <= self.correlation <= 1:
            raise DataGenerationError(
                f"correlation must be in [0, 1], got {self.correlation}"
            )
        if not 0 <= self.corruption_mean <= 1:
            raise DataGenerationError(
                f"corruption_mean must be in [0, 1], got {self.corruption_mean}"
            )
        if self.corruption_sd < 0:
            raise DataGenerationError(
                f"corruption_sd must be >= 0, got {self.corruption_sd}"
            )
        if self.max_transaction_size < 1:
            raise DataGenerationError("max_transaction_size must be >= 1")
        if self.window_size is not None and not 1 <= self.window_size <= self.n_items:
            raise DataGenerationError(
                f"window_size must be in [1, n_items], got {self.window_size}"
            )

    @property
    def n_windows(self) -> int:
        """Number of item windows in windowed mode (1 otherwise)."""
        if self.window_size is None:
            return 1
        return max(1, self.n_items // self.window_size)


@dataclass(frozen=True)
class QuestPattern:
    """One potentially large itemset with its weight and corruption level."""

    pattern_id: int
    items: tuple[int, ...]
    weight: float
    corruption: float


@dataclass(frozen=True)
class QuestBasket:
    """One generated basket: item indices plus pattern provenance."""

    items: tuple[int, ...]
    dominant_pattern: int


@dataclass
class QuestGenerator:
    """Stateful generator; construct once, then :meth:`generate` baskets."""

    config: QuestConfig = field(default_factory=QuestConfig)
    seed: int = 0
    patterns: list[QuestPattern] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self.patterns = self._build_patterns()
        self._weights = np.array([p.weight for p in self.patterns])
        self._weights /= self._weights.sum()

    def window_of_pattern(self, pattern_id: int) -> int:
        """The item window a pattern draws from (windowed mode; else 0)."""
        if self.config.window_size is None:
            return 0
        return pattern_id % self.config.n_windows

    # ------------------------------------------------------------------
    def _build_patterns(self) -> list[QuestPattern]:
        cfg = self.config
        rng = self._rng
        raw_weights = rng.exponential(1.0, size=cfg.n_patterns)
        corruptions = np.clip(
            rng.normal(cfg.corruption_mean, cfg.corruption_sd, size=cfg.n_patterns),
            0.0,
            1.0,
        )
        patterns: list[QuestPattern] = []
        previous: tuple[int, ...] = ()
        for pid in range(cfg.n_patterns):
            size = max(1, int(rng.poisson(cfg.avg_pattern_size)))
            size = min(size, cfg.n_items)
            items: set[int] = set()
            if cfg.window_size is not None:
                # Windowed mode: each pattern draws its items from one
                # contiguous window of the item universe (window = pattern's
                # id modulo the window count), so id-order concept groups
                # align with co-purchase communities while distinct patterns
                # of a window share few raw items.  Optional extension used
                # by the scaled-down experiment datasets (DESIGN.md).
                window = self.window_of_pattern(pid)
                lo = window * cfg.window_size
                hi = min(lo + cfg.window_size, cfg.n_items)
                size = min(size, hi - lo)
                items.update(
                    int(i) for i in rng.choice(range(lo, hi), size=size, replace=False)
                )
            elif previous:
                frac = min(1.0, rng.exponential(cfg.correlation))
                n_inherit = min(len(previous), int(round(frac * size)))
                if n_inherit:
                    items.update(
                        int(i)
                        for i in rng.choice(previous, size=n_inherit, replace=False)
                    )
            while len(items) < size:
                items.add(int(rng.integers(cfg.n_items)))
            pattern = QuestPattern(
                pattern_id=pid,
                items=tuple(sorted(items)),
                weight=float(raw_weights[pid]),
                corruption=float(corruptions[pid]),
            )
            patterns.append(pattern)
            previous = pattern.items
        return patterns

    # ------------------------------------------------------------------
    def generate(self, n_transactions: int) -> list[QuestBasket]:
        """Generate ``n_transactions`` baskets."""
        return list(self.iter_generate(n_transactions))

    def iter_generate(self, n_transactions: int):
        """Yield ``n_transactions`` baskets one at a time.

        The streaming twin of :meth:`generate`: baskets are drawn lazily
        from the same RNG in the same order, so consuming the generator
        fully produces exactly :meth:`generate`'s list — but a
        multi-million-basket run (``profit-mining generate`` feeding the
        out-of-core store) never holds more than one basket in memory.
        """
        if n_transactions < 1:
            raise DataGenerationError(
                f"n_transactions must be >= 1, got {n_transactions}"
            )
        for _ in range(n_transactions):
            yield self._one_basket()

    def _one_basket(self) -> QuestBasket:
        cfg = self.config
        rng = self._rng
        budget = max(1, int(rng.poisson(cfg.avg_transaction_size)))
        budget = min(budget, cfg.max_transaction_size)
        items: set[int] = set()
        contributions: dict[int, int] = {}
        # Bound the number of pattern draws so heavy corruption cannot stall
        # the generator; the original uses the same keep-half heuristic.
        for _ in range(8 * max(1, budget)):
            if len(items) >= budget:
                break
            pattern = self.patterns[
                int(rng.choice(len(self.patterns), p=self._weights))
            ]
            picked = list(pattern.items)
            while len(picked) > 1 and rng.random() < pattern.corruption:
                picked.pop(int(rng.integers(len(picked))))
            new_items = [i for i in picked if i not in items]
            if not new_items:
                continue
            overflow = len(items) + len(new_items) > budget
            if overflow and rng.random() < 0.5:
                continue  # defer the pattern, as the original generator does
            items.update(new_items)
            contributions[pattern.pattern_id] = (
                contributions.get(pattern.pattern_id, 0) + len(new_items)
            )
        if not items:  # extremely corrupted draw: fall back to one random item
            items.add(int(rng.integers(cfg.n_items)))
        dominant = max(
            contributions,
            key=lambda pid: (contributions[pid], -pid),
            default=-1,
        )
        if dominant == -1:
            dominant = int(rng.choice(len(self.patterns), p=self._weights))
        return QuestBasket(items=tuple(sorted(items)), dominant_pattern=dominant)
