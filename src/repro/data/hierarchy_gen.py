"""Synthetic concept hierarchies for generated catalogs.

The paper mines multi-level rules over a concept hierarchy but does not
describe the hierarchy used with the synthetic data.  We build a
deterministic grouped hierarchy (documented substitution, DESIGN.md):
non-target items are partitioned, in item order, into groups of
``group_size`` under level-1 concepts ``C1, C2, …``; every ``fanout``
level-1 concepts share a level-2 concept ``D1, D2, …``; and so on for
``levels`` levels.  Target items attach directly to the root, as the paper
requires.
"""

from __future__ import annotations

from repro.core.hierarchy import ConceptHierarchy
from repro.core.items import ItemCatalog
from repro.errors import DataGenerationError

__all__ = ["grouped_hierarchy"]

_LEVEL_PREFIXES = "CDEFG"


def grouped_hierarchy(
    catalog: ItemCatalog,
    group_size: int = 10,
    fanout: int = 5,
    levels: int = 2,
) -> ConceptHierarchy:
    """Build the grouped hierarchy described in the module docstring.

    Parameters
    ----------
    catalog:
        Catalog whose non-target items get grouped (in insertion order).
    group_size:
        Items per level-1 concept.
    fanout:
        Concepts per concept on every higher level.
    levels:
        Number of concept levels between items and the root (1–5).
    """
    if group_size < 1:
        raise DataGenerationError(f"group_size must be >= 1, got {group_size}")
    if fanout < 1:
        raise DataGenerationError(f"fanout must be >= 1, got {fanout}")
    if not 1 <= levels <= len(_LEVEL_PREFIXES):
        raise DataGenerationError(
            f"levels must be in [1, {len(_LEVEL_PREFIXES)}], got {levels}"
        )

    groups: dict[str, list[str]] = {}
    current = [item.item_id for item in catalog.nontarget_items]
    width = group_size
    for level in range(levels):
        prefix = _LEVEL_PREFIXES[level]
        parents: list[str] = []
        for start in range(0, len(current), width):
            concept = f"{prefix}{start // width + 1}"
            groups[concept] = current[start : start + width]
            parents.append(concept)
        if len(parents) <= 1:
            current = parents
            break  # a single concept at this level; higher levels add nothing
        current = parents
        width = fanout
    return ConceptHierarchy.for_catalog(catalog, groups)
