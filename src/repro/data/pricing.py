"""The paper's pricing model for synthetic items (Section 5.2).

Every item gets a single cost and ``m`` prices::

    Cost(i) = c / i                       (non-target item number i, 1-based)
    P_j     = (1 + j·δ) · Cost(i)         j = 1 … m

with the paper's defaults ``m = 4`` and ``δ = 10%``, so the profit of item
``i`` at price ``P_j`` is ``j·δ·Cost(i)``.  All promotion codes share a
single packing of 1 ("a single cost and a single packing for all promotion
codes ... we use 'price' for 'promotion code'"), which makes favorability a
total order: a lower price is strictly more favorable.

Target items use the same price ladder over their own costs ($2/$10 for
dataset I, ``10·i`` for dataset II).

The paper does not state the maximum single-item cost ``c``; we default to
``c = 10`` so the most expensive non-target item costs about as much as the
cheaper dataset-I target (documented substitution, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.items import Item
from repro.core.promotion import PromotionCode
from repro.errors import DataGenerationError

__all__ = ["PricingModel", "price_code_name", "DEFAULT_MAX_COST"]

DEFAULT_MAX_COST = 10.0


def price_code_name(j: int) -> str:
    """The promotion-code id of the j-th price step (1-based), e.g. ``"P2"``."""
    return f"P{j}"


@dataclass(frozen=True)
class PricingModel:
    """Generates the paper's price ladders.

    Parameters
    ----------
    m:
        Number of prices per item (paper: 4).
    delta:
        Markup step (paper: 0.10).
    max_cost:
        ``c`` in ``Cost(i) = c / i`` for non-target items.
    """

    m: int = 4
    delta: float = 0.10
    max_cost: float = DEFAULT_MAX_COST

    def __post_init__(self) -> None:
        if self.m < 1:
            raise DataGenerationError(f"m must be >= 1, got {self.m}")
        if self.delta <= 0:
            raise DataGenerationError(f"delta must be positive, got {self.delta}")
        if self.max_cost <= 0:
            raise DataGenerationError(
                f"max_cost must be positive, got {self.max_cost}"
            )

    def nontarget_cost(self, item_number: int) -> float:
        """``Cost(i) = c / i`` for the 1-based non-target item number."""
        if item_number < 1:
            raise DataGenerationError(
                f"item_number must be >= 1, got {item_number}"
            )
        return self.max_cost / item_number

    def price_ladder(self, cost: float) -> tuple[PromotionCode, ...]:
        """The ``m`` promotion codes over ``cost``: ``P_j = (1 + j·δ)·cost``."""
        if cost <= 0:
            raise DataGenerationError(f"cost must be positive, got {cost}")
        return tuple(
            PromotionCode(
                code=price_code_name(j),
                price=(1.0 + j * self.delta) * cost,
                cost=cost,
            )
            for j in range(1, self.m + 1)
        )

    def nontarget_item(self, item_id: str, item_number: int) -> Item:
        """A non-target item with the paper's cost and price ladder."""
        return Item(
            item_id=item_id,
            promotions=self.price_ladder(self.nontarget_cost(item_number)),
            is_target=False,
        )

    def target_item(self, item_id: str, cost: float) -> Item:
        """A target item with the price ladder over an explicit cost."""
        return Item(
            item_id=item_id,
            promotions=self.price_ladder(cost),
            is_target=True,
        )

    def profit_at_step(self, cost: float, j: int) -> float:
        """Profit per unit at price step ``j``: ``j·δ·cost``."""
        if not 1 <= j <= self.m:
            raise DataGenerationError(f"price step must be in [1, {self.m}], got {j}")
        return j * self.delta * cost
