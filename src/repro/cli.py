"""Command-line interface: generate data, fit recommenders, run experiments.

Usage (also available as the ``profit-mining`` console script)::

    python -m repro generate --dataset I --transactions 2000 --out data.jsonl
    python -m repro fit --data data.jsonl --min-support 0.01 --explain 3
    python -m repro sweep --dataset I --scale tiny
    python -m repro figure 3a --scale tiny
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Sequence

from repro import __version__
from repro.core.engine import BACKENDS
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.data.datasets import build_dataset, dataset_i_config, dataset_ii_config
from repro.data.hierarchy_gen import grouped_hierarchy
from repro.data.io import load_transactions, save_transactions
from repro.errors import ProfitMiningError
from repro.eval.experiments import (
    ExperimentScale,
    behavior_gain,
    gain_and_size_sweep,
    get_dataset,
    profit_distribution,
    profit_range_hit_rates,
    scale_from_env,
)
from repro.eval.reporting import format_histogram, format_series, format_table
from repro.obs import trace as obs

__all__ = ["main", "build_parser"]

_SCALES = {
    "tiny": ExperimentScale.tiny,
    "small": ExperimentScale.small,
    "medium": ExperimentScale.medium,
    "paper": ExperimentScale.paper,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="profit-mining",
        description="Reproduction of 'Profit Mining: From Patterns to Actions' "
        "(Wang, Zhou & Han, EDBT 2002)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("--dataset", choices=("I", "II"), default="I")
    gen.add_argument("--transactions", type=int, default=2500)
    gen.add_argument("--items", type=int, default=300)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output JSON-lines path")
    gen.add_argument(
        "--stream",
        action="store_true",
        help="stream transactions to disk one at a time instead of "
        "materializing the dataset in RAM first (byte-identical output; "
        "use for multi-million-transaction files)",
    )

    fit = sub.add_parser("fit", help="fit the cut-optimal recommender on a file")
    fit.add_argument("--data", required=True, help="JSON-lines transactions")
    fit.add_argument("--min-support", type=float, default=0.01)
    fit.add_argument("--max-body-size", type=int, default=2)
    fit.add_argument("--no-moa", action="store_true", help="disable MOA")
    _add_backend_arguments(fit)
    fit.add_argument(
        "--explain",
        type=int,
        default=0,
        metavar="N",
        help="explain the recommendation for the first N transactions",
    )
    fit.add_argument(
        "--save-model",
        default=None,
        metavar="PATH",
        help="persist the fitted recommender as JSON",
    )
    _add_store_arguments(fit)
    _add_trace_argument(fit)

    refresh = sub.add_parser(
        "refresh",
        help="append new transactions to an out-of-core store and refit "
        "incrementally (SON refresh; identical to re-fitting from scratch)",
    )
    refresh.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="store directory from a previous 'fit --backend ooc --store'",
    )
    refresh.add_argument(
        "--data", required=True, help="JSON-lines file of NEW transactions"
    )
    refresh.add_argument("--min-support", type=float, default=0.01)
    refresh.add_argument("--max-body-size", type=int, default=2)
    refresh.add_argument("--no-moa", action="store_true", help="disable MOA")
    refresh.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker threads for per-partition local mining "
        "(default: $REPRO_JOBS or 1; results are identical at any setting)",
    )
    refresh.add_argument(
        "--max-resident-mb",
        type=float,
        default=None,
        metavar="MB",
        help="resident-partition budget while counting (default 256)",
    )
    refresh.add_argument(
        "--save-model",
        default=None,
        metavar="PATH",
        help="persist the refreshed recommender as JSON",
    )
    _add_trace_argument(refresh)

    export = sub.add_parser(
        "export", help="export the rules of a fitted or saved model as CSV"
    )
    export.add_argument(
        "--data", default=None, help="JSON-lines transactions to fit on"
    )
    export.add_argument(
        "--model",
        default=None,
        metavar="PATH",
        help="export from a saved model (see 'fit --save-model') "
        "instead of fitting",
    )
    export.add_argument("--min-support", type=float, default=0.01)
    export.add_argument("--max-body-size", type=int, default=2)
    export.add_argument("--no-moa", action="store_true", help="disable MOA")
    _add_backend_arguments(export)
    export.add_argument("--out", required=True, help="output CSV path")
    export.add_argument(
        "--recommendations-out",
        default=None,
        metavar="PATH",
        help="also export per-transaction recommendations (batch-served) "
        "as CSV; with --model this still needs --data to serve",
    )
    _add_trace_argument(export)

    sweep = sub.add_parser("sweep", help="run the six-system support sweep")
    sweep.add_argument("--dataset", choices=("I", "II"), default="I")
    _add_scale_argument(sweep)
    _add_jobs_argument(sweep)
    _add_trace_argument(sweep)

    compare = sub.add_parser(
        "compare", help="cross-validate systems and test significance"
    )
    compare.add_argument("--dataset", choices=("I", "II"), default="I")
    compare.add_argument(
        "--systems",
        nargs="+",
        default=["PROF+MOA", "PROF-MOA", "CONF+MOA", "CONF-MOA", "kNN", "MPI"],
        help="systems to compare (first one is the reference)",
    )
    compare.add_argument(
        "--model",
        default=None,
        metavar="PATH",
        help="also score a saved model (see 'fit --save-model') on the "
        "same folds, as row 'saved:<name>'",
    )
    _add_scale_argument(compare)
    _add_jobs_argument(compare)
    _add_trace_argument(compare)

    report = sub.add_parser(
        "report", help="reproduce a full figure as a markdown report"
    )
    report.add_argument("--dataset", choices=("I", "II"), default="I")
    report.add_argument("--out", default=None, help="write markdown here")
    _add_scale_argument(report)
    _add_trace_argument(report)

    figure = sub.add_parser("figure", help="reproduce one figure panel")
    figure.add_argument(
        "panel",
        choices=[
            f"{fig}{panel}" for fig in ("3", "4") for panel in "abcdef"
        ],
        help="paper panel id, e.g. 3a",
    )
    _add_scale_argument(figure)
    _add_jobs_argument(figure)
    _add_trace_argument(figure)

    query = sub.add_parser(
        "query",
        help="audit the rules of a saved model through its columnar store",
    )
    query.add_argument(
        "--model",
        required=True,
        metavar="PATH",
        help="model artifact written by 'fit --save-model'",
    )
    query.add_argument(
        "--head-promo",
        metavar="CODE",
        help="only rules recommending this promotion code",
    )
    query.add_argument(
        "--head-item",
        metavar="ITEM",
        help="only rules recommending this item",
    )
    query.add_argument(
        "--head-under",
        metavar="CONCEPT",
        help="only rules whose recommended item falls under this concept",
    )
    query.add_argument(
        "--body-mentions",
        action="append",
        metavar="SPEC",
        help="only rules whose body mentions this symbol; 'item', "
        "'[Concept]' or 'item@promo' — repeat to AND several",
    )
    query.add_argument(
        "--shape",
        choices=["default", "concept", "item", "promo"],
        help="only rules of this body shape",
    )
    query.add_argument(
        "--min-conf",
        type=float,
        metavar="X",
        help="only rules with confidence >= X",
    )
    query.add_argument(
        "--min-support",
        type=float,
        metavar="X",
        help="only rules with support >= X",
    )
    query.add_argument(
        "--top",
        type=int,
        metavar="N",
        help="at most N hits, best MPF rank first",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="emit the hits as a JSON document instead of a table",
    )

    plan = sub.add_parser(
        "plan",
        help="select a store-wide promotion portfolio (campaign planning) "
        "from a saved model and a basket workload",
    )
    plan.add_argument(
        "--model",
        required=True,
        metavar="PATH",
        help="model artifact written by 'fit --save-model'",
    )
    plan.add_argument(
        "--data",
        required=True,
        help="JSON-lines transactions whose baskets form the workload",
    )
    plan.add_argument(
        "--max-offers",
        type=int,
        default=None,
        metavar="N",
        help="run at most N distinct promotions",
    )
    plan.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="X",
        help="campaign dollar budget; caps the portfolio at "
        "floor(budget / offer-cost) offers",
    )
    plan.add_argument(
        "--offer-cost",
        type=float,
        default=1.0,
        metavar="C",
        help="flat cost of running one promotion (default 1.0)",
    )
    plan.add_argument(
        "--inventory",
        action="append",
        metavar="ITEM=UNITS",
        help="cap the expected base units of ITEM the campaign may "
        "consume; repeat for several items",
    )
    plan.add_argument(
        "--method",
        choices=["auto", "greedy", "exact"],
        default="auto",
        help="portfolio search: exhaustive at small scale, greedy with a "
        "certified upper bound beyond (auto switches by subset count)",
    )
    plan.add_argument(
        "--json",
        action="store_true",
        help="emit the plan as a JSON document instead of a table",
    )
    _add_trace_argument(plan)

    serve = sub.add_parser(
        "serve",
        help="run the always-on recommendation daemon over saved models",
    )
    serve.add_argument(
        "--model",
        required=True,
        action="append",
        metavar="[NAME=]PATH",
        help="model artifact written by 'fit --save-model'; repeat to "
        "serve several models from one daemon (requests route by the "
        "JSON 'model' field; the first one is the default)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        metavar="N",
        help="largest micro-batch coalesced from concurrent /recommend "
        "requests (default 64)",
    )
    serve.add_argument(
        "--max-linger-ms",
        type=float,
        default=1.0,
        metavar="MS",
        help="how long a queued request waits for company before its "
        "batch is flushed (default 1.0)",
    )
    serve.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fraction of serve calls traced into the /stats telemetry "
        "(0 disables, 1 traces everything)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="hot-swap automatically when the model file's mtime changes, "
        "checking this often (0 disables; POST /admin/reload always works)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=1024,
        metavar="N",
        help="largest number of /recommend requests allowed to wait in a "
        "model's micro-batch queue before the daemon sheds load with "
        "503 + Retry-After (default 1024; 0 disables the cap)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="pre-fork N serving processes sharing the port (and the "
        "loaded model's memory); 1 runs the classic single-process "
        "daemon (default 1)",
    )
    serve.add_argument(
        "--listener",
        choices=["auto", "reuse_port", "inherit"],
        default="auto",
        help="how pool workers share the port: per-worker SO_REUSEPORT "
        "sockets with kernel balancing, or one fork-inherited listener "
        "(auto picks reuse_port where available; ignored with --workers 1)",
    )

    profile = sub.add_parser(
        "profile",
        help="run another command under tracing and print a trace summary",
    )
    _add_trace_argument(profile)
    profile.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        metavar="command ...",
        help="the command to profile, with its own arguments, e.g. "
        "'profile sweep --scale tiny'",
    )
    return parser


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default=None,
        help="experiment scale (default: $REPRO_SCALE or small)",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for cross-validation cells "
        "(default: $REPRO_JOBS or 1; results are identical at any setting)",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="run under tracing and write the trace (spans, counters, "
        "cache telemetry) to PATH as JSON",
    )


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="auto",
        help="support-counting backend: 'dense' (chunked uint64 kernel, "
        "needs the numpy extra), 'bigint' (no dependencies) or 'auto' "
        "(dense on large databases when numpy is available); the "
        "backends produce bit-identical results",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker threads for within-mine candidate batches on the "
        "dense backend (default: $REPRO_JOBS or 1; results are "
        "identical at any setting)",
    )


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="with --backend ooc: persist the partitioned transaction "
        "store here (reusable by 'refresh'); default is a temporary "
        "directory discarded after the fit",
    )
    parser.add_argument(
        "--partition-size",
        type=int,
        default=None,
        metavar="N",
        help="with --backend ooc: transactions per store partition "
        "(default 65536)",
    )
    parser.add_argument(
        "--max-resident-mb",
        type=float,
        default=None,
        metavar="MB",
        help="with --backend ooc: resident-partition budget; partitions "
        "above it are LRU-evicted back to disk (default 256)",
    )


def _resolve_scale(label: str | None) -> ExperimentScale:
    if label is None:
        return scale_from_env()
    return _SCALES[label]()


def _resolve_jobs(args: argparse.Namespace) -> int:
    from repro.eval.experiments import jobs_from_env

    if getattr(args, "jobs", None) is None:
        return jobs_from_env()
    if args.jobs < 1:
        raise ProfitMiningError(f"--jobs must be >= 1, got {args.jobs}")
    return args.jobs


def _cmd_generate(args: argparse.Namespace) -> int:
    config_fn = dataset_i_config if args.dataset == "I" else dataset_ii_config
    config = config_fn(
        n_transactions=args.transactions,
        n_items=args.items,
        seed=args.seed,
    )
    if args.stream:
        from repro.data.datasets import dataset_catalog, iter_dataset_transactions
        from repro.data.io import write_transactions_stream

        catalog = dataset_catalog(config)
        n = write_transactions_stream(
            args.out, catalog, iter_dataset_transactions(config, catalog)
        )
        print(
            f"streamed {n} transactions over {len(catalog)} items to {args.out}"
        )
        return 0
    dataset = build_dataset(config)
    save_transactions(dataset.db, args.out)
    print(
        f"wrote {len(dataset.db)} transactions over "
        f"{len(dataset.db.catalog)} items to {args.out}"
    )
    return 0


def _miner_for(args: argparse.Namespace, hierarchy) -> ProfitMiner:
    return ProfitMiner(
        hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(
                min_support=args.min_support,
                max_body_size=args.max_body_size,
                backend=getattr(args, "backend", "ooc"),
                n_jobs=args.jobs,
                partition_size=getattr(args, "partition_size", None),
                max_resident_mb=getattr(args, "max_resident_mb", None),
            ),
            use_moa=not args.no_moa,
        ),
    )


def _print_streamed_mix(miner: ProfitMiner, transactions) -> None:
    """Batch-serve ``transactions`` in bounded chunks; print the top mix."""
    mix: dict[tuple[str, str], int] = {}
    total = 0
    batch: list = []

    def flush() -> None:
        nonlocal total
        for rec in miner.recommend_many(batch):
            pair = (rec.item_id, rec.promo_code)
            mix[pair] = mix.get(pair, 0) + 1
        total += len(batch)
        batch.clear()

    for transaction in transactions:
        batch.append(transaction.nontarget_sales)
        if len(batch) >= 4096:
            flush()
    if batch:
        flush()
    top = ", ".join(
        f"{item}@{promo} x{count}"
        for (item, promo), count in sorted(mix.items(), key=lambda kv: -kv[1])[:3]
    )
    print(f"recommendation mix over {total} baskets: {top}")


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.data.io import iter_transactions, read_catalog

    if args.backend == "ooc":
        # True out-of-core path: the transaction file is streamed into the
        # partitioned store; only the catalog header is read up front.
        import tempfile

        from repro.core.engine.store import (
            DEFAULT_PARTITION_SIZE,
            ChunkedTransactionStore,
        )
        from repro.core.moa import MOAHierarchy

        catalog = read_catalog(args.data)
        catalog.validate_for_mining()
        hierarchy = grouped_hierarchy(catalog)
        miner = _miner_for(args, hierarchy)
        moa = MOAHierarchy(
            catalog=catalog, hierarchy=hierarchy, use_moa=not args.no_moa
        )
        with tempfile.TemporaryDirectory(prefix="repro-ooc-") as tmp:
            root = args.store or tmp
            store = ChunkedTransactionStore.build(
                root,
                iter_transactions(args.data),
                moa,
                miner.profit_model,
                partition_size=args.partition_size or DEFAULT_PARTITION_SIZE,
                max_resident_mb=args.max_resident_mb,
            )
            miner.fit_store(store)
            print(miner.summary())
            stats = store.stats()
            print(
                f"store: {stats['n_partitions']} partitions, "
                f"{stats['spilled_bytes']} bytes spilled"
                + (f", persisted at {args.store}" if args.store else " (temporary)")
            )
            _print_streamed_mix(miner, iter_transactions(args.data))
            for i, transaction in enumerate(iter_transactions(args.data)):
                if i >= args.explain:
                    break
                print()
                print(miner.explain(transaction.nontarget_sales))
    else:
        if args.store or args.partition_size or args.max_resident_mb:
            raise ProfitMiningError(
                "--store/--partition-size/--max-resident-mb need --backend ooc"
            )
        db = load_transactions(args.data)
        hierarchy = grouped_hierarchy(db.catalog)
        miner = _miner_for(args, hierarchy).fit(db)
        print(miner.summary())
        _print_streamed_mix(miner, db.transactions)
        for transaction in db.transactions[: args.explain]:
            print()
            print(miner.explain(transaction.nontarget_sales))
    if args.save_model:
        from repro.data.model_io import save_model

        save_model(miner.require_fitted_recommender(), args.save_model)
        print(f"model saved to {args.save_model}")
    return 0


def _cmd_refresh(args: argparse.Namespace) -> int:
    from repro.core.engine.store import ChunkedTransactionStore
    from repro.core.moa import MOAHierarchy
    from repro.data.io import iter_transactions, read_catalog

    catalog = read_catalog(args.data)
    hierarchy = grouped_hierarchy(catalog)
    miner = _miner_for(args, hierarchy)
    moa = MOAHierarchy(
        catalog=catalog, hierarchy=hierarchy, use_moa=not args.no_moa
    )
    store = ChunkedTransactionStore.open(
        args.store, moa, miner.profit_model, max_resident_mb=args.max_resident_mb
    )
    n_before = store.n
    miner.refit_refreshed(store, iter_transactions(args.data))
    print(miner.summary())
    print(
        f"store grew {n_before} -> {store.n} transactions "
        f"({store.n_partitions} partitions) at {args.store}"
    )
    if args.save_model:
        from repro.data.model_io import save_model

        save_model(miner.require_fitted_recommender(), args.save_model)
        print(f"model saved to {args.save_model}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis import (
        export_recommendations_csv,
        export_rules_csv,
        pruning_summary,
    )

    if args.model is None and args.data is None:
        raise ProfitMiningError("export needs --data (fit) or --model (load)")
    if args.model is not None:
        from repro.data.model_io import load_model

        recommender = load_model(args.model)
        n_rules = export_rules_csv(recommender, args.out)
        print(
            f"wrote {n_rules} rules from saved model {recommender.name} "
            f"to {args.out}"
        )
        if args.recommendations_out:
            if args.data is None:
                raise ProfitMiningError(
                    "--recommendations-out needs --data to serve against"
                )
            db = load_transactions(args.data)
            n_recs = export_recommendations_csv(
                recommender, db, args.recommendations_out
            )
            print(
                f"wrote {n_recs} recommendations to {args.recommendations_out}"
            )
        return 0
    db = load_transactions(args.data)
    hierarchy = grouped_hierarchy(db.catalog)
    miner = ProfitMiner(
        hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(
                min_support=args.min_support,
                max_body_size=args.max_body_size,
                backend=args.backend,
                n_jobs=args.jobs,
            ),
            use_moa=not args.no_moa,
        ),
    ).fit(db)
    n_rules = export_rules_csv(miner, args.out)
    summary = pruning_summary(miner)
    print(
        f"wrote {n_rules} rules to {args.out} "
        f"(mined {summary['rules_mined']}, reduction factor "
        f"{summary['reduction_factor']:.1f}x)"
    )
    if args.recommendations_out:
        n_recs = export_recommendations_csv(miner, db, args.recommendations_out)
        print(f"wrote {n_recs} recommendations to {args.recommendations_out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scale = _resolve_scale(args.scale)
    sweep = gain_and_size_sweep(args.dataset, scale, n_jobs=_resolve_jobs(args))
    for metric in ("gain", "hit_rate", "model_size"):
        print(
            format_series(
                sweep.series(metric),
                y_label=f"{metric} — dataset {args.dataset} ({scale.label} scale)",
            )
        )
        print()
    return 0


@dataclass(frozen=True)
class _SavedModelFactory:
    """Picklable factory serving one saved recommender on every fold.

    :meth:`~repro.core.mpf.MPFRecommender.fit` is a no-op, so handing the
    loaded model to :func:`~repro.eval.cross_validation.cross_validate`
    scores the *same* persisted rules against each held-back fold — an
    out-of-sample audit of a production artifact rather than a refit.
    Carrying the path (not the model) keeps the factory picklable for
    ``n_jobs > 1``.
    """

    path: str

    def __call__(self):
        from repro.data.model_io import load_model

        return load_model(self.path)


def _cmd_compare(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.eval.cross_validation import cross_validate, kfold_indices
    from repro.eval.harness import eval_config_for_system, paper_recommenders
    from repro.eval.metrics import EvalConfig
    from repro.eval.stats import compare_gains

    scale = _resolve_scale(args.scale)
    dataset = get_dataset(args.dataset, scale)
    splits = kfold_indices(len(dataset.db), k=scale.k_folds, seed=scale.seed)
    factories = paper_recommenders(
        dataset.hierarchy,
        scale.spot_support,
        max_body_size=scale.max_body_size,
        systems=tuple(args.systems),
    )
    n_jobs = _resolve_jobs(args)
    results = {
        system: cross_validate(
            factory,
            dataset.db,
            dataset.hierarchy,
            eval_config_for_system(None, system),
            splits=splits,
            n_jobs=n_jobs,
        )
        for system, factory in factories.items()
    }
    extra_rows: list[str] = []
    if args.model:
        from repro.data.model_io import load_model

        saved = load_model(args.model)
        label = f"saved:{saved.name}"
        results[label] = cross_validate(
            _SavedModelFactory(str(args.model)),
            dataset.db,
            dataset.hierarchy,
            # Judge the artifact by its own generalization relation, like
            # eval_config_for_system does for the named systems.
            replace(EvalConfig(), moa_hit_test=saved.moa.use_moa),
            splits=splits,
            n_jobs=n_jobs,
        )
        extra_rows.append(label)
    rows = [
        [system, cv.gain, cv.hit_rate, cv.model_size]
        for system, cv in results.items()
    ]
    print(
        format_table(
            ["system", "gain", "hit rate", "rules"],
            rows,
            title=f"dataset {args.dataset} at minsup {scale.spot_support} "
            f"({scale.label} scale, {scale.k_folds} folds)",
        )
    )
    print()
    reference = args.systems[0]
    for system in [*args.systems[1:], *extra_rows]:
        print(compare_gains(results[reference], results[system]).describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import generate_markdown_report

    scale = _resolve_scale(args.scale)
    text = generate_markdown_report(args.dataset, scale)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    which = "I" if args.panel[0] == "3" else "II"
    panel = args.panel[1]
    scale = _resolve_scale(args.scale)
    title = f"Figure {args.panel} — dataset {which} ({scale.label} scale)"
    n_jobs = _resolve_jobs(args)
    if panel in "acf":
        metric = {"a": "gain", "c": "hit_rate", "f": "model_size"}[panel]
        sweep = gain_and_size_sweep(which, scale, n_jobs=n_jobs)
        print(format_series(sweep.series(metric), y_label=title))
    elif panel == "b":
        gains = behavior_gain(which, scale, n_jobs=n_jobs)
        rows = [
            [label, *(per.get(s) for s in sorted(per))]
            for label, per in gains.items()
        ]
        systems = sorted(next(iter(gains.values())))
        print(format_table(["behavior", *systems], rows, title=title))
    elif panel == "d":
        ranges = profit_range_hit_rates(which, scale, n_jobs=n_jobs)
        rows = [
            [system, *(rate for _, rate, _ in triples)]
            for system, triples in ranges.items()
        ]
        print(format_table(["system", "Low", "Medium", "High"], rows, title=title))
    else:  # panel == "e"
        print(format_histogram(profit_distribution(which, scale), title=title))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.data.model_io import load_model

    recommender = load_model(args.model)
    hits = recommender.query_rules(
        head_promo=args.head_promo,
        head_item=args.head_item,
        head_under=args.head_under,
        body_mentions=args.body_mentions,
        shape=args.shape,
        min_conf=args.min_conf,
        min_support=args.min_support,
        top=args.top,
    )
    rows = [hit.to_dict() for hit in hits]
    if args.json:
        print(json.dumps({"model": recommender.name, "n": len(rows), "hits": rows}))
        return 0
    if not rows:
        print(f"{recommender.name}: no rules match the query")
        return 0
    print(
        format_table(
            ["rank", "shape", "body", "recommendation", "conf", "support"],
            [
                [
                    row["rank"],
                    row["shape"],
                    row["body"] or "(default)",
                    f"{row['item']} @ {row['promo']}",
                    f"{row['confidence']:.3f}",
                    f"{row['support']:.4f}",
                ]
                for row in rows
            ],
            title=f"{recommender.name}: {len(rows)} matching rules",
        )
    )
    return 0


def _parse_inventory_specs(specs: Sequence[str]) -> dict[str, float]:
    """CLI ``ITEM=UNITS`` inventory caps -> the planner's mapping."""
    inventory: dict[str, float] = {}
    for spec in specs:
        item, sep, units = spec.partition("=")
        if not sep or not item:
            raise ProfitMiningError(
                f"--inventory expects ITEM=UNITS, got {spec!r}"
            )
        try:
            inventory[item] = float(units)
        except ValueError:
            raise ProfitMiningError(
                f"--inventory units must be a number, got {spec!r}"
            ) from None
    return inventory


def _cmd_plan(args: argparse.Namespace) -> int:
    import json

    from repro.campaign import plan_campaign
    from repro.data.model_io import load_model

    recommender = load_model(args.model)
    db = load_transactions(args.data)
    plan = plan_campaign(
        recommender,
        db,
        max_offers=args.max_offers,
        budget=args.budget,
        offer_cost=args.offer_cost,
        inventory=_parse_inventory_specs(args.inventory or ()),
        method=args.method,
    )
    if args.json:
        print(json.dumps({"model": recommender.name, **plan.to_dict()}))
        return 0
    if not plan.offers:
        print(
            f"{recommender.name}: no feasible profitable offers over "
            f"{plan.n_baskets} baskets ({plan.n_candidates} candidates)"
        )
        return 0
    print(
        format_table(
            ["item", "promo", "E[profit]", "baskets", "E[units]"],
            [
                [
                    offer.item_id,
                    offer.promo_code,
                    f"{offer.expected_profit:.2f}",
                    offer.n_baskets,
                    f"{offer.expected_units:.1f}",
                ]
                for offer in plan.offers
            ],
            title=f"{recommender.name}: campaign plan ({plan.method}) over "
            f"{plan.n_baskets} baskets",
        )
    )
    print(
        f"total E[profit] ${plan.expected_profit:.2f} "
        f"(certified <= ${plan.profit_upper_bound:.2f}) from "
        f"{len(plan.offers)} of {plan.n_candidates} candidate offers"
    )
    return 0


def _parse_model_specs(specs: Sequence[str]) -> list[tuple[str | None, str]]:
    """CLI ``[NAME=]PATH`` model specs -> the daemon's (name, path) pairs.

    A spec without ``=`` leaves the name to the loaded artifact; the
    split is on the *first* ``=`` so Windows-style paths with drive
    colons and values containing ``=`` survive.
    """
    pairs: list[tuple[str | None, str]] = []
    for spec in specs:
        name, sep, path = spec.partition("=")
        if sep and name:
            pairs.append((name, path))
        else:
            pairs.append((None, spec))
    return pairs


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import RecommendDaemon, ServeConfig
    from repro.serve.daemon import trace_sample_period

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch,
        max_linger_ms=args.max_linger_ms,
        trace_sample_period=trace_sample_period(args.trace_sample_rate),
        poll_interval_s=args.poll_interval,
        max_queue_depth=args.max_queue_depth,
    )
    if args.workers > 1:
        from repro.serve.pool import PoolConfig, ServePool

        pool = ServePool(
            _parse_model_specs(args.model),
            config,
            PoolConfig(workers=args.workers, listener=args.listener),
        )
        pool.start()
        for name in pool.model_names:
            print(
                f"serving model {name!r} on http://{config.host}:{pool.port} "
                f"across {args.workers} workers ({pool.mode} balancing)",
                flush=True,
            )
        print(
            "endpoints: POST /recommend, POST /recommend_batch, POST /query, "
            "POST /plan, POST /admin/reload (pool-wide swap), GET /healthz, "
            "GET /stats (pool view), GET /stats/local",
            flush=True,
        )
        pool.run_forever()
        return 0
    daemon = RecommendDaemon(_parse_model_specs(args.model), config)

    async def _run_single() -> None:
        # Bind before announcing so the printed port is the real one
        # even with --port 0 (bind-anywhere).
        await daemon.start()
        for name in daemon.model_names:
            info = daemon._slots[name].handle.info()
            print(
                f"serving model {name!r} ({info['n_rules']} rules) "
                f"from {info['path']} on http://{config.host}:{daemon.port}",
                flush=True,
            )
        print(
            "endpoints: POST /recommend, POST /recommend_batch, POST /query, "
            "POST /plan, POST /admin/reload, GET /healthz, GET /stats",
            flush=True,
        )
        assert daemon._server is not None
        try:
            await daemon._server.serve_forever()
        finally:
            await daemon.stop()

    try:
        asyncio.run(_run_single())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        raise ProfitMiningError(
            "profile needs a command to run, e.g. 'profile sweep --scale tiny'"
        )
    if rest[0] == "profile":
        raise ProfitMiningError("profile cannot profile itself")
    inner = build_parser().parse_args(rest)
    with obs.tracing(" ".join(rest)) as trace:
        code = _HANDLERS[inner.command](inner)
    print()
    print(trace.summary())
    trace_out = args.trace_out or getattr(inner, "trace_out", None)
    if trace_out:
        trace.write(trace_out)
        print(f"trace written to {trace_out}")
    return code


_HANDLERS = {
    "generate": _cmd_generate,
    "fit": _cmd_fit,
    "refresh": _cmd_refresh,
    "export": _cmd_export,
    "compare": _cmd_compare,
    "report": _cmd_report,
    "sweep": _cmd_sweep,
    "figure": _cmd_figure,
    "query": _cmd_query,
    "plan": _cmd_plan,
    "serve": _cmd_serve,
    "profile": _cmd_profile,
}


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected handler, honouring ``--trace-out`` when present.

    ``profile`` manages its own tracing context (it prints the summary as
    well); for every other command a ``--trace-out`` simply wraps the run
    in :func:`repro.obs.trace.tracing` and writes the JSON at the end.
    """
    handler = _HANDLERS[args.command]
    trace_out = getattr(args, "trace_out", None)
    if args.command == "profile" or trace_out is None:
        return handler(args)
    with obs.tracing(args.command) as trace:
        code = handler(args)
    trace.write(trace_out)
    print(f"trace written to {trace_out}")
    return code


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ProfitMiningError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
