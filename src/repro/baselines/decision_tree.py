"""The paper's "quick solution" baseline: predict first, profit later.

Section 1.1 discusses the obvious alternative to profit mining: "find
several most probable recommendations using a basic prediction model, and
re-rank them by taking into account both probability and profit.  In this
solution, the profit is considered as an afterthought", and cites [MS96]
showing that pushing profit *into* model building beats the afterthought.

This module implements that strawman faithfully so the claim can be
measured: a C4.5-style decision tree over binary basket features (item
presence) predicting the ``(target item, promotion code)`` class, with an
optional *afterthought* mode that re-ranks each leaf's class distribution
by ``probability × profit`` instead of probability alone.

The tree uses information gain, depth and leaf-size limits; no pessimistic
pruning (the baseline is intentionally the "basic prediction model" of the
paper's discussion, not a tuned competitor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.recommender import Recommendation, Recommender
from repro.core.sales import Sale, TransactionDB
from repro.errors import ValidationError

__all__ = ["DecisionTreeRecommender"]

Pair = tuple[str, str]


@dataclass
class _Node:
    """One tree node: either a split on an item's presence or a leaf."""

    counts: dict[Pair, int]
    split_item: str | None = None
    present: "_Node | None" = field(default=None, repr=False)
    absent: "_Node | None" = field(default=None, repr=False)

    @property
    def is_leaf(self) -> bool:
        return self.split_item is None

    @property
    def n(self) -> int:
        return sum(self.counts.values())


def _entropy(counts: dict[Pair, int]) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        if count:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy


class DecisionTreeRecommender(Recommender):
    """Decision tree over item presence, classes = (item, promotion) pairs.

    Parameters
    ----------
    max_depth:
        Maximum number of splits from root to leaf.
    min_leaf:
        Minimum transactions per leaf; splits creating smaller children are
        rejected.
    profit_rerank:
        The "afterthought": recommend the leaf class maximizing
        ``P(class | leaf) × profit(class)`` instead of the most probable
        class.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_leaf: int = 10,
        profit_rerank: bool = False,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if max_depth < 1:
            raise ValidationError(f"max_depth must be >= 1, got {max_depth}")
        if min_leaf < 1:
            raise ValidationError(f"min_leaf must be >= 1, got {min_leaf}")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.profit_rerank = profit_rerank
        self.name = name or ("DT(profit)" if profit_rerank else "DT")
        self._root: _Node | None = None
        self._pair_profit: dict[Pair, float] = {}

    # ------------------------------------------------------------------
    def fit(self, db: TransactionDB) -> "DecisionTreeRecommender":
        """Grow the tree greedily by information gain."""
        if len(db) == 0:
            raise ValidationError("cannot fit a decision tree on an empty database")
        rows = [
            (
                frozenset(t.basket),
                (t.target_sale.item_id, t.target_sale.promo_code),
            )
            for t in db
        ]
        self._pair_profit = {
            (item.item_id, promo.code): promo.profit
            for item in db.catalog.target_items
            for promo in item.promotions
        }
        features = sorted({item for basket, _ in rows for item in basket})
        self._root = self._grow(rows, features, depth=0)
        self._fitted = True
        return self

    def _grow(
        self,
        rows: list[tuple[frozenset[str], Pair]],
        features: list[str],
        depth: int,
    ) -> _Node:
        counts = self._count(rows)
        node = _Node(counts=counts)
        if depth >= self.max_depth or len(counts) <= 1:
            return node
        best = self._best_split(rows, features, counts)
        if best is None:
            return node
        item, present_rows, absent_rows = best
        node.split_item = item
        remaining = [f for f in features if f != item]
        node.present = self._grow(present_rows, remaining, depth + 1)
        node.absent = self._grow(absent_rows, remaining, depth + 1)
        return node

    def _best_split(
        self,
        rows: list[tuple[frozenset[str], Pair]],
        features: list[str],
        counts: dict[Pair, int],
    ) -> tuple[str, list, list] | None:
        base_entropy = _entropy(counts)
        total = len(rows)
        best_gain = 1e-9
        best: tuple[str, list, list] | None = None
        for item in features:
            present = [row for row in rows if item in row[0]]
            if len(present) < self.min_leaf or total - len(present) < self.min_leaf:
                continue
            absent = [row for row in rows if item not in row[0]]
            gain = base_entropy - (
                len(present) / total * _entropy(self._count(present))
                + len(absent) / total * _entropy(self._count(absent))
            )
            if gain > best_gain:
                best_gain = gain
                best = (item, present, absent)
        return best

    @staticmethod
    def _count(rows: list[tuple[frozenset[str], Pair]]) -> dict[Pair, int]:
        counts: dict[Pair, int] = {}
        for _, pair in rows:
            counts[pair] = counts.get(pair, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def recommend(self, basket: Sequence[Sale]) -> Recommendation:
        """Route the basket to a leaf and pick per the configured mode."""
        self._check_fitted()
        assert self._root is not None
        items = {sale.item_id for sale in basket}
        node = self._root
        while not node.is_leaf:
            assert node.present is not None and node.absent is not None
            node = node.present if node.split_item in items else node.absent
        pair = self._pick(node.counts)
        return Recommendation(item_id=pair[0], promo_code=pair[1])

    def _pick(self, counts: dict[Pair, int]) -> Pair:
        total = sum(counts.values())
        if self.profit_rerank:
            return max(
                counts,
                key=lambda pair: (
                    counts[pair] / total * self._pair_profit.get(pair, 0.0),
                    pair,
                ),
            )
        return max(counts, key=lambda pair: (counts[pair], pair))

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Realized tree depth (longest root-to-leaf split chain)."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            assert node.present is not None and node.absent is not None
            return 1 + max(walk(node.present), walk(node.absent))

        assert self._root is not None
        return walk(self._root)

    @property
    def n_leaves(self) -> int:
        """Number of leaves (the tree's model-size analogue)."""
        self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            assert node.present is not None and node.absent is not None
            return walk(node.present) + walk(node.absent)

        assert self._root is not None
        return walk(self._root)
