"""Baseline recommenders the paper compares against (Section 5.1).

Includes the decision-tree "quick solution" of Section 1.1 as an extra
baseline: a basic prediction model with profit bolted on as an
afterthought, the strategy [MS96] showed to lose against profit-integrated
mining.
"""

from repro.baselines.decision_tree import DecisionTreeRecommender
from repro.baselines.knn import KNNRecommender
from repro.baselines.mpi import MPIRecommender

__all__ = ["DecisionTreeRecommender", "KNNRecommender", "MPIRecommender"]
