"""k-nearest-neighbor recommender (Section 5.1, [YP97]-style).

The paper's kNN baseline treats each transaction's basket of non-target
items like a sparse text document: items are weighted by inverse document
frequency, vectors are cosine-normalized, and the ``k`` most similar past
transactions vote — with similarity weights — for their recorded
``(target item, promotion code)`` pair.  MOA is applied when *judging*
whether the winning pair hits a validation transaction, which is the
evaluator's job (:mod:`repro.eval`), not this class's.

Section 5.3 additionally evaluates a *profit post-processing* variant that,
instead of taking the most voted pair, recommends the pair with the highest
recorded profit among the ``k`` neighbors — profit as an afterthought.  Set
``profit_post_processing=True`` for that variant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.recommender import Recommendation, Recommender
from repro.core.sales import Sale, TransactionDB
from repro.errors import ValidationError

__all__ = ["KNNRecommender"]


class KNNRecommender(Recommender):
    """idf-weighted cosine kNN over baskets of non-target items.

    Parameters
    ----------
    k:
        Number of neighbors; the paper reports ``k = 5`` as best.
    profit_post_processing:
        When ``True``, recommend the highest-recorded-profit pair among the
        neighbors instead of the most voted pair (Section 5.3).
    features:
        ``"sales"`` (default) vectorizes each (item, promotion) sale as one
        feature, matching the paper's "transactions most similar to the
        given non-target sales"; ``"items"`` ignores promotion codes, a
        denser and often stronger variant kept for ablations.
    name:
        Display name; defaults to ``"kNN"`` / ``"kNN(profit)"``.
    """

    def __init__(
        self,
        k: int = 5,
        profit_post_processing: bool = False,
        features: str = "sales",
        name: str | None = None,
    ) -> None:
        super().__init__()
        if k < 1:
            raise ValidationError(f"k must be at least 1, got {k}")
        if features not in ("sales", "items"):
            raise ValidationError(
                f"features must be 'sales' or 'items', got {features!r}"
            )
        self.k = k
        self.features = features
        self.profit_post_processing = profit_post_processing
        self.name = name or ("kNN(profit)" if profit_post_processing else "kNN")
        self._vocab: dict[str, int] = {}
        self._idf: np.ndarray | None = None
        self._matrix: np.ndarray | None = None
        self._pairs: list[tuple[str, str]] = []
        self._profits: np.ndarray | None = None
        self._fallback_pair: tuple[str, str] | None = None

    # ------------------------------------------------------------------
    def fit(self, db: TransactionDB) -> "KNNRecommender":
        """Vectorize the training baskets and store neighbor metadata."""
        if len(db) == 0:
            raise ValidationError("cannot fit kNN on an empty database")
        self._vocab = {}
        for transaction in db:
            for feature in self._features_of(transaction.nontarget_sales):
                self._vocab.setdefault(feature, len(self._vocab))

        n, v = len(db), len(self._vocab)
        counts = np.zeros(v, dtype=np.float64)
        rows = np.zeros((n, v), dtype=np.float64)
        for row, transaction in enumerate(db):
            for feature in self._features_of(transaction.nontarget_sales):
                col = self._vocab[feature]
                rows[row, col] = 1.0
                counts[col] += 1.0
        # Smoothed idf keeps ubiquitous items from dominating similarity.
        self._idf = np.log((n + 1.0) / (counts + 1.0)) + 1.0
        rows *= self._idf
        norms = np.linalg.norm(rows, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        self._matrix = rows / norms

        self._pairs = [
            (t.target_sale.item_id, t.target_sale.promo_code) for t in db
        ]
        self._profits = np.array(
            [t.recorded_target_profit(db.catalog) for t in db], dtype=np.float64
        )
        self._fallback_pair = self._most_common_pair()
        self._fitted = True
        return self

    def _features_of(self, sales: Sequence[Sale]) -> set[str]:
        """Feature keys of a basket under the configured feature space."""
        if self.features == "items":
            return {sale.item_id for sale in sales}
        return {f"{sale.item_id}@{sale.promo_code}" for sale in sales}

    def _most_common_pair(self) -> tuple[str, str]:
        counts: dict[tuple[str, str], int] = {}
        for pair in self._pairs:
            counts[pair] = counts.get(pair, 0) + 1
        return max(counts, key=lambda pair: (counts[pair], pair))

    # ------------------------------------------------------------------
    def recommend(self, basket: Sequence[Sale]) -> Recommendation:
        """Vote among the ``k`` nearest training baskets."""
        self._check_fitted()
        assert self._matrix is not None and self._idf is not None
        assert self._fallback_pair is not None

        query = np.zeros(len(self._vocab), dtype=np.float64)
        for feature in self._features_of(basket):
            col = self._vocab.get(feature)
            if col is not None:
                query[col] = 1.0
        query *= self._idf
        norm = np.linalg.norm(query)
        if norm == 0.0:
            # No overlap with the training vocabulary: fall back to the
            # globally most common pair, the natural zero-information vote.
            item_id, promo_code = self._fallback_pair
            return Recommendation(item_id=item_id, promo_code=promo_code)
        query /= norm

        similarities = self._matrix @ query
        k = min(self.k, similarities.shape[0])
        neighbor_idx = np.argpartition(-similarities, k - 1)[:k]
        pair = (
            self._pick_by_profit(neighbor_idx)
            if self.profit_post_processing
            else self._pick_by_votes(neighbor_idx, similarities)
        )
        return Recommendation(item_id=pair[0], promo_code=pair[1])

    def _pick_by_votes(
        self, neighbor_idx: np.ndarray, similarities: np.ndarray
    ) -> tuple[str, str]:
        votes: dict[tuple[str, str], float] = {}
        for idx in neighbor_idx:
            pair = self._pairs[int(idx)]
            weight = float(similarities[int(idx)])
            votes[pair] = votes.get(pair, 0.0) + max(weight, _MIN_VOTE)
        return max(votes, key=lambda pair: (votes[pair], pair))

    def _pick_by_profit(self, neighbor_idx: np.ndarray) -> tuple[str, str]:
        assert self._profits is not None
        best_idx = max(
            (int(i) for i in neighbor_idx),
            key=lambda i: (self._profits[i], self._pairs[i]),
        )
        return self._pairs[best_idx]


#: Floor on a neighbor's vote so zero-similarity neighbors still count once.
_MIN_VOTE = 1e-9
