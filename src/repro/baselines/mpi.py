"""The most-profitable-item baseline (MPI, Section 5.1).

MPI ignores the basket entirely: it recommends, to every customer, the
``(target item, promotion code)`` pair that generated the most total
(recorded) profit in the past transactions.  It is the pure profit-based
strategy the introduction argues against — profitable pairs are bought by
few customers, so the hit rate collapses — and serves as the lower anchor
of the evaluation.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.recommender import Recommendation, Recommender
from repro.core.sales import Sale, TransactionDB
from repro.errors import ValidationError

__all__ = ["MPIRecommender"]


class MPIRecommender(Recommender):
    """Recommend the historically most profitable (item, promotion) pair."""

    name = "MPI"

    def __init__(self) -> None:
        super().__init__()
        self._pair: tuple[str, str] | None = None
        self._pair_profit: float = 0.0

    def fit(self, db: TransactionDB) -> "MPIRecommender":
        """Aggregate recorded profit per (target item, promotion code) pair."""
        if len(db) == 0:
            raise ValidationError("cannot fit MPI on an empty database")
        totals: dict[tuple[str, str], float] = {}
        for transaction in db:
            sale = transaction.target_sale
            pair = (sale.item_id, sale.promo_code)
            totals[pair] = totals.get(pair, 0.0) + sale.recorded_profit(db.catalog)
        # Deterministic tie-break on the pair itself.
        self._pair = max(totals, key=lambda pair: (totals[pair], pair))
        self._pair_profit = totals[self._pair]
        self._fitted = True
        return self

    def recommend(self, basket: Sequence[Sale]) -> Recommendation:
        """The basket is ignored — MPI is a constant recommender."""
        self._check_fitted()
        assert self._pair is not None
        return Recommendation(item_id=self._pair[0], promo_code=self._pair[1])

    @property
    def chosen_pair(self) -> tuple[str, str]:
        """The pair MPI recommends, for introspection in tests and reports."""
        self._check_fitted()
        assert self._pair is not None
        return self._pair

    @property
    def chosen_pair_profit(self) -> float:
        """Total recorded training profit of the chosen pair."""
        self._check_fitted()
        return self._pair_profit
