"""Exception hierarchy for the profit-mining library.

Every error raised deliberately by :mod:`repro` derives from
:class:`ProfitMiningError`, so callers can catch library failures with a
single ``except`` clause while still distinguishing the failure class.
"""

from __future__ import annotations

__all__ = [
    "ProfitMiningError",
    "ValidationError",
    "CatalogError",
    "HierarchyError",
    "MiningError",
    "RecommenderError",
    "DataGenerationError",
    "SerializationError",
    "EvaluationError",
]


class ProfitMiningError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ProfitMiningError, ValueError):
    """An input value violates a documented precondition."""


class CatalogError(ProfitMiningError, KeyError):
    """An item or promotion code is missing from, or conflicts in, a catalog."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable.
        return ProfitMiningError.__str__(self)


class HierarchyError(ProfitMiningError, ValueError):
    """A concept hierarchy is malformed (cycle, dangling edge, bad root)."""


class MiningError(ProfitMiningError, RuntimeError):
    """Rule mining was mis-configured or hit an unrecoverable state."""


class RecommenderError(ProfitMiningError, RuntimeError):
    """A recommender was used before fitting or configured inconsistently."""


class DataGenerationError(ProfitMiningError, ValueError):
    """Synthetic data generation received unusable parameters."""


class SerializationError(ProfitMiningError, ValueError):
    """Transaction data could not be read or written."""


class EvaluationError(ProfitMiningError, RuntimeError):
    """An evaluation harness was configured or invoked incorrectly."""
