"""5-fold cross-validation of recommenders (paper Section 5.1).

"We perform 5 runs on each dataset using the 5-fold cross-validation ...
each run holds back one (distinct) partition for validating the model and
uses the other 4 partitions for building the model.  The average result of
the 5 runs is reported."

:func:`cross_validate` takes a *factory* (a zero-argument callable
returning a fresh, unfitted recommender) so that each fold trains an
independent model; :class:`CVResult` aggregates the per-fold
:class:`~repro.eval.metrics.EvalResult` objects exactly as the paper
reports them (simple means over folds).

Folds are independent, so ``n_jobs > 1`` fits and evaluates them in
worker processes (:class:`concurrent.futures.ProcessPoolExecutor`).  The
factory and the database are pickled to the workers — module-level
callables, :func:`functools.partial` of them, and the picklable factory
objects of :func:`repro.eval.harness.paper_recommenders` all work;
closures do not.  Fold results are gathered in split order, so the
returned :class:`CVResult` is identical to a sequential run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from statistics import mean
from typing import Callable, Sequence

import numpy as np

from repro.core.hierarchy import ConceptHierarchy
from repro.core.recommender import Recommender
from repro.core.sales import TransactionDB
from repro.errors import EvaluationError
from repro.eval.metrics import EvalConfig, EvalResult, evaluate
from repro.obs import trace as obs

__all__ = ["kfold_indices", "CVResult", "cross_validate"]


def kfold_indices(
    n: int, k: int = 5, seed: int = 0
) -> list[tuple[list[int], list[int]]]:
    """Shuffled k-fold split: ``k`` pairs of (train indices, test indices).

    Partitions are as equal as possible; every index appears in exactly one
    test fold.  Deterministic given ``seed``.
    """
    if k < 2:
        raise EvaluationError(f"k must be >= 2, got {k}")
    if n < k:
        raise EvaluationError(f"need at least k={k} transactions, got {n}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    splits: list[tuple[list[int], list[int]]] = []
    for i in range(k):
        test = [int(x) for x in folds[i]]
        train = [int(x) for j in range(k) if j != i for x in folds[j]]
        splits.append((train, test))
    return splits


@dataclass
class CVResult:
    """Per-fold results plus the paper-style averages."""

    recommender_name: str
    fold_results: list[EvalResult]

    def __post_init__(self) -> None:
        if not self.fold_results:
            raise EvaluationError("CVResult needs at least one fold")

    @property
    def k(self) -> int:
        return len(self.fold_results)

    @property
    def gain(self) -> float:
        """Mean gain over folds (the number the figures plot)."""
        return mean(result.gain for result in self.fold_results)

    @property
    def hit_rate(self) -> float:
        """Mean hit rate over folds."""
        return mean(result.hit_rate for result in self.fold_results)

    @property
    def model_size(self) -> float | None:
        """Mean rule count over folds (``None`` for model-free baselines)."""
        sizes = [r.model_size for r in self.fold_results]
        if any(size is None for size in sizes):
            return None
        return mean(float(size) for size in sizes if size is not None)

    def hit_rate_by_profit_range(
        self, n_ranges: int = 3
    ) -> list[tuple[str, float, int]]:
        """Fold-averaged per-range hit rates (Figures 3(d)/4(d))."""
        per_fold = [r.hit_rate_by_profit_range(n_ranges) for r in self.fold_results]
        rows: list[tuple[str, float, int]] = []
        for idx in range(n_ranges):
            label = per_fold[0][idx][0]
            rates = [fold[idx][1] for fold in per_fold]
            counts = sum(fold[idx][2] for fold in per_fold)
            rows.append((label, mean(rates), counts))
        return rows


def _fit_eval_fold(
    factory: Callable[[], Recommender],
    db: TransactionDB,
    train_idx: Sequence[int],
    test_idx: Sequence[int],
    hierarchy: ConceptHierarchy,
    eval_config: EvalConfig | None,
) -> tuple[str, EvalResult]:
    """Fit a fresh recommender on one fold and score the held-back part.

    Module-level so :func:`cross_validate` can ship it to worker processes.
    """
    with obs.span("cv_fold"):
        recommender = factory()
        with obs.span("cv_fold.fit", system=recommender.name):
            recommender.fit(db.subset(train_idx))
        return recommender.name, evaluate(
            recommender, db.subset(test_idx), hierarchy, eval_config
        )


def cross_validate(
    factory: Callable[[], Recommender],
    db: TransactionDB,
    hierarchy: ConceptHierarchy,
    eval_config: EvalConfig | None = None,
    k: int = 5,
    seed: int = 0,
    splits: Sequence[tuple[list[int], list[int]]] | None = None,
    n_jobs: int = 1,
) -> CVResult:
    """Run k-fold cross-validation of one recommender family.

    ``splits`` lets callers evaluate several recommenders on identical folds
    (as the paper's comparisons require); otherwise folds are derived from
    ``seed``.

    ``n_jobs > 1`` distributes folds over worker processes; the factory
    must then be picklable (see the module docstring).  Outputs are
    identical to the sequential run — folds are deterministic given the
    splits, and results are gathered in split order.
    """
    if n_jobs < 1:
        raise EvaluationError(f"n_jobs must be >= 1, got {n_jobs}")
    if splits is None:
        splits = kfold_indices(len(db), k=k, seed=seed)
    if n_jobs == 1:
        per_fold = [
            _fit_eval_fold(factory, db, train_idx, test_idx, hierarchy, eval_config)
            for train_idx, test_idx in splits
        ]
    else:
        trace = obs.current_trace()
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            if trace is None:
                futures = [
                    pool.submit(
                        _fit_eval_fold,
                        factory,
                        db,
                        train_idx,
                        test_idx,
                        hierarchy,
                        eval_config,
                    )
                    for train_idx, test_idx in splits
                ]
                per_fold = [future.result() for future in futures]
            else:
                # Worker processes can't see this process's context-local
                # trace; run_traced gives each fold a fresh one and ships
                # its dict back for merging, in deterministic fold order.
                traced_futures = [
                    pool.submit(
                        obs.run_traced,
                        _fit_eval_fold,
                        factory,
                        db,
                        train_idx,
                        test_idx,
                        hierarchy,
                        eval_config,
                    )
                    for train_idx, test_idx in splits
                ]
                per_fold = []
                for fold_no, future in enumerate(traced_futures):
                    result, trace_data = future.result()
                    trace.merge(trace_data, label=f"worker[fold{fold_no}]")
                    per_fold.append(result)
    name = per_fold[-1][0] if per_fold else ""
    return CVResult(
        recommender_name=name, fold_results=[result for _, result in per_fold]
    )
