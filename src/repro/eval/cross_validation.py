"""5-fold cross-validation of recommenders (paper Section 5.1).

"We perform 5 runs on each dataset using the 5-fold cross-validation ...
each run holds back one (distinct) partition for validating the model and
uses the other 4 partitions for building the model.  The average result of
the 5 runs is reported."

:func:`cross_validate` takes a *factory* (a zero-argument callable
returning a fresh, unfitted recommender) so that each fold trains an
independent model; :class:`CVResult` aggregates the per-fold
:class:`~repro.eval.metrics.EvalResult` objects exactly as the paper
reports them (simple means over folds).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Callable, Sequence

import numpy as np

from repro.core.hierarchy import ConceptHierarchy
from repro.core.recommender import Recommender
from repro.core.sales import TransactionDB
from repro.errors import EvaluationError
from repro.eval.metrics import EvalConfig, EvalResult, evaluate

__all__ = ["kfold_indices", "CVResult", "cross_validate"]


def kfold_indices(
    n: int, k: int = 5, seed: int = 0
) -> list[tuple[list[int], list[int]]]:
    """Shuffled k-fold split: ``k`` pairs of (train indices, test indices).

    Partitions are as equal as possible; every index appears in exactly one
    test fold.  Deterministic given ``seed``.
    """
    if k < 2:
        raise EvaluationError(f"k must be >= 2, got {k}")
    if n < k:
        raise EvaluationError(f"need at least k={k} transactions, got {n}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    splits: list[tuple[list[int], list[int]]] = []
    for i in range(k):
        test = [int(x) for x in folds[i]]
        train = [int(x) for j in range(k) if j != i for x in folds[j]]
        splits.append((train, test))
    return splits


@dataclass
class CVResult:
    """Per-fold results plus the paper-style averages."""

    recommender_name: str
    fold_results: list[EvalResult]

    def __post_init__(self) -> None:
        if not self.fold_results:
            raise EvaluationError("CVResult needs at least one fold")

    @property
    def k(self) -> int:
        return len(self.fold_results)

    @property
    def gain(self) -> float:
        """Mean gain over folds (the number the figures plot)."""
        return mean(result.gain for result in self.fold_results)

    @property
    def hit_rate(self) -> float:
        """Mean hit rate over folds."""
        return mean(result.hit_rate for result in self.fold_results)

    @property
    def model_size(self) -> float | None:
        """Mean rule count over folds (``None`` for model-free baselines)."""
        sizes = [r.model_size for r in self.fold_results]
        if any(size is None for size in sizes):
            return None
        return mean(float(size) for size in sizes if size is not None)

    def hit_rate_by_profit_range(
        self, n_ranges: int = 3
    ) -> list[tuple[str, float, int]]:
        """Fold-averaged per-range hit rates (Figures 3(d)/4(d))."""
        per_fold = [r.hit_rate_by_profit_range(n_ranges) for r in self.fold_results]
        rows: list[tuple[str, float, int]] = []
        for idx in range(n_ranges):
            label = per_fold[0][idx][0]
            rates = [fold[idx][1] for fold in per_fold]
            counts = sum(fold[idx][2] for fold in per_fold)
            rows.append((label, mean(rates), counts))
        return rows


def cross_validate(
    factory: Callable[[], Recommender],
    db: TransactionDB,
    hierarchy: ConceptHierarchy,
    eval_config: EvalConfig | None = None,
    k: int = 5,
    seed: int = 0,
    splits: Sequence[tuple[list[int], list[int]]] | None = None,
) -> CVResult:
    """Run k-fold cross-validation of one recommender family.

    ``splits`` lets callers evaluate several recommenders on identical folds
    (as the paper's comparisons require); otherwise folds are derived from
    ``seed``.
    """
    if splits is None:
        splits = kfold_indices(len(db), k=k, seed=seed)
    fold_results: list[EvalResult] = []
    name = ""
    for train_idx, test_idx in splits:
        recommender = factory()
        name = recommender.name
        recommender.fit(db.subset(train_idx))
        fold_results.append(
            evaluate(recommender, db.subset(test_idx), hierarchy, eval_config)
        )
    return CVResult(recommender_name=name, fold_results=fold_results)
