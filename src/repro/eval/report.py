"""One-command experiment report: every panel of one figure as markdown.

``generate_markdown_report("I", scale)`` reproduces all six panels of the
paper's Figure 3 (or Figure 4 for dataset II) at the given scale and
renders them into a single markdown document — the machine-written
counterpart of EXPERIMENTS.md.  Exposed on the CLI as
``profit-mining report``.
"""

from __future__ import annotations

from repro.eval.experiments import (
    ExperimentScale,
    behavior_gain,
    gain_and_size_sweep,
    knn_postprocessing_delta,
    profit_distribution,
    profit_range_hit_rates,
)
from repro.eval.reporting import format_histogram, format_series, format_table

__all__ = ["generate_markdown_report"]


def _code_block(text: str) -> str:
    return f"```\n{text}\n```"


def generate_markdown_report(which: str, scale: ExperimentScale) -> str:
    """Render the full figure reproduction for one dataset as markdown."""
    figure = "3" if which.upper() == "I" else "4"
    sweep = gain_and_size_sweep(which, scale)
    sections: list[str] = [
        f"# Figure {figure} reproduction — dataset {which.upper()} "
        f"({scale.label} scale)",
        "",
        f"Parameters: |T| = {scale.n_transactions}, |I| = {scale.n_items}, "
        f"{scale.n_patterns} patterns, {scale.k_folds}-fold CV, "
        f"minimum supports {list(scale.min_supports)}.",
        "",
    ]

    for panel, metric, label in (
        ("a", "gain", "gain vs minimum support"),
        ("c", "hit_rate", "hit rate vs minimum support"),
        ("f", "model_size", "number of rules vs minimum support"),
    ):
        sections.append(f"## Figure {figure}({panel}): {label}")
        sections.append(_code_block(format_series(sweep.series(metric))))
        sections.append("")

    sections.append(f"## Figure {figure}(b): gain under quantity behaviors")
    gains = behavior_gain(which, scale)
    systems = sorted(next(iter(gains.values())))
    rows = [
        [label, *(per.get(system) for system in systems)]
        for label, per in gains.items()
    ]
    sections.append(_code_block(format_table(["behavior", *systems], rows)))
    sections.append("")

    sections.append(
        f"## Figure {figure}(d): hit rate by profit range "
        f"(minsup {scale.spot_support})"
    )
    ranges = profit_range_hit_rates(which, scale)
    rows = [
        [system, *(rate for _, rate, _ in triples)]
        for system, triples in ranges.items()
    ]
    sections.append(
        _code_block(format_table(["system", "Low", "Medium", "High"], rows))
    )
    sections.append("")

    sections.append(f"## Figure {figure}(e): profit distribution of target sales")
    sections.append(
        _code_block(
            format_histogram(profit_distribution(which, scale), value_label="profit")
        )
    )
    sections.append("")

    sections.append("## kNN profit post-processing (paper §5.3)")
    deltas = knn_postprocessing_delta(which, scale)
    sections.append(
        _code_block(
            format_table(
                ["system", "gain"],
                [[system, gain] for system, gain in deltas.items()],
            )
        )
    )
    sections.append("")
    return "\n".join(sections)
