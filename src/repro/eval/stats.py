"""Statistical comparison of recommenders across shared CV folds.

The paper reports fold-averaged gains and calls differences "significant"
informally; this module makes that checkable.  Because the harness
evaluates every system on the *same* folds
(:func:`repro.eval.harness.run_support_sweep` shares splits), per-fold
gains are paired samples and a paired t-test applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from scipy import stats as scipy_stats

from repro.errors import EvaluationError
from repro.eval.cross_validation import CVResult

__all__ = ["PairedComparison", "compare_gains", "compare_hit_rates"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired comparison between two recommenders.

    ``mean_diff`` is ``a − b`` (positive: ``a`` wins); ``p_value`` comes
    from a two-sided paired t-test over folds.  With the paper's 5 folds
    the test is low-powered — treat it as a sanity check, not gospel.
    """

    name_a: str
    name_b: str
    metric: str
    mean_a: float
    mean_b: float
    mean_diff: float
    t_statistic: float
    p_value: float

    @property
    def a_wins(self) -> bool:
        """Whether ``a``'s fold mean exceeds ``b``'s."""
        return self.mean_diff > 0

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the paired difference clears the given level."""
        return self.p_value < alpha

    def describe(self) -> str:
        """One-line rendering for reports."""
        return (
            f"{self.name_a} vs {self.name_b} ({self.metric}): "
            f"{self.mean_a:.4f} vs {self.mean_b:.4f} "
            f"(diff {self.mean_diff:+.4f}, t={self.t_statistic:.2f}, "
            f"p={self.p_value:.3f})"
        )


def _paired(
    a: CVResult, b: CVResult, metric: str, values_a: list[float], values_b: list[float]
) -> PairedComparison:
    if len(values_a) != len(values_b):
        raise EvaluationError(
            "paired comparison requires the same number of folds "
            f"({len(values_a)} vs {len(values_b)}); evaluate both systems on "
            "shared splits"
        )
    if len(values_a) < 2:
        raise EvaluationError("paired comparison needs at least two folds")
    diffs = [x - y for x, y in zip(values_a, values_b)]
    if all(abs(d - diffs[0]) < 1e-15 for d in diffs):
        # Constant differences (e.g. identical systems): the t-test is
        # undefined; report t=0/p=1 for a zero diff, t=inf/p=0 otherwise.
        identical = abs(diffs[0]) < 1e-15
        t_stat = 0.0 if identical else float("inf")
        p_value = 1.0 if identical else 0.0
    else:
        t_stat, p_value = scipy_stats.ttest_rel(values_a, values_b)
    return PairedComparison(
        name_a=a.recommender_name,
        name_b=b.recommender_name,
        metric=metric,
        mean_a=mean(values_a),
        mean_b=mean(values_b),
        mean_diff=mean(values_a) - mean(values_b),
        t_statistic=float(t_stat),
        p_value=float(p_value),
    )


def compare_gains(a: CVResult, b: CVResult) -> PairedComparison:
    """Paired t-test on per-fold gains (folds must be shared)."""
    return _paired(
        a,
        b,
        "gain",
        [r.gain for r in a.fold_results],
        [r.gain for r in b.fold_results],
    )


def compare_hit_rates(a: CVResult, b: CVResult) -> PairedComparison:
    """Paired t-test on per-fold hit rates (folds must be shared)."""
    return _paired(
        a,
        b,
        "hit_rate",
        [r.hit_rate for r in a.fold_results],
        [r.hit_rate for r in b.fold_results],
    )
