"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers format them as aligned ASCII tables so diffs against
EXPERIMENTS.md stay readable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_histogram"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned table; floats are shown with 4 decimals."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[tuple[float, float | None]]],
    x_label: str = "min_support",
    y_label: str = "value",
    title: str | None = None,
) -> str:
    """Render per-system ``(x, y)`` series as one table (x down, systems across)."""
    systems = sorted(series)
    xs = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        (system, x): y for system in systems for x, y in series[system]
    }
    headers = [x_label, *systems]
    rows = []
    for x in xs:
        row: list[object] = [x]
        for system in systems:
            row.append(lookup.get((system, x)))
        rows.append(row)
    return format_table(headers, rows, title=title or y_label)


def format_histogram(
    histogram: Mapping[float, int],
    value_label: str = "profit",
    title: str | None = None,
) -> str:
    """Render a value → count histogram with a proportional bar."""
    if not histogram:
        return title or "(empty histogram)"
    peak = max(histogram.values())
    lines = [title] if title else []
    for value in sorted(histogram):
        count = histogram[value]
        bar = "#" * max(1, round(40 * count / peak))
        lines.append(f"{value_label}={value:<10.4g} n={count:<8d} {bar}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
