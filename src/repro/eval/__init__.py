"""Evaluation: metrics, cross-validation, behavior models, experiments."""

from repro.eval.behavior import (
    BehaviorAdjustedProfit,
    BehaviorClause,
    QuantityBehavior,
    behavior_paper_combined,
    behavior_x2_y30,
    behavior_x3_y40,
    price_step_gap,
)
from repro.eval.cross_validation import CVResult, cross_validate, kfold_indices
from repro.eval.experiments import (
    MOA_SYSTEMS,
    ExperimentScale,
    behavior_gain,
    gain_and_size_sweep,
    get_dataset,
    knn_postprocessing_delta,
    profit_distribution,
    profit_range_hit_rates,
    scale_from_env,
)
from repro.eval.harness import (
    PAPER_SYSTEMS,
    SweepPoint,
    SweepResult,
    paper_recommenders,
    run_single_support,
    run_support_sweep,
)
from repro.eval.metrics import (
    NO_OFFER,
    EvalConfig,
    EvalResult,
    TransactionOutcome,
    evaluate,
    evaluate_top_k,
)
from repro.eval.reporting import format_histogram, format_series, format_table
from repro.eval.report import generate_markdown_report
from repro.eval.stats import PairedComparison, compare_gains, compare_hit_rates

__all__ = [
    "BehaviorAdjustedProfit",
    "BehaviorClause",
    "CVResult",
    "EvalConfig",
    "EvalResult",
    "ExperimentScale",
    "MOA_SYSTEMS",
    "NO_OFFER",
    "PAPER_SYSTEMS",
    "PairedComparison",
    "QuantityBehavior",
    "SweepPoint",
    "SweepResult",
    "TransactionOutcome",
    "behavior_gain",
    "behavior_paper_combined",
    "behavior_x2_y30",
    "behavior_x3_y40",
    "compare_gains",
    "compare_hit_rates",
    "cross_validate",
    "evaluate",
    "evaluate_top_k",
    "format_histogram",
    "format_series",
    "format_table",
    "gain_and_size_sweep",
    "generate_markdown_report",
    "get_dataset",
    "kfold_indices",
    "knn_postprocessing_delta",
    "paper_recommenders",
    "price_step_gap",
    "profit_distribution",
    "profit_range_hit_rates",
    "run_single_support",
    "run_support_sweep",
    "scale_from_env",
]
