"""Experiment harness: the six recommenders of Section 5 and sweeps.

:func:`paper_recommenders` builds factories for the systems the paper
compares — PROF+MOA, PROF−MOA, CONF+MOA, CONF−MOA, kNN (k=5) and MPI — so
every figure-reproduction experiment instantiates them identically.
:func:`run_support_sweep` drives the minimum-support sweeps that
Figures 3(a)/(c)/(f) and 4(a)/(c)/(f) plot, evaluating all recommenders on
the same cross-validation folds.

Sweep acceleration
------------------
A sweep touches every (system, support level, fold) cell, but most of that
work is redundant, and the fast fit path removes it in three layers:

* one :class:`~repro.core.index_cache.FitCache` per sequential sweep
  shares MOA hierarchies and transaction indexes, so the PROF and CONF
  variants over a fold split one extension/interning/mask build;
* ``mine_once=True`` (the default) mines each (system, fold) cell once at
  the sweep's *lowest* support and derives every higher level with
  :func:`~repro.core.mining.filter_mining_result` — support is
  anti-monotone in the threshold, so filtering on the already-computed hit
  counts and re-running covering + pruning reproduces the per-level refit
  exactly;
* ``n_jobs > 1`` distributes (system, fold) cells over worker processes,
  gathering results in a fixed order so outputs are bit-identical to the
  sequential run.

``mine_once=False`` keeps the per-level refit path as the differential
reference; the equivalence is asserted by tests and benchmarked in
``benchmarks/test_perf_components.py``.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Sequence

from repro.baselines.decision_tree import DecisionTreeRecommender
from repro.baselines.knn import KNNRecommender
from repro.baselines.mpi import MPIRecommender
from repro.core.hierarchy import ConceptHierarchy
from repro.core.index_cache import FitCache
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig, filter_mining_result
from repro.core.profit import BinaryProfit, ProfitModel, SavingMOA
from repro.core.pruning import PruneConfig
from repro.core.recommender import Recommender
from repro.core.sales import TransactionDB
from repro.data.datasets import Dataset
from repro.errors import EvaluationError
from repro.eval.cross_validation import CVResult, kfold_indices
from repro.eval.metrics import EvalConfig, EvalResult, evaluate
from repro.obs import trace as obs

__all__ = [
    "RecommenderFactory",
    "MinerFactory",
    "PAPER_SYSTEMS",
    "SUPPORT_FREE_SYSTEMS",
    "eval_config_for_system",
    "paper_recommenders",
    "SweepPoint",
    "SweepResult",
    "run_support_sweep",
    "run_single_support",
]

RecommenderFactory = Callable[[], Recommender]

#: Display order used in every figure, matching the paper's legends.
PAPER_SYSTEMS = ("PROF+MOA", "PROF-MOA", "CONF+MOA", "CONF-MOA", "kNN", "MPI")

#: Systems whose models do not depend on the minimum support; a sweep fits
#: each of these once per fold and reuses the result at every level.
SUPPORT_FREE_SYSTEMS = frozenset(
    {"kNN", "kNN(profit)", "MPI", "DT", "DT(profit)"}
)


def eval_config_for_system(base: EvalConfig | None, system: str) -> EvalConfig:
    """Per-system evaluation config: −MOA systems are judged without MOA.

    The gain formula scores ``p(r, t)``, whose hit predicate is the model's
    own generalization relation: a −MOA recommender neither offers nor
    credits cross-price acceptance, so its recommendations must match the
    recorded promotion exactly.  All MOA-based systems — including kNN and
    MPI, to which the paper explicitly "applied MOA to tell whether a
    recommendation is a hit" — are judged with MOA.
    """
    base = base or EvalConfig()
    uses_moa = not system.endswith("-MOA")
    return replace(base, moa_hit_test=uses_moa)


@dataclass(frozen=True)
class MinerFactory:
    """Picklable zero-argument factory for one rule-based paper system.

    Replaces the closures :func:`paper_recommenders` used to return:
    parallel cross-validation pickles factories to worker processes, and
    closures cannot cross that boundary.  The configuration is carried as
    data, which also lets the sweep's fast path rebuild the same system at
    a different support level (:meth:`at_support`).
    """

    hierarchy: ConceptHierarchy
    profit_model: ProfitModel
    config: ProfitMinerConfig

    def __call__(self) -> ProfitMiner:
        """A fresh, unfitted miner with this factory's configuration."""
        return ProfitMiner(
            hierarchy=self.hierarchy,
            profit_model=self.profit_model,
            config=self.config,
        )

    def at_support(self, min_support: float) -> ProfitMiner:
        """A fresh miner with only the minimum support replaced."""
        config = replace(
            self.config,
            mining=replace(self.config.mining, min_support=min_support),
        )
        return ProfitMiner(
            hierarchy=self.hierarchy,
            profit_model=self.profit_model,
            config=config,
        )


def paper_recommenders(
    hierarchy: ConceptHierarchy,
    min_support: float,
    max_body_size: int = 2,
    knn_k: int = 5,
    profit_model: ProfitModel | None = None,
    prune_config: PruneConfig | None = None,
    systems: Sequence[str] = PAPER_SYSTEMS,
) -> dict[str, RecommenderFactory]:
    """Factories for the requested paper systems at one minimum support.

    Every returned factory is picklable, so any of them can be handed to
    :func:`~repro.eval.cross_validation.cross_validate` with ``n_jobs > 1``.
    """
    profit_model = profit_model or SavingMOA()
    prune_config = prune_config or PruneConfig()

    def miner(model: ProfitModel, use_moa: bool) -> MinerFactory:
        return MinerFactory(
            hierarchy=hierarchy,
            profit_model=model,
            config=ProfitMinerConfig(
                mining=MinerConfig(
                    min_support=min_support, max_body_size=max_body_size
                ),
                pruning=prune_config,
                use_moa=use_moa,
            ),
        )

    registry: dict[str, RecommenderFactory] = {
        "PROF+MOA": miner(profit_model, use_moa=True),
        "PROF-MOA": miner(profit_model, use_moa=False),
        "CONF+MOA": miner(BinaryProfit(), use_moa=True),
        "CONF-MOA": miner(BinaryProfit(), use_moa=False),
        "kNN": partial(KNNRecommender, k=knn_k),
        "kNN(profit)": partial(
            KNNRecommender, k=knn_k, profit_post_processing=True
        ),
        "MPI": MPIRecommender,
        "DT": DecisionTreeRecommender,
        "DT(profit)": partial(DecisionTreeRecommender, profit_rerank=True),
    }
    unknown = [name for name in systems if name not in registry]
    if unknown:
        raise EvaluationError(
            f"unknown systems {unknown}; available: {sorted(registry)}"
        )
    return {name: registry[name] for name in systems}


@dataclass(frozen=True)
class SweepPoint:
    """One (system, minimum support) cell of a sweep."""

    system: str
    min_support: float
    gain: float
    hit_rate: float
    model_size: float | None


@dataclass
class SweepResult:
    """All cells of a support sweep, plus the raw CV results."""

    dataset_name: str
    min_supports: list[float]
    points: list[SweepPoint] = field(default_factory=list)
    cv_results: dict[tuple[str, float], CVResult] = field(default_factory=dict)

    def series(
        self, metric: str = "gain"
    ) -> dict[str, list[tuple[float, float | None]]]:
        """Per-system ``(min_support, value)`` series for one metric."""
        if metric not in ("gain", "hit_rate", "model_size"):
            raise EvaluationError(f"unknown metric {metric!r}")
        out: dict[str, list[tuple[float, float | None]]] = {}
        for point in self.points:
            value = getattr(point, metric)
            out.setdefault(point.system, []).append((point.min_support, value))
        for series in out.values():
            series.sort()
        return out

    def best_system(self, min_support: float) -> str:
        """The system with the highest gain at one support level.

        Support levels are compared with :func:`math.isclose`, so values
        that went through float arithmetic (e.g. ``0.01 * 3``) still
        select their sweep points instead of silently matching nothing.
        """
        candidates = [
            p
            for p in self.points
            if math.isclose(
                p.min_support, min_support, rel_tol=1e-9, abs_tol=1e-12
            )
        ]
        if not candidates:
            raise EvaluationError(f"no sweep points at min_support={min_support}")
        return max(candidates, key=lambda p: p.gain).system


# ----------------------------------------------------------------------
# Sweep execution: (system, fold) cells
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _SweepSpec:
    """Everything a (system, fold) cell needs beyond its own identity.

    Picklable, so the same spec drives the sequential loop and the worker
    processes of ``n_jobs > 1``.
    """

    db: TransactionDB
    hierarchy: ConceptHierarchy
    eval_config: EvalConfig | None
    min_supports: tuple[float, ...]  # ascending
    max_body_size: int
    knn_k: int
    mine_once: bool


@dataclass(frozen=True)
class _SweepCell:
    """One (system, fold) unit of sweep work."""

    system: str
    fold: int
    train_idx: tuple[int, ...]
    test_idx: tuple[int, ...]


def _run_sweep_cell(
    spec: _SweepSpec,
    cell: _SweepCell,
    train: TransactionDB,
    test: TransactionDB,
    cache: FitCache | None,
) -> tuple[str, dict[float, EvalResult]]:
    """Fit one (system, fold) cell and score it at every support level.

    Rule-based systems with ``mine_once`` fit once at the lowest support
    and derive the higher levels by anti-monotone filtering; with it off
    they refit per level (the differential reference).  Support-free
    baselines fit and evaluate once, reused at every level.  Returns the
    recommender's display name and the per-level evaluation results.
    """
    with obs.span("sweep_cell", system=cell.system, fold=str(cell.fold)):
        return _run_sweep_cell_impl(spec, cell, train, test, cache)


def _run_sweep_cell_impl(
    spec: _SweepSpec,
    cell: _SweepCell,
    train: TransactionDB,
    test: TransactionDB,
    cache: FitCache | None,
) -> tuple[str, dict[float, EvalResult]]:
    factory = paper_recommenders(
        spec.hierarchy,
        spec.min_supports[0],
        max_body_size=spec.max_body_size,
        knn_k=spec.knn_k,
        systems=(cell.system,),
    )[cell.system]
    eval_cfg = eval_config_for_system(spec.eval_config, cell.system)
    per_level: dict[float, EvalResult] = {}

    if cell.system in SUPPORT_FREE_SYSTEMS:
        recommender = factory()
        recommender.fit(train)
        result = evaluate(recommender, test, spec.hierarchy, eval_cfg)
        for min_support in spec.min_supports:
            per_level[min_support] = result
        return recommender.name, per_level

    assert isinstance(factory, MinerFactory)
    if spec.mine_once:
        base = factory()  # configured at the sweep's lowest support
        base.fit(train, cache=cache)
        assert base.mining_result is not None
        # Levels are ascending, so each one filters the previous level's
        # (already much smaller) result instead of rescanning the base:
        # ``n_hits >= level`` composes, and the renumbering is monotone,
        # so chained filtering is exact.
        prev = base.mining_result
        for min_support in spec.min_supports:
            if min_support == spec.min_supports[0]:
                miner = base
            else:
                prev = filter_mining_result(prev, min_support)
                miner = factory.at_support(min_support)
                miner.fit_from_mining_result(prev)
            per_level[min_support] = evaluate(
                miner, test, spec.hierarchy, eval_cfg
            )
        return base.name, per_level

    name = ""
    for min_support in spec.min_supports:
        miner = factory.at_support(min_support)
        miner.fit(train, cache=cache)
        name = miner.name
        per_level[min_support] = evaluate(miner, test, spec.hierarchy, eval_cfg)
    return name, per_level


def _run_sweep_cell_task(
    spec: _SweepSpec, cell: _SweepCell
) -> tuple[str, dict[float, EvalResult]]:
    """Self-contained cell runner for worker processes.

    Builds the fold subsets and a private cache locally: worker processes
    share nothing, so the only cross-system reuse they keep is the
    mine-once derivation within the cell (the dominant saving).
    """
    train = spec.db.subset(list(cell.train_idx))
    test = spec.db.subset(list(cell.test_idx))
    return _run_sweep_cell(spec, cell, train, test, FitCache())


def _run_cells(
    spec: _SweepSpec, cells: list[_SweepCell], n_jobs: int
) -> dict[tuple[str, int], tuple[str, dict[float, EvalResult]]]:
    """Execute cells, sequentially or across processes; keyed results.

    The sequential path walks cells fold-major with one shared
    :class:`FitCache` and per-fold subsets, so every system over a fold
    reuses one index build.  The parallel path ships each cell to a
    worker.  Either way the returned mapping is complete and the caller
    assembles results in a fixed order, so outputs are identical.
    """
    out: dict[tuple[str, int], tuple[str, dict[float, EvalResult]]] = {}
    if n_jobs == 1:
        cache = FitCache()
        folds: dict[int, tuple[TransactionDB, TransactionDB]] = {}
        for cell in cells:
            if cell.fold not in folds:
                folds[cell.fold] = (
                    spec.db.subset(list(cell.train_idx)),
                    spec.db.subset(list(cell.test_idx)),
                )
            train, test = folds[cell.fold]
            out[(cell.system, cell.fold)] = _run_sweep_cell(
                spec, cell, train, test, cache
            )
        return out
    trace = obs.current_trace()
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        if trace is None:
            futures = {
                (cell.system, cell.fold): pool.submit(
                    _run_sweep_cell_task, spec, cell
                )
                for cell in cells
            }
            for key, future in futures.items():
                out[key] = future.result()
        else:
            # contextvars stop at the process boundary, so each worker
            # records into its own fresh trace and ships it back with the
            # result; the parent folds them in deterministic cell order.
            traced_futures = {
                (cell.system, cell.fold): pool.submit(
                    obs.run_traced, _run_sweep_cell_task, spec, cell
                )
                for cell in cells
            }
            for key, future in traced_futures.items():
                result, trace_data = future.result()
                out[key] = result
                trace.merge(trace_data, label=f"worker[{key[0]}/fold{key[1]}]")
    return out


def run_support_sweep(
    dataset: Dataset,
    min_supports: Sequence[float],
    eval_config: EvalConfig | None = None,
    systems: Sequence[str] = PAPER_SYSTEMS,
    k_folds: int = 5,
    max_body_size: int = 2,
    knn_k: int = 5,
    seed: int = 0,
    n_jobs: int = 1,
    mine_once: bool = True,
) -> SweepResult:
    """Cross-validate every system at every minimum support.

    All systems and all support levels share the same folds, so curves are
    directly comparable (the paper's methodology).  Model-free baselines do
    not depend on the support, but re-evaluating them per level keeps the
    result table rectangular, as in the figures.

    The fit path is accelerated by default (see the module docstring):
    ``mine_once=True`` mines each rule-based (system, fold) cell once at
    the lowest support and derives higher levels by filtering;
    ``n_jobs > 1`` spreads cells over worker processes.  Both switches
    leave the results bit-identical to the sequential per-level refit
    (``mine_once=False, n_jobs=1``), which is kept as the reference path.
    """
    if not min_supports:
        raise EvaluationError("min_supports must be non-empty")
    if n_jobs < 1:
        raise EvaluationError(f"n_jobs must be >= 1, got {n_jobs}")
    sorted_supports = sorted(min_supports)
    # Validates the requested system names before any work starts.
    paper_recommenders(
        dataset.hierarchy,
        sorted_supports[0],
        max_body_size=max_body_size,
        knn_k=knn_k,
        systems=systems,
    )
    splits = kfold_indices(len(dataset.db), k=k_folds, seed=seed)
    spec = _SweepSpec(
        db=dataset.db,
        hierarchy=dataset.hierarchy,
        eval_config=eval_config,
        min_supports=tuple(sorted_supports),
        max_body_size=max_body_size,
        knn_k=knn_k,
        mine_once=mine_once,
    )
    cells = [
        _SweepCell(
            system=system,
            fold=fold,
            train_idx=tuple(train_idx),
            test_idx=tuple(test_idx),
        )
        for fold, (train_idx, test_idx) in enumerate(splits)
        for system in systems
    ]
    with obs.span(
        "sweep",
        dataset=dataset.name,
        levels=str(len(sorted_supports)),
        cells=str(len(cells)),
        n_jobs=str(n_jobs),
    ):
        cell_results = _run_cells(spec, cells, n_jobs)

    result = SweepResult(dataset_name=dataset.name, min_supports=sorted_supports)
    for system in systems:
        per_fold = [cell_results[(system, fold)] for fold in range(len(splits))]
        name = per_fold[-1][0]
        if system in SUPPORT_FREE_SYSTEMS:
            # One CVResult shared across levels, as the baselines' models
            # do not depend on the support threshold.
            cv = CVResult(
                recommender_name=name,
                fold_results=[
                    levels[sorted_supports[0]] for _, levels in per_fold
                ],
            )
            for min_support in sorted_supports:
                result.cv_results[(system, min_support)] = cv
        else:
            for min_support in sorted_supports:
                result.cv_results[(system, min_support)] = CVResult(
                    recommender_name=name,
                    fold_results=[levels[min_support] for _, levels in per_fold],
                )
    for min_support in sorted_supports:
        for system in systems:
            cv = result.cv_results[(system, min_support)]
            result.points.append(
                SweepPoint(
                    system=system,
                    min_support=min_support,
                    gain=cv.gain,
                    hit_rate=cv.hit_rate,
                    model_size=cv.model_size,
                )
            )
    return result


def run_single_support(
    dataset: Dataset,
    min_support: float,
    eval_config: EvalConfig | None = None,
    systems: Sequence[str] = PAPER_SYSTEMS,
    k_folds: int = 5,
    max_body_size: int = 2,
    knn_k: int = 5,
    seed: int = 0,
    n_jobs: int = 1,
) -> dict[str, CVResult]:
    """Cross-validate every system at one support level (Figures 3(d)/4(d)).

    A one-level sweep: the shared index cache still lets the PROF and CONF
    variants split each fold's index build, and ``n_jobs > 1`` spreads the
    (system, fold) cells over worker processes.
    """
    sweep = run_support_sweep(
        dataset,
        [min_support],
        eval_config=eval_config,
        systems=systems,
        k_folds=k_folds,
        max_body_size=max_body_size,
        knn_k=knn_k,
        seed=seed,
        n_jobs=n_jobs,
    )
    return {
        system: sweep.cv_results[(system, min_support)] for system in systems
    }
