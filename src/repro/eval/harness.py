"""Experiment harness: the six recommenders of Section 5 and sweeps.

:func:`paper_recommenders` builds factories for the systems the paper
compares — PROF+MOA, PROF−MOA, CONF+MOA, CONF−MOA, kNN (k=5) and MPI — so
every figure-reproduction experiment instantiates them identically.
:func:`run_support_sweep` drives the minimum-support sweeps that
Figures 3(a)/(c)/(f) and 4(a)/(c)/(f) plot, evaluating all recommenders on
the same cross-validation folds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.baselines.decision_tree import DecisionTreeRecommender
from repro.baselines.knn import KNNRecommender
from repro.baselines.mpi import MPIRecommender
from repro.core.hierarchy import ConceptHierarchy
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.profit import BinaryProfit, ProfitModel, SavingMOA
from repro.core.pruning import PruneConfig
from repro.core.recommender import Recommender
from repro.data.datasets import Dataset
from repro.errors import EvaluationError
from repro.eval.cross_validation import CVResult, cross_validate, kfold_indices
from repro.eval.metrics import EvalConfig

__all__ = [
    "RecommenderFactory",
    "PAPER_SYSTEMS",
    "eval_config_for_system",
    "paper_recommenders",
    "SweepPoint",
    "SweepResult",
    "run_support_sweep",
    "run_single_support",
]

RecommenderFactory = Callable[[], Recommender]

#: Display order used in every figure, matching the paper's legends.
PAPER_SYSTEMS = ("PROF+MOA", "PROF-MOA", "CONF+MOA", "CONF-MOA", "kNN", "MPI")


def eval_config_for_system(base: EvalConfig | None, system: str) -> EvalConfig:
    """Per-system evaluation config: −MOA systems are judged without MOA.

    The gain formula scores ``p(r, t)``, whose hit predicate is the model's
    own generalization relation: a −MOA recommender neither offers nor
    credits cross-price acceptance, so its recommendations must match the
    recorded promotion exactly.  All MOA-based systems — including kNN and
    MPI, to which the paper explicitly "applied MOA to tell whether a
    recommendation is a hit" — are judged with MOA.
    """
    base = base or EvalConfig()
    uses_moa = not system.endswith("-MOA")
    return replace(base, moa_hit_test=uses_moa)


def paper_recommenders(
    hierarchy: ConceptHierarchy,
    min_support: float,
    max_body_size: int = 2,
    knn_k: int = 5,
    profit_model: ProfitModel | None = None,
    prune_config: PruneConfig | None = None,
    systems: Sequence[str] = PAPER_SYSTEMS,
) -> dict[str, RecommenderFactory]:
    """Factories for the requested paper systems at one minimum support."""
    profit_model = profit_model or SavingMOA()
    prune_config = prune_config or PruneConfig()

    def miner(model: ProfitModel, use_moa: bool) -> RecommenderFactory:
        def build() -> Recommender:
            return ProfitMiner(
                hierarchy=hierarchy,
                profit_model=model,
                config=ProfitMinerConfig(
                    mining=MinerConfig(
                        min_support=min_support, max_body_size=max_body_size
                    ),
                    pruning=prune_config,
                    use_moa=use_moa,
                ),
            )

        return build

    registry: dict[str, RecommenderFactory] = {
        "PROF+MOA": miner(profit_model, use_moa=True),
        "PROF-MOA": miner(profit_model, use_moa=False),
        "CONF+MOA": miner(BinaryProfit(), use_moa=True),
        "CONF-MOA": miner(BinaryProfit(), use_moa=False),
        "kNN": lambda: KNNRecommender(k=knn_k),
        "kNN(profit)": lambda: KNNRecommender(k=knn_k, profit_post_processing=True),
        "MPI": MPIRecommender,
        "DT": DecisionTreeRecommender,
        "DT(profit)": lambda: DecisionTreeRecommender(profit_rerank=True),
    }
    unknown = [name for name in systems if name not in registry]
    if unknown:
        raise EvaluationError(
            f"unknown systems {unknown}; available: {sorted(registry)}"
        )
    return {name: registry[name] for name in systems}


@dataclass(frozen=True)
class SweepPoint:
    """One (system, minimum support) cell of a sweep."""

    system: str
    min_support: float
    gain: float
    hit_rate: float
    model_size: float | None


@dataclass
class SweepResult:
    """All cells of a support sweep, plus the raw CV results."""

    dataset_name: str
    min_supports: list[float]
    points: list[SweepPoint] = field(default_factory=list)
    cv_results: dict[tuple[str, float], CVResult] = field(default_factory=dict)

    def series(
        self, metric: str = "gain"
    ) -> dict[str, list[tuple[float, float | None]]]:
        """Per-system ``(min_support, value)`` series for one metric."""
        if metric not in ("gain", "hit_rate", "model_size"):
            raise EvaluationError(f"unknown metric {metric!r}")
        out: dict[str, list[tuple[float, float | None]]] = {}
        for point in self.points:
            value = getattr(point, metric if metric != "model_size" else "model_size")
            out.setdefault(point.system, []).append((point.min_support, value))
        for series in out.values():
            series.sort()
        return out

    def best_system(self, min_support: float) -> str:
        """The system with the highest gain at one support level.

        Support levels are compared with :func:`math.isclose`, so values
        that went through float arithmetic (e.g. ``0.01 * 3``) still
        select their sweep points instead of silently matching nothing.
        """
        candidates = [
            p
            for p in self.points
            if math.isclose(
                p.min_support, min_support, rel_tol=1e-9, abs_tol=1e-12
            )
        ]
        if not candidates:
            raise EvaluationError(f"no sweep points at min_support={min_support}")
        return max(candidates, key=lambda p: p.gain).system


def run_support_sweep(
    dataset: Dataset,
    min_supports: Sequence[float],
    eval_config: EvalConfig | None = None,
    systems: Sequence[str] = PAPER_SYSTEMS,
    k_folds: int = 5,
    max_body_size: int = 2,
    knn_k: int = 5,
    seed: int = 0,
) -> SweepResult:
    """Cross-validate every system at every minimum support.

    All systems and all support levels share the same folds, so curves are
    directly comparable (the paper's methodology).  Model-free baselines do
    not depend on the support, but re-evaluating them per level keeps the
    result table rectangular, as in the figures.
    """
    if not min_supports:
        raise EvaluationError("min_supports must be non-empty")
    splits = kfold_indices(len(dataset.db), k=k_folds, seed=seed)
    result = SweepResult(
        dataset_name=dataset.name, min_supports=sorted(min_supports)
    )
    baseline_cache: dict[str, CVResult] = {}
    for min_support in result.min_supports:
        factories = paper_recommenders(
            dataset.hierarchy,
            min_support,
            max_body_size=max_body_size,
            knn_k=knn_k,
            systems=systems,
        )
        for system, factory in factories.items():
            support_free = system in ("kNN", "kNN(profit)", "MPI", "DT", "DT(profit)")
            if support_free and system in baseline_cache:
                cv = baseline_cache[system]
            else:
                cv = cross_validate(
                    factory,
                    dataset.db,
                    dataset.hierarchy,
                    eval_config_for_system(eval_config, system),
                    splits=splits,
                )
                if support_free:
                    baseline_cache[system] = cv
            result.cv_results[(system, min_support)] = cv
            result.points.append(
                SweepPoint(
                    system=system,
                    min_support=min_support,
                    gain=cv.gain,
                    hit_rate=cv.hit_rate,
                    model_size=cv.model_size,
                )
            )
    return result


def run_single_support(
    dataset: Dataset,
    min_support: float,
    eval_config: EvalConfig | None = None,
    systems: Sequence[str] = PAPER_SYSTEMS,
    k_folds: int = 5,
    max_body_size: int = 2,
    knn_k: int = 5,
    seed: int = 0,
) -> dict[str, CVResult]:
    """Cross-validate every system at one support level (Figures 3(d)/4(d))."""
    splits = kfold_indices(len(dataset.db), k=k_folds, seed=seed)
    factories = paper_recommenders(
        dataset.hierarchy,
        min_support,
        max_body_size=max_body_size,
        knn_k=knn_k,
        systems=systems,
    )
    return {
        system: cross_validate(
            factory,
            dataset.db,
            dataset.hierarchy,
            eval_config_for_system(eval_config, system),
            splits=splits,
        )
        for system, factory in factories.items()
    }
