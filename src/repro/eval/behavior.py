"""Quantity-increase shopping behavior at validation time (Section 5.3).

The saving-MOA gain is capped at 1 because the customer never spends more
at a favorable price.  To "model that a customer buys and spends more at a
more favorable price", the paper compares the recommended price step ``p``
with the recorded step ``q`` (prices ``P_j = (1 + j·δ)·Cost``) and
multiplies the purchase quantity:

* setting ``(x=2, y=30%)`` — the customer doubles the quantity with
  probability 30%;
* setting ``(x=3, y=40%)`` — the customer triples it with probability 40%.

The paper applies ``(x=2, y=30%)`` when ``q − p ∈ {1, 2}`` and
``(x=3, y=40%)`` when ``q − p ∈ {3, 4}`` while also plotting per-setting
curves labelled ``PROF(x=2,y=30%)`` / ``PROF(x=3,y=40%)``; to support both
readings, :class:`QuantityBehavior` is a list of ``(gaps, x, y)`` clauses
and the module exports the two single settings plus the combined one.
Draws are deterministic given the evaluator's seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.items import ItemCatalog
from repro.core.profit import ProfitModel
from repro.errors import ValidationError

__all__ = [
    "BehaviorClause",
    "QuantityBehavior",
    "BehaviorAdjustedProfit",
    "behavior_x2_y30",
    "behavior_x3_y40",
    "behavior_paper_combined",
    "price_step_gap",
]


@dataclass(frozen=True)
class BehaviorClause:
    """Apply multiplier ``x`` with probability ``y`` for the given gaps.

    ``gaps`` of ``None`` means "any positive gap".
    """

    multiplier: float
    probability: float
    gaps: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.multiplier < 1:
            raise ValidationError(
                f"behavior multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0 <= self.probability <= 1:
            raise ValidationError(
                f"behavior probability must be in [0, 1], got {self.probability}"
            )
        if self.gaps is not None and any(g < 1 for g in self.gaps):
            raise ValidationError("behavior gaps must be positive price steps")

    def applies_to(self, gap: int) -> bool:
        """Whether this clause covers a recorded−recommended gap of ``gap``."""
        if gap < 1:
            return False
        return self.gaps is None or gap in self.gaps


@dataclass(frozen=True)
class QuantityBehavior:
    """Ordered clauses; the first clause matching the gap decides."""

    label: str
    clauses: tuple[BehaviorClause, ...]

    def multiplier(self, gap: int, rng: np.random.Generator) -> float:
        """Quantity multiplier for a price-step gap (1.0 when none applies)."""
        for clause in self.clauses:
            if clause.applies_to(gap):
                if rng.random() < clause.probability:
                    return clause.multiplier
                return 1.0
        return 1.0

    def expected_multiplier(self, gap: int) -> float:
        """Expectation of :meth:`multiplier` — used by deterministic tests."""
        for clause in self.clauses:
            if clause.applies_to(gap):
                return 1.0 + clause.probability * (clause.multiplier - 1.0)
        return 1.0


def behavior_x2_y30() -> QuantityBehavior:
    """The single setting ``(x=2, y=30%)`` applied to any positive gap."""
    return QuantityBehavior(
        label="(x=2,y=30%)",
        clauses=(BehaviorClause(multiplier=2.0, probability=0.30),),
    )


def behavior_x3_y40() -> QuantityBehavior:
    """The single setting ``(x=3, y=40%)`` applied to any positive gap."""
    return QuantityBehavior(
        label="(x=3,y=40%)",
        clauses=(BehaviorClause(multiplier=3.0, probability=0.40),),
    )


def behavior_paper_combined() -> QuantityBehavior:
    """The combined reading: gaps 1–2 → (2, 30%), gaps 3–4 → (3, 40%)."""
    return QuantityBehavior(
        label="(x=2,y=30%)+(x=3,y=40%)",
        clauses=(
            BehaviorClause(multiplier=2.0, probability=0.30, gaps=(1, 2)),
            BehaviorClause(multiplier=3.0, probability=0.40, gaps=(3, 4)),
        ),
    )


class BehaviorAdjustedProfit(ProfitModel):
    """The paper's "more greedy estimation" (Section 3.1) as a profit model.

    Saving and buying MOA never increase the customer's spending.  The paper
    notes a greedier estimate "could associate the increase of spending with
    the relative favorability of P over P_t"; this model does exactly that —
    it credits the base assumption's profit times the *expected* quantity
    multiplier of a behavior model at the recommendation's price-step gap.
    Deterministic (expectation, not a draw), so mining stays reproducible.
    """

    def __init__(self, base: ProfitModel, behavior: QuantityBehavior) -> None:
        self.base = base
        self.behavior = behavior
        self.name = f"{base.name}×{behavior.label}"

    def credited_profit(self, head, target_sale, catalog: ItemCatalog) -> float:
        """Base credit times the expected multiplier at the price-step gap."""
        profit = self.base.credited_profit(head, target_sale, catalog)
        if head.node != target_sale.item_id:
            return profit
        gap = price_step_gap(
            catalog, target_sale.item_id, target_sale.promo_code, head.promo or ""
        )
        return profit * self.behavior.expected_multiplier(gap)


def price_step_gap(
    catalog: ItemCatalog,
    item_id: str,
    recorded_code: str,
    recommended_code: str,
) -> int:
    """``q − p``: recorded minus recommended price-step index.

    Steps index the item's promotion codes sorted by unit price ascending
    (for the paper's single-packing ladders this is exactly ``j`` of
    ``P_j``).  Positive means the recommendation was cheaper.
    """
    item = catalog.get(item_id)
    ladder = sorted(item.promotions, key=lambda p: (p.unit_price, p.code))
    positions = {promo.code: idx for idx, promo in enumerate(ladder)}
    try:
        return positions[recorded_code] - positions[recommended_code]
    except KeyError as exc:
        raise ValidationError(
            f"promotion code {exc.args[0]!r} not on item {item_id!r}'s ladder"
        ) from None
