"""Figure-by-figure reproduction experiments (paper Section 5.3).

Each public function regenerates the data behind one panel of Figure 3
(dataset I) or Figure 4 (dataset II); the benchmark files under
``benchmarks/`` are thin wrappers that run these and print the rows.

Because one support sweep yields the gain, hit-rate and model-size curves
simultaneously (panels (a), (c) and (f)), sweeps are cached per
(dataset, scale) within the process — re-requesting another panel reuses
the computation.

Scale
-----
The paper runs at ``|T| = 100K, |I| = 1000``; a pure-Python laptop run uses
:meth:`ExperimentScale.small` (the default).  Set the environment variable
``REPRO_SCALE`` to ``tiny``, ``small``, ``medium`` or ``paper`` to choose globally,
or pass a scale explicitly.  Minimum supports are expressed as fractions;
the small scales use slightly larger fractions so that absolute support
counts stay meaningful at the reduced transaction counts (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

from repro.data.datasets import (
    Dataset,
    build_dataset,
    dataset_i_config,
    dataset_ii_config,
)
from repro.errors import EvaluationError
from repro.eval.behavior import (
    QuantityBehavior,
    behavior_paper_combined,
    behavior_x2_y30,
    behavior_x3_y40,
)
from repro.eval.harness import (
    PAPER_SYSTEMS,
    SweepResult,
    run_single_support,
    run_support_sweep,
)
from repro.eval.metrics import EvalConfig

__all__ = [
    "ExperimentScale",
    "scale_from_env",
    "jobs_from_env",
    "get_dataset",
    "gain_and_size_sweep",
    "behavior_gain",
    "profit_range_hit_rates",
    "profit_distribution",
    "knn_postprocessing_delta",
    "MOA_SYSTEMS",
]

#: The recommenders that appear in the behavior-model panels (b): all
#: MOA-based systems (the paper plots "all recommenders using MOA").
MOA_SYSTEMS = ("PROF+MOA", "CONF+MOA", "kNN", "MPI")


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime."""

    label: str
    n_transactions: int
    n_items: int
    n_patterns: int
    min_supports: tuple[float, ...]
    spot_support: float  # panels (d): the paper's "minimum support 0.08%"
    k_folds: int = 5
    max_body_size: int = 2
    knn_k: int = 5
    seed: int = 7

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """Smoke-test scale: every experiment in seconds (CI-friendly)."""
        return cls(
            label="tiny",
            n_transactions=800,
            n_items=100,
            n_patterns=80,
            min_supports=(0.01, 0.02),
            spot_support=0.01,
            k_folds=3,
        )

    @classmethod
    def small(cls) -> "ExperimentScale":
        """Laptop scale: full harness in minutes (the benchmark default)."""
        return cls(
            label="small",
            n_transactions=2500,
            n_items=300,
            n_patterns=240,
            min_supports=(0.004, 0.008, 0.016, 0.032),
            spot_support=0.008,
        )

    @classmethod
    def medium(cls) -> "ExperimentScale":
        """Tens of minutes; tighter supports."""
        return cls(
            label="medium",
            n_transactions=10_000,
            n_items=500,
            n_patterns=400,
            min_supports=(0.002, 0.004, 0.008, 0.016),
            spot_support=0.004,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's published parameters (hours in pure Python)."""
        return cls(
            label="paper",
            n_transactions=100_000,
            n_items=1000,
            n_patterns=800,
            min_supports=(0.0008, 0.001, 0.002, 0.005),
            spot_support=0.0008,
        )


def scale_from_env(default: str = "small") -> ExperimentScale:
    """Resolve the scale from ``REPRO_SCALE`` (small / medium / paper)."""
    label = os.environ.get("REPRO_SCALE", default).strip().lower()
    factories = {
        "tiny": ExperimentScale.tiny,
        "small": ExperimentScale.small,
        "medium": ExperimentScale.medium,
        "paper": ExperimentScale.paper,
    }
    try:
        return factories[label]()
    except KeyError:
        raise EvaluationError(
            f"REPRO_SCALE must be one of {sorted(factories)}, got {label!r}"
        ) from None


def jobs_from_env(default: int = 1) -> int:
    """Worker-process count from ``REPRO_JOBS`` (default: sequential).

    Parallelism never changes results (fold cells are gathered in a fixed
    order), so the knob is environmental rather than per-experiment: set
    ``REPRO_JOBS=4`` and every sweep in the process fans out, including the
    benchmark runs.  The CLI's ``--jobs`` flag overrides it per invocation.
    """
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return default
    try:
        n_jobs = int(raw)
    except ValueError:
        raise EvaluationError(
            f"REPRO_JOBS must be a positive integer, got {raw!r}"
        ) from None
    if n_jobs < 1:
        raise EvaluationError(f"REPRO_JOBS must be >= 1, got {n_jobs}")
    return n_jobs


# ----------------------------------------------------------------------
# Caches (benchmarks request several panels of the same sweep)
# ----------------------------------------------------------------------
_DATASETS: dict[tuple[str, str], Dataset] = {}
_SWEEPS: dict[tuple[str, str], SweepResult] = {}


def get_dataset(which: str, scale: ExperimentScale) -> Dataset:
    """Dataset I or II at the given scale (cached per process)."""
    key = (which.upper(), scale.label)
    if key not in _DATASETS:
        config_fn = {"I": dataset_i_config, "II": dataset_ii_config}.get(
            which.upper()
        )
        if config_fn is None:
            raise EvaluationError(f"dataset must be 'I' or 'II', got {which!r}")
        config = config_fn(
            n_transactions=scale.n_transactions,
            n_items=scale.n_items,
            n_patterns=scale.n_patterns,
            seed=scale.seed,
        )
        _DATASETS[key] = build_dataset(config)
    return _DATASETS[key]


def gain_and_size_sweep(
    which: str, scale: ExperimentScale, n_jobs: int | None = None
) -> SweepResult:
    """Panels (a), (c) and (f): one support sweep over all six systems.

    ``n_jobs`` (default: ``REPRO_JOBS`` or sequential) spreads the
    (system, fold) cells over worker processes; the cached result is
    identical either way, so the sweep cache ignores the setting.
    """
    key = (which.upper(), scale.label)
    if key not in _SWEEPS:
        dataset = get_dataset(which, scale)
        _SWEEPS[key] = run_support_sweep(
            dataset,
            scale.min_supports,
            eval_config=EvalConfig(),
            systems=PAPER_SYSTEMS,
            k_folds=scale.k_folds,
            max_body_size=scale.max_body_size,
            knn_k=scale.knn_k,
            seed=scale.seed,
            n_jobs=n_jobs if n_jobs is not None else jobs_from_env(),
        )
    return _SWEEPS[key]


def behavior_gain(
    which: str,
    scale: ExperimentScale,
    behaviors: tuple[QuantityBehavior, ...] | None = None,
    n_jobs: int | None = None,
) -> dict[str, dict[str, float]]:
    """Panels (b): gain of the MOA recommenders under quantity behaviors.

    Returns ``{behavior label: {system: gain}}``, evaluated at the sweep's
    lowest support (where the paper quotes its headline 2.23 gain).
    """
    dataset = get_dataset(which, scale)
    behaviors = behaviors or (
        behavior_x2_y30(),
        behavior_x3_y40(),
        behavior_paper_combined(),
    )
    out: dict[str, dict[str, float]] = {}
    for behavior in behaviors:
        cv_results = run_single_support(
            dataset,
            scale.spot_support,
            eval_config=EvalConfig(behavior=behavior, seed=scale.seed),
            systems=MOA_SYSTEMS,
            k_folds=scale.k_folds,
            max_body_size=scale.max_body_size,
            knn_k=scale.knn_k,
            seed=scale.seed,
            n_jobs=n_jobs if n_jobs is not None else jobs_from_env(),
        )
        out[behavior.label] = {
            system: cv.gain for system, cv in cv_results.items()
        }
    return out


def profit_range_hit_rates(
    which: str, scale: ExperimentScale, n_jobs: int | None = None
) -> dict[str, list[tuple[str, float, int]]]:
    """Panels (d): per-system hit rate in Low/Medium/High profit ranges."""
    dataset = get_dataset(which, scale)
    cv_results = run_single_support(
        dataset,
        scale.spot_support,
        eval_config=EvalConfig(),
        systems=PAPER_SYSTEMS,
        k_folds=scale.k_folds,
        max_body_size=scale.max_body_size,
        knn_k=scale.knn_k,
        seed=scale.seed,
        n_jobs=n_jobs if n_jobs is not None else jobs_from_env(),
    )
    return {
        system: cv.hit_rate_by_profit_range() for system, cv in cv_results.items()
    }


def profit_distribution(which: str, scale: ExperimentScale) -> dict[float, int]:
    """Panels (e): histogram of recorded target-sale profits."""
    return get_dataset(which, scale).target_profit_distribution()


def learning_curve(
    which: str,
    scale: ExperimentScale,
    fractions: tuple[float, ...] = (0.25, 0.5, 1.0),
    systems: tuple[str, ...] = ("PROF+MOA", "kNN"),
) -> dict[float, dict[str, float]]:
    """Gain as a function of training-set size (scalability shape).

    The full dataset's last 20% is held out once; each fraction trains on a
    prefix of the remaining 80%, so curves are comparable point-for-point.
    Returns ``{fraction: {system: gain}}``.
    """
    from repro.eval.harness import eval_config_for_system, paper_recommenders
    from repro.eval.metrics import evaluate

    dataset = get_dataset(which, scale)
    db = dataset.db
    split = int(len(db) * 0.8)
    test = db.subset(range(split, len(db)))
    factories = paper_recommenders(
        dataset.hierarchy,
        scale.spot_support,
        max_body_size=scale.max_body_size,
        knn_k=scale.knn_k,
        systems=systems,
    )
    out: dict[float, dict[str, float]] = {}
    for fraction in sorted(fractions):
        if not 0 < fraction <= 1:
            raise EvaluationError(
                f"fractions must be in (0, 1], got {fraction}"
            )
        train = db.subset(range(int(split * fraction)))
        out[fraction] = {}
        for system, factory in factories.items():
            recommender = factory().fit(train)
            result = evaluate(
                recommender,
                test,
                dataset.hierarchy,
                eval_config_for_system(None, system),
            )
            out[fraction][system] = result.gain
    return out


def knn_postprocessing_delta(
    which: str, scale: ExperimentScale, n_jobs: int | None = None
) -> Mapping[str, float]:
    """Section 5.3's kNN post-processing comparison.

    Returns the gains of plain kNN and the profit post-processing variant;
    the paper reports the variant moving gain by only a few percent (up on
    dataset I, down on dataset II).
    """
    dataset = get_dataset(which, scale)
    cv_results = run_single_support(
        dataset,
        scale.spot_support,
        eval_config=EvalConfig(),
        systems=("kNN", "kNN(profit)"),
        k_folds=scale.k_folds,
        max_body_size=scale.max_body_size,
        knn_k=scale.knn_k,
        seed=scale.seed,
        n_jobs=n_jobs if n_jobs is not None else jobs_from_env(),
    )
    return {system: cv.gain for system, cv in cv_results.items()}
