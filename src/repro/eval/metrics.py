"""Validation metrics: gain, hit rate, per-profit-range hit rate (Section 5.1).

The paper's headline metric is the *gain* of a recommender on held-back
transactions::

    gain = Σ_t p(r, t)  /  Σ_t recorded profit of t

where ``p(r, t)`` is the generated profit of the recommendation rule on
validating transaction ``t`` — the credited profit under the configured MOA
assumption (saving by default, so gain ≤ 1), optionally lifted by a
quantity-increase behavior model.  Hits are judged with MOA: a
recommendation hits when the recommended pair generalizes the recorded
target sale, i.e. same item at an at-least-as-favorable promotion.  (The
−MOA recommenders are built without MOA, but validation reflects customer
behavior, which the paper applies to every system — "we applied MOA to tell
whether a recommendation is a hit" even for kNN.  Set
``moa_hit_test=False`` to require exact promotion matches instead.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.generalized import GSale
from repro.core.hierarchy import ConceptHierarchy
from repro.core.moa import MOAHierarchy
from repro.core.profit import ProfitModel, SavingMOA
from repro.core.recommender import Recommendation, Recommender
from repro.core.sales import TransactionDB
from repro.errors import EvaluationError
from repro.eval.behavior import QuantityBehavior, price_step_gap
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.mpf import MPFRecommender

__all__ = [
    "EvalConfig",
    "TransactionOutcome",
    "EvalResult",
    "NO_OFFER",
    "evaluate",
    "evaluate_top_k",
]

#: Sentinel recommendation recorded when a model offers *nothing* for a
#: basket — possible only on rule lists without a default rule (e.g. a
#: store filtered down to a promo subset).  Scored as a miss with zero
#: credited profit instead of crashing the evaluation.
NO_OFFER = Recommendation(item_id="", promo_code="")


@dataclass(frozen=True)
class EvalConfig:
    """How validation transactions are scored."""

    profit_model: ProfitModel = field(default_factory=SavingMOA)
    behavior: QuantityBehavior | None = None
    moa_hit_test: bool = True
    seed: int = 0


#: Judge hierarchies keyed by (catalog, hierarchy, use_moa) identity.  A
#: sweep evaluates dozens of (system, level, fold) cells over the same few
#: fold catalogs; sharing the judge shares its generalization memos instead
#: of re-deriving them per cell.  Judges are pure apart from those memos,
#: so sharing cannot change any outcome.  Strong references keep the keyed
#: objects alive, which is what makes ``id()`` keys safe: an id cannot be
#: recycled while its entry pins the object.  Bounded by LRU eviction of
#: the single oldest entry (dicts preserve insertion order; a hit
#: re-inserts), so the 17th distinct judge in a long sweep evicts exactly
#: one stale judge instead of flushing all 16 live ones.
_judge_cache: dict[tuple[int, int, bool], MOAHierarchy] = {}
_JUDGE_CACHE_LIMIT = 16

#: Per-validation-db preparation (baskets and recorded target profits),
#: keyed by db identity with the db pinned by the entry.  A sweep scores
#: every (system, level) cell against the same few fold databases, and
#: these inputs depend only on the database — not on the recommender.
#: Databases are treated as immutable after construction (they validate
#: eagerly and expose no mutation API), which is what makes reuse sound.
_eval_prep_cache: dict[int, tuple[TransactionDB, list, list[float]]] = {}
_EVAL_PREP_CACHE_LIMIT = 16


def _eval_prep(
    validation: TransactionDB,
) -> tuple[list, list[float]]:
    """Cached (baskets, recorded target profits) of a validation db."""
    key = id(validation)
    entry = _eval_prep_cache.get(key)
    if entry is not None:
        # LRU: re-insert so the entry moves to the back of the order.
        _eval_prep_cache[key] = _eval_prep_cache.pop(key)
        obs.cache_event(
            "eval.prep_cache", hits=1, entries=len(_eval_prep_cache)
        )
        return entry[1], entry[2]
    if len(_eval_prep_cache) >= _EVAL_PREP_CACHE_LIMIT:
        _eval_prep_cache.pop(next(iter(_eval_prep_cache)))
        obs.cache_event("eval.prep_cache", evictions=1)
    baskets = [t.nontarget_sales for t in validation]
    recorded = [
        t.recorded_target_profit(validation.catalog) for t in validation
    ]
    entry = (validation, baskets, recorded)
    _eval_prep_cache[key] = entry
    obs.cache_event("eval.prep_cache", misses=1, entries=len(_eval_prep_cache))
    return entry[1], entry[2]


def _judge_for(
    validation: TransactionDB, hierarchy: ConceptHierarchy, use_moa: bool
) -> MOAHierarchy:
    """A (cached) MOA judge for scoring hits against ``validation``."""
    key = (id(validation.catalog), id(hierarchy), use_moa)
    judge = _judge_cache.get(key)
    if judge is not None:
        # LRU: re-insert so the entry moves to the back of the order.
        _judge_cache[key] = _judge_cache.pop(key)
        obs.cache_event("eval.judge_cache", hits=1, entries=len(_judge_cache))
        return judge
    if len(_judge_cache) >= _JUDGE_CACHE_LIMIT:
        _judge_cache.pop(next(iter(_judge_cache)))
        obs.cache_event("eval.judge_cache", evictions=1)
    judge = MOAHierarchy(
        catalog=validation.catalog, hierarchy=hierarchy, use_moa=use_moa
    )
    _judge_cache[key] = judge
    obs.cache_event("eval.judge_cache", misses=1, entries=len(_judge_cache))
    return judge


@dataclass(frozen=True)
class TransactionOutcome:
    """Scoring of one validation transaction."""

    tid: int
    recommendation: Recommendation
    hit: bool
    achieved_profit: float
    recorded_profit: float
    quantity_multiplier: float = 1.0


@dataclass
class EvalResult:
    """Aggregated outcomes of one validation pass."""

    recommender_name: str
    outcomes: list[TransactionOutcome]
    model_size: int | None = None

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise EvaluationError("an evaluation needs at least one transaction")

    @property
    def n(self) -> int:
        """Number of validation transactions."""
        return len(self.outcomes)

    @property
    def generated_profit(self) -> float:
        """Numerator of the gain: total achieved profit."""
        return sum(outcome.achieved_profit for outcome in self.outcomes)

    @property
    def recorded_profit(self) -> float:
        """Denominator of the gain: total recorded target-sale profit."""
        return sum(outcome.recorded_profit for outcome in self.outcomes)

    @property
    def gain(self) -> float:
        """The paper's gain ratio (Section 5.1)."""
        recorded = self.recorded_profit
        if recorded == 0:
            raise EvaluationError("recorded profit is zero; gain undefined")
        return self.generated_profit / recorded

    @property
    def hit_rate(self) -> float:
        """Fraction of validation transactions whose recommendation hit."""
        return sum(1 for outcome in self.outcomes if outcome.hit) / self.n

    def hit_rate_by_profit_range(
        self, n_ranges: int = 3
    ) -> list[tuple[str, float, int]]:
        """Hit rate within equal thirds (by default) of the max recorded profit.

        Mirrors Figures 3(d)/4(d): "Low", "Medium" and "High" are the lower,
        middle and higher 1/3 of the maximum profit of a single
        recommendation.  Returns ``(label, hit_rate, n_transactions)`` rows;
        empty ranges report a hit rate of 0.
        """
        if n_ranges < 1:
            raise EvaluationError(f"n_ranges must be >= 1, got {n_ranges}")
        max_profit = max(outcome.recorded_profit for outcome in self.outcomes)
        if max_profit <= 0:
            raise EvaluationError("max recorded profit must be positive")
        labels = (
            ["Low", "Medium", "High"]
            if n_ranges == 3
            else [f"range{i + 1}" for i in range(n_ranges)]
        )
        buckets: list[list[TransactionOutcome]] = [[] for _ in range(n_ranges)]
        for outcome in self.outcomes:
            idx = min(
                int(outcome.recorded_profit / max_profit * n_ranges), n_ranges - 1
            )
            buckets[idx].append(outcome)
        rows: list[tuple[str, float, int]] = []
        for label, bucket in zip(labels, buckets):
            if bucket:
                rate = sum(1 for o in bucket if o.hit) / len(bucket)
            else:
                rate = 0.0
            rows.append((label, rate, len(bucket)))
        return rows


def evaluate(
    recommender: Recommender,
    validation: TransactionDB,
    hierarchy: ConceptHierarchy,
    config: EvalConfig | None = None,
) -> EvalResult:
    """Score a fitted recommender on held-back transactions."""
    with obs.span("eval", system=recommender.name):
        return _evaluate_impl(recommender, validation, hierarchy, config)


def _evaluate_impl(
    recommender: Recommender,
    validation: TransactionDB,
    hierarchy: ConceptHierarchy,
    config: EvalConfig | None,
) -> EvalResult:
    config = config or EvalConfig()
    if len(validation) == 0:
        raise EvaluationError("validation database is empty")
    judge = _judge_for(validation, hierarchy, config.moa_hit_test)
    rng = np.random.default_rng(config.seed)
    outcomes: list[TransactionOutcome] = []
    baskets, recorded_profits = _eval_prep(validation)
    # Batch the recommendations: index-backed recommenders answer repeated
    # baskets from their memo and only touch rules a basket can fire.
    recommendations = recommender.recommend_many(baskets)
    # A cell recommends few distinct pairs across many transactions, so
    # the promo-form heads are interned per call.
    heads: dict[tuple[str, str], GSale] = {}
    for transaction, recommendation, recorded in zip(
        validation, recommendations, recorded_profits
    ):
        pair = (recommendation.item_id, recommendation.promo_code)
        head = heads.get(pair)
        if head is None:
            head = GSale.promo_form(*pair)
            heads[pair] = head
        target = transaction.target_sale
        hit = judge.hits(head, target)
        multiplier = 1.0
        achieved = 0.0
        if hit:
            achieved = config.profit_model.credited_profit(
                head, target, validation.catalog
            )
            if config.behavior is not None and head.node == target.item_id:
                gap = price_step_gap(
                    validation.catalog,
                    target.item_id,
                    target.promo_code,
                    recommendation.promo_code,
                )
                multiplier = config.behavior.multiplier(gap, rng)
                achieved *= multiplier
        outcomes.append(
            TransactionOutcome(
                tid=transaction.tid,
                recommendation=recommendation,
                hit=hit,
                achieved_profit=achieved,
                recorded_profit=recorded,
                quantity_multiplier=multiplier,
            )
        )
    return EvalResult(
        recommender_name=recommender.name,
        outcomes=outcomes,
        model_size=recommender.model_size,
    )


def evaluate_top_k(
    recommender: "MPFRecommender",
    validation: TransactionDB,
    hierarchy: ConceptHierarchy,
    k: int,
    config: EvalConfig | None = None,
    naive: bool = False,
) -> EvalResult:
    """Score k-pair recommendations (paper Section 2's multi-rule variant).

    The recommender offers up to ``k`` distinct (item, promotion) pairs per
    basket — the top-k matching rules by MPF rank, batch-served through
    :meth:`~repro.core.mpf.MPFRecommender.recommend_top_k_many`.  A
    transaction is a hit when any offered pair captures the recorded target
    sale; the credited profit is the best credit among the hitting pairs.
    The recorded-profit denominator is unchanged, so top-k gains are
    directly comparable with single-pair gains (and, because the top-k list
    for a larger ``k`` extends the smaller one, hit rate and credited
    profit are monotone non-decreasing in ``k``).

    A basket the model offers *nothing* for (a rule list without a default
    rule, e.g. a store filtered to a promotion subset) is recorded as a
    miss with the :data:`NO_OFFER` sentinel and zero credited profit.
    ``naive=True`` scores the linear-scan reference path instead of the
    compiled index — the differential suite requires identical outcomes.
    """
    from repro.core.mpf import MPFRecommender  # deferred: avoids a cycle

    if not isinstance(recommender, MPFRecommender):
        raise EvaluationError("top-k evaluation needs an MPFRecommender")
    if k < 1:
        raise EvaluationError(f"k must be at least 1, got {k}")
    config = config or EvalConfig()
    if len(validation) == 0:
        raise EvaluationError("validation database is empty")
    judge = _judge_for(validation, hierarchy, config.moa_hit_test)
    outcomes: list[TransactionOutcome] = []
    baskets = [t.nontarget_sales for t in validation]
    offer_lists = recommender.recommend_top_k_many(baskets, k, naive=naive)
    for transaction, offers in zip(validation, offer_lists):
        target = transaction.target_sale
        best_offer = offers[0] if offers else NO_OFFER
        best_credit = 0.0
        hit = False
        for offer in offers:
            head = GSale.promo_form(offer.item_id, offer.promo_code)
            if not judge.hits(head, target):
                continue
            credit = config.profit_model.credited_profit(
                head, target, validation.catalog
            )
            if not hit or credit > best_credit:
                hit = True
                best_credit = credit
                best_offer = offer
        outcomes.append(
            TransactionOutcome(
                tid=transaction.tid,
                recommendation=best_offer,
                hit=hit,
                achieved_profit=best_credit,
                recorded_profit=transaction.recorded_target_profit(
                    validation.catalog
                ),
            )
        )
    return EvalResult(
        recommender_name=f"{recommender.name} (top-{k})",
        outcomes=outcomes,
        model_size=recommender.model_size,
    )
