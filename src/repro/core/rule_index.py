"""Indexed rule matching: the serving hot path of the MPF recommender.

The original serving path (kept as the ``naive=True`` reference in
:class:`~repro.core.mpf.MPFRecommender`) re-derives the basket's full
generalization set on every call and linearly scans *every* ranked rule —
``O(|basket gsales| + |R| · |body|)`` per recommendation.  Serving instead
routes through a :class:`~repro.core.engine.compiled.CompiledModel`: each
body is a tuple of shared :class:`~repro.core.engine.symbols.SymbolTable`
ids, an inverted index maps each symbol to the rank-ascending rules whose
body contains it, and matching counts remaining body members per candidate
rule with an early cut-off at the best full match found — proportional to
how much of the rule set the basket can possibly fire, not to the rule
set's size.

:class:`RuleMatchIndex` is the thin serving facade over that compiled
form.  It no longer interns anything itself: the symbol table is the one
shared with mining and covering (one interning implementation for the
whole pipeline), and a recommender restored from a format-v2 artifact
hands over its persisted :class:`CompiledModel` so no interning happens
on the load path at all.  The index is exact: differential property tests
(``tests/property/test_rule_index_differential.py`` and
``tests/property/test_compiled_differential.py``) require the same
:class:`~repro.core.rules.ScoredRule` objects as the naive scan for
random rule sets and baskets.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.engine.compiled import CompiledModel
from repro.core.engine.symbols import SymbolTable
from repro.core.moa import MOAHierarchy
from repro.core.rules import ScoredRule
from repro.core.sales import Sale
from repro.obs import trace as obs

__all__ = ["RuleMatchIndex", "basket_key"]


def basket_key(basket: Sequence[Sale]) -> frozenset[tuple[str, str]]:
    """Memoization key of a basket: its set of ``(item, promotion)`` pairs.

    Quantities never enter rule matching (a sale's generalizations depend
    only on its item and promotion code), so baskets differing only in
    quantities or in sale order share a key — and a memoized result.
    """
    return frozenset((sale.item_id, sale.promo_code) for sale in basket)


class RuleMatchIndex:
    """Serving facade over the compiled form of a ranked rule list.

    Parameters
    ----------
    ranked_rules:
        The rule list in MPF rank order (ascending = higher rank).  The
        index answers queries in terms of positions in this list, so the
        caller must pass it already sorted — :class:`MPFRecommender` hands
        over its ``ranked_rules``.
    moa:
        The generalization engine the rules were mined against; its
        canonical :class:`SymbolTable` supplies the interning and the
        per-sale expansion cache.
    compiled:
        An already-compiled model (e.g. carried out of the fit pipeline or
        restored from a v2 artifact); when given, ``ranked_rules`` is
        ignored and nothing is re-interned.
    """

    def __init__(
        self,
        ranked_rules: Sequence[ScoredRule],
        moa: MOAHierarchy,
        compiled: CompiledModel | None = None,
    ) -> None:
        self.moa = moa
        if compiled is None:
            compiled = CompiledModel.compile(ranked_rules, SymbolTable.of(moa))
        self.compiled = compiled

    @property
    def rules(self) -> list[ScoredRule]:
        """The compiled rule list in rank order (position = rank)."""
        return self.compiled.ranked_rules

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rules(self) -> int:
        """Number of indexed rules (including always-matching ones)."""
        return self.compiled.n_rules

    @property
    def n_indexed_gsales(self) -> int:
        """Number of distinct generalized sales across all rule bodies."""
        return self.compiled.n_indexed_gsales

    @property
    def n_postings(self) -> int:
        """Total inverted-index size: Σ over gsales of |rules containing it|."""
        return self.compiled.n_postings

    def stats(self) -> dict[str, object]:
        """JSON-ready size summary (served verbatim by the daemon's API).

        Well-formed on *any* model, including a zero-rule one: every
        derived ratio is zero-guarded and every key is always present, so
        a daemon's ``/stats`` on a degenerate model serves zeroes rather
        than a division error or a missing field.
        """
        compiled = self.compiled
        n_rules = self.n_rules
        n_indexed_gsales = self.n_indexed_gsales
        n_postings = self.n_postings
        store = compiled.rule_store
        return {
            "n_rules": n_rules,
            "n_indexed_gsales": n_indexed_gsales,
            "n_postings": n_postings,
            "n_default_rules": len(compiled.always_match),
            "avg_body_size": (
                sum(compiled.body_sizes) / n_rules if n_rules else 0.0
            ),
            "avg_postings_per_gsale": (
                n_postings / n_indexed_gsales if n_indexed_gsales else 0.0
            ),
            "shapes": store.shape_counts(),
            "store_bytes": store.store_bytes(),
        }

    # ------------------------------------------------------------------
    # Matching (delegated to the compiled model)
    # ------------------------------------------------------------------
    def candidate_ids(self, basket: Sequence[Sale]) -> list[int]:
        """Symbol ids of the basket's generalizations seen in rule bodies."""
        return self.compiled.candidate_ids(basket)

    def first_match(self, basket: Sequence[Sale]) -> ScoredRule | None:
        """The highest-ranked rule matching ``basket`` (Definition 6).

        Returns ``None`` only when the rule list has no always-matching
        (empty-body) rule and nothing else matches.
        """
        trace = obs.current_trace()
        if trace is not None:
            self._record_match_telemetry(trace, basket)
        return self.compiled.first_match(basket)

    def matching_indices(self, basket: Sequence[Sale]) -> list[int]:
        """Rank positions of every rule matching ``basket``, ascending."""
        return self.compiled.matching_indices(basket)

    def all_matches(self, basket: Sequence[Sale]) -> list[ScoredRule]:
        """Every matching rule in rank order — the naive filter, indexed."""
        trace = obs.current_trace()
        if trace is not None:
            self._record_match_telemetry(trace, basket)
        return self.compiled.all_matches(basket)

    # ------------------------------------------------------------------
    # Telemetry (tracing only — never touched on the cold path)
    # ------------------------------------------------------------------
    def _record_match_telemetry(
        self, trace: "obs.Trace", basket: Sequence[Sale]
    ) -> None:
        """Record serving counters observationally, without touching the
        matching loops: per-sale memo hits/misses (the compiled model's
        ``_sale_ids`` filter) and the postings-list footprint the basket's
        candidates expose — an upper bound on what ``first_match`` scans,
        since its rank cut-off can stop earlier."""
        compiled = self.compiled
        sale_memo = compiled._sale_ids
        known = sum(
            1
            for sale in basket
            if (sale.item_id, sale.promo_code) in sale_memo
        )
        candidates = compiled.candidate_ids(basket)
        postings = compiled.postings
        trace.count("serve.match_calls", 1)
        trace.count("serve.candidate_gsales", len(candidates))
        trace.count(
            "serve.postings_scanned",
            sum(len(postings[gid]) for gid in candidates),
        )
        trace.cache_event(
            "serve.sale_memo",
            hits=known,
            misses=len(basket) - known,
            entries=len(sale_memo),
        )
