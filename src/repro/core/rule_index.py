"""Indexed rule matching: the serving hot path of the MPF recommender.

The original serving path (kept as the ``naive=True`` reference in
:class:`~repro.core.mpf.MPFRecommender`) re-derives the basket's full
generalization set on every call and linearly scans *every* ranked rule —
``O(|basket gsales| + |R| · |body|)`` per recommendation, the same
quadratic shape rule *mining* already eliminated with interned gsale ids
and bitmasks (:mod:`repro.core.mining`).  Recommendation latency is the
hot path of every cross-validation fold and every figure benchmark, so
serving gets the same treatment:

* each ranked rule's body is interned once into dense gsale ids;
* an **inverted index** maps each gsale id to the (rank-ascending) list of
  rules whose body contains it;
* a **per-sale cache** maps ``(item, promotion)`` to the interned ids of
  the sale's generalizations that occur in *any* rule body — in practice a
  tiny subset of the ~20 generalized sales a basket expands to, so basket
  preparation is a few small dict lookups instead of a frozenset union of
  :class:`~repro.core.generalized.GSale` objects;
* matching counts remaining body members per candidate rule, touching only
  rules that share at least one generalized sale with the basket, with an
  early cut-off at the best full match found so far.

Matching one basket is therefore ``O(Σ_{g ∈ basket ids} |postings(g)|)``
— proportional to how much of the rule set the basket can possibly fire,
not to the rule set's size.  The index is exact: differential property
tests (``tests/property/test_rule_index_differential.py``) require the
same :class:`~repro.core.rules.ScoredRule` objects as the naive scan for
random rule sets and baskets.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.generalized import GSale
from repro.core.moa import MOAHierarchy
from repro.core.rules import ScoredRule
from repro.core.sales import Sale

__all__ = ["RuleMatchIndex", "basket_key"]


def basket_key(basket: Sequence[Sale]) -> frozenset[tuple[str, str]]:
    """Memoization key of a basket: its set of ``(item, promotion)`` pairs.

    Quantities never enter rule matching (a sale's generalizations depend
    only on its item and promotion code), so baskets differing only in
    quantities or in sale order share a key — and a memoized result.
    """
    return frozenset((sale.item_id, sale.promo_code) for sale in basket)


class RuleMatchIndex:
    """Inverted index over the bodies of a ranked rule list.

    Parameters
    ----------
    ranked_rules:
        The rule list in MPF rank order (ascending = higher rank).  The
        index answers queries in terms of positions in this list, so the
        caller must pass it already sorted — :class:`MPFRecommender` hands
        over its ``ranked_rules``.
    moa:
        The generalization engine the rules were mined against; used once
        per distinct ``(item, promotion)`` pair to expand a sale, after
        which the expansion is served from the per-sale cache.
    """

    def __init__(
        self, ranked_rules: Sequence[ScoredRule], moa: MOAHierarchy
    ) -> None:
        self.moa = moa
        self.rules: list[ScoredRule] = list(ranked_rules)
        self._body_sizes: list[int] = []
        self._gsale_ids: dict[GSale, int] = {}
        self._postings: list[list[int]] = []
        self._always_match: list[int] = []
        for idx, scored in enumerate(self.rules):
            body = scored.rule.body
            self._body_sizes.append(len(body))
            if not body:
                self._always_match.append(idx)
                continue
            for gsale in body:
                gid = self._gsale_ids.setdefault(gsale, len(self._postings))
                if gid == len(self._postings):
                    self._postings.append([])
                self._postings[gid].append(idx)
        self._sale_ids: dict[tuple[str, str], tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rules(self) -> int:
        """Number of indexed rules (including always-matching ones)."""
        return len(self.rules)

    @property
    def n_indexed_gsales(self) -> int:
        """Number of distinct generalized sales across all rule bodies."""
        return len(self._postings)

    @property
    def n_postings(self) -> int:
        """Total inverted-index size: Σ over gsales of |rules containing it|."""
        return sum(len(p) for p in self._postings)

    # ------------------------------------------------------------------
    # Basket preparation
    # ------------------------------------------------------------------
    def _expand_sale(self, key: tuple[str, str], sale: Sale) -> tuple[int, ...]:
        """Cache miss: intern the sale's generalizations that rules mention.

        The ids keep the (deterministic) expansion order: matching counts
        per-rule occurrences, so candidate order never affects which rule
        wins, and sorting here would be pure overhead.
        """
        gsale_ids = self._gsale_ids
        get = gsale_ids.get
        ids = tuple(
            gid
            for g in self.moa.generalizations_of_sale(sale)
            if (gid := get(g)) is not None
        )
        self._sale_ids[key] = ids
        return ids

    def candidate_ids(self, basket: Sequence[Sale]) -> list[int]:
        """Interned ids of the basket's generalizations seen in rule bodies.

        Deduplicated (a generalized sale reachable from two sales counts
        once) but unordered.  Generalized sales that occur in no rule body
        are dropped — they cannot influence matching.
        """
        sale_ids = self._sale_ids
        gathered: list[int] = []
        for sale in basket:
            key = (sale.item_id, sale.promo_code)
            ids = sale_ids.get(key)
            if ids is None:
                ids = self._expand_sale(key, sale)
            gathered.extend(ids)
        if len(gathered) > 1:
            return list(set(gathered))
        return gathered

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def first_match(self, basket: Sequence[Sale]) -> ScoredRule | None:
        """The highest-ranked rule matching ``basket`` (Definition 6).

        Returns ``None`` only when the rule list has no always-matching
        (empty-body) rule and nothing else matches.
        """
        postings = self._postings
        sizes = self._body_sizes
        always = self._always_match
        best = always[0] if always else len(self.rules)
        counts: dict[int, int] = {}
        for gid in self.candidate_ids(basket):
            for ridx in postings[gid]:
                if ridx >= best:
                    # Postings are rank-ascending: nothing further in this
                    # list can beat the best full match found so far.
                    break
                count = counts.get(ridx, 0) + 1
                counts[ridx] = count
                if count == sizes[ridx]:
                    best = ridx
        if best == len(self.rules):
            return None
        return self.rules[best]

    def matching_indices(self, basket: Sequence[Sale]) -> list[int]:
        """Rank positions of every rule matching ``basket``, ascending."""
        postings = self._postings
        sizes = self._body_sizes
        counts: dict[int, int] = {}
        matched = list(self._always_match)
        for gid in self.candidate_ids(basket):
            for ridx in postings[gid]:
                count = counts.get(ridx, 0) + 1
                counts[ridx] = count
                if count == sizes[ridx]:
                    matched.append(ridx)
        matched.sort()
        return matched

    def all_matches(self, basket: Sequence[Sale]) -> list[ScoredRule]:
        """Every matching rule in rank order — the naive filter, indexed."""
        rules = self.rules
        return [rules[i] for i in self.matching_indices(basket)]
