"""Reference rule miner: obviously correct, deliberately slow.

This module re-implements Section 3.1's rule generation by exhaustive
enumeration — every ancestor-free combination of generalized sales is
checked against every transaction with no indexing, no bitmasks and no
Apriori pruning.  It exists to *audit* the fast miner
(:mod:`repro.core.mining`): the property suite mines random databases with
both implementations and requires identical rule sets and statistics.

Never use this on real data; complexity is
``O(|G|^max_body_size × |D|)`` where ``G`` is the set of distinct
generalized sales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

from repro.core.generalized import GKind, GSale
from repro.core.mining import MinerConfig
from repro.core.moa import MOAHierarchy
from repro.core.profit import ProfitModel
from repro.core.sales import TransactionDB
from repro.errors import MiningError

__all__ = ["ReferenceRule", "mine_rules_reference"]


@dataclass(frozen=True)
class ReferenceRule:
    """One rule with its worth, in an implementation-neutral form."""

    body: frozenset[GSale]
    head: GSale
    n_matched: int
    n_hits: int
    rule_profit: float


def mine_rules_reference(
    db: TransactionDB,
    moa: MOAHierarchy,
    profit_model: ProfitModel,
    config: MinerConfig,
) -> set[ReferenceRule]:
    """Exhaustively enumerate the rule set ``R`` (minus the default rule).

    Returns every (ancestor-free body, head) pair satisfying the support,
    confidence and rule-profit thresholds, with exact statistics.
    """
    if len(db) == 0:
        raise MiningError("cannot mine an empty transaction database")
    minsup_count = max(1, math.ceil(config.min_support * len(db)))

    extended = [
        moa.generalizations_of_basket(t.nontarget_sales) for t in db
    ]
    heads_per_transaction = [
        moa.target_heads_of_sale(t.target_sale) for t in db
    ]

    candidate_gsales = sorted(
        {g for ext in extended for g in ext}, key=GSale.sort_key
    )
    candidate_heads = sorted(moa.all_candidate_heads(), key=GSale.sort_key)

    rules: set[ReferenceRule] = set()
    for size in range(1, config.max_body_size + 1):
        for body_tuple in combinations(candidate_gsales, size):
            body = frozenset(body_tuple)
            if not moa.is_ancestor_free(body):
                continue
            matched = [
                pos for pos, ext in enumerate(extended) if body <= ext
            ]
            if len(matched) < minsup_count:
                continue
            blocked_items = {
                g.node for g in body if g.kind is GKind.PROMO
            }
            for head in candidate_heads:
                if head.node in blocked_items:
                    # Mirrors the fast miner: a head for an item the body
                    # mentions in promo form violates the Rule invariant.
                    continue
                hits = [
                    pos for pos in matched if head in heads_per_transaction[pos]
                ]
                if len(hits) < minsup_count:
                    continue
                confidence = len(hits) / len(matched)
                if confidence < config.min_confidence:
                    continue
                rule_profit = sum(
                    profit_model.credited_profit(
                        head, db[pos].target_sale, db.catalog
                    )
                    for pos in hits
                )
                if rule_profit < config.min_rule_profit:
                    continue
                rules.add(
                    ReferenceRule(
                        body=body,
                        head=head,
                        n_matched=len(matched),
                        n_hits=len(hits),
                        rule_profit=round(rule_profit, 9),
                    )
                )
    return rules
