"""Concept hierarchies over items (paper Section 2).

A concept hierarchy ``H`` is a rooted directed acyclic graph whose leaves are
items and whose internal nodes are concepts (categories).  The root is the
special concept ``ANY``.  Following the paper:

* non-target items may sit anywhere below concepts — generalizing a sale to
  a concept lets the miner find the best category triggering a
  recommendation;
* target items are *immediate children of the root* — it makes no sense to
  recommend "Appliance for $100", so target items never generalize to
  concepts.

The class stores parent links, validates acyclicity and reachability, and
memoizes ancestor sets because the miner asks for them for every sale of
every transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.items import ItemCatalog
from repro.errors import HierarchyError

__all__ = ["ROOT_CONCEPT", "ConceptHierarchy", "to_dot"]

ROOT_CONCEPT = "ANY"


@dataclass
class ConceptHierarchy:
    """Rooted DAG of concepts with items as leaves.

    Parameters
    ----------
    parents:
        Mapping from node name to the tuple of its parent node names.  The
        root ``ANY`` must not appear as a key; every chain of parents must
        reach ``ANY``.  Nodes that appear only as parents are concepts.
    items:
        The set of node names that are items (leaves).  Items must not be
        parents of anything.
    """

    parents: dict[str, tuple[str, ...]] = field(default_factory=dict)
    items: set[str] = field(default_factory=set)
    _ancestor_cache: dict[str, frozenset[str]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def flat(cls, item_ids: Iterable[str]) -> "ConceptHierarchy":
        """A trivial hierarchy: every item is a direct child of ``ANY``."""
        ids = list(item_ids)
        return cls(
            parents={item: (ROOT_CONCEPT,) for item in ids},
            items=set(ids),
        )

    @classmethod
    def from_groups(
        cls, groups: Mapping[str, Sequence[str]], items: Iterable[str]
    ) -> "ConceptHierarchy":
        """Build from a mapping of parent → children.

        ``groups[ANY]`` lists the top-level concepts/items; any node not
        mentioned as a child of anything is attached to ``ANY``.
        """
        item_set = set(items)
        parents: dict[str, list[str]] = {}
        for parent, children in groups.items():
            for child in children:
                parents.setdefault(child, []).append(parent)
        mentioned = set(parents)
        all_nodes = set(groups) | mentioned | item_set
        all_nodes.discard(ROOT_CONCEPT)
        for node in sorted(all_nodes - mentioned):
            parents[node] = [ROOT_CONCEPT]
        return cls(
            parents={node: tuple(ps) for node, ps in parents.items()},
            items=item_set,
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if ROOT_CONCEPT in self.parents:
            raise HierarchyError(f"root {ROOT_CONCEPT!r} cannot have parents")
        known = set(self.parents) | {ROOT_CONCEPT}
        for node, node_parents in self.parents.items():
            if not node_parents:
                raise HierarchyError(f"node {node!r} has an empty parent tuple")
            for parent in node_parents:
                if parent in self.items:
                    raise HierarchyError(
                        f"item {parent!r} cannot be a parent (of {node!r})"
                    )
                if parent != ROOT_CONCEPT and parent not in known:
                    raise HierarchyError(
                        f"node {node!r} references unknown parent {parent!r}"
                    )
        for item in self.items:
            if item not in self.parents:
                raise HierarchyError(f"item {item!r} is not attached to the hierarchy")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[str, int] = {}

        def visit(node: str) -> None:
            state = color.get(node, WHITE)
            if state == BLACK or node == ROOT_CONCEPT:
                return
            if state == GRAY:
                raise HierarchyError(f"hierarchy contains a cycle through {node!r}")
            color[node] = GRAY
            for parent in self.parents.get(node, ()):
                visit(parent)
            color[node] = BLACK

        for node in self.parents:
            visit(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def concepts(self) -> set[str]:
        """All non-item, non-root nodes."""
        nodes = set(self.parents)
        for node_parents in self.parents.values():
            nodes.update(node_parents)
        nodes.discard(ROOT_CONCEPT)
        return nodes - self.items

    def is_item(self, node: str) -> bool:
        """Whether ``node`` is a leaf item."""
        return node in self.items

    def parents_of(self, node: str) -> tuple[str, ...]:
        """Direct parents of ``node`` (the root has none)."""
        if node == ROOT_CONCEPT:
            return ()
        try:
            return self.parents[node]
        except KeyError:
            raise HierarchyError(f"unknown node {node!r}") from None

    def children_of(self, node: str) -> list[str]:
        """Direct children of ``node``, in insertion order."""
        return [
            child
            for child, node_parents in self.parents.items()
            if node in node_parents
        ]

    def ancestors_of(self, node: str, include_root: bool = False) -> frozenset[str]:
        """All proper ancestors of ``node``.

        The root ``ANY`` is excluded by default because generalizing to ANY
        carries no information (every transaction matches it); Srikant &
        Agrawal's generalized-rule mining makes the same exclusion.
        """
        cached = self._ancestor_cache.get(node)
        if cached is None:
            found: set[str] = set()
            stack = list(self.parents_of(node))
            while stack:
                current = stack.pop()
                if current in found:
                    continue
                found.add(current)
                if current != ROOT_CONCEPT:
                    stack.extend(self.parents_of(current))
            cached = frozenset(found)
            self._ancestor_cache[node] = cached
        if include_root:
            return cached | {ROOT_CONCEPT}
        return cached - {ROOT_CONCEPT}

    def is_ancestor(self, ancestor: str, node: str) -> bool:
        """Whether ``ancestor`` is a proper ancestor of ``node`` (ANY counts)."""
        if ancestor == ROOT_CONCEPT:
            return node != ROOT_CONCEPT
        return ancestor in self.ancestors_of(node, include_root=False)

    def depth_of(self, node: str) -> int:
        """Length of the longest path from the root to ``node``."""
        if node == ROOT_CONCEPT:
            return 0
        return 1 + max(self.depth_of(parent) for parent in self.parents_of(node))

    def validate_against_catalog(self, catalog: ItemCatalog) -> None:
        """Check the hierarchy covers the catalog per the paper's conventions.

        Every non-target item must be a leaf; every target item must be a
        direct child of the root (targets never generalize to concepts).
        """
        for item in catalog.nontarget_items:
            if item.item_id not in self.items:
                raise HierarchyError(
                    f"non-target item {item.item_id!r} missing from hierarchy"
                )
        for item in catalog.target_items:
            if item.item_id not in self.items:
                raise HierarchyError(
                    f"target item {item.item_id!r} missing from hierarchy"
                )
            if self.parents_of(item.item_id) != (ROOT_CONCEPT,):
                raise HierarchyError(
                    f"target item {item.item_id!r} must be a direct child of "
                    f"{ROOT_CONCEPT!r}"
                )

    @classmethod
    def for_catalog(
        cls,
        catalog: ItemCatalog,
        nontarget_groups: Mapping[str, Sequence[str]] | None = None,
    ) -> "ConceptHierarchy":
        """Hierarchy with targets under the root and optional concept groups.

        ``nontarget_groups`` maps concept names to child node names (concepts
        or non-target item ids); omitted non-target items attach to the root.
        """
        groups = dict(nontarget_groups or {})
        hierarchy = cls.from_groups(
            groups,
            items=[item.item_id for item in catalog],
        )
        hierarchy.validate_against_catalog(catalog)
        return hierarchy


def to_dot(hierarchy: ConceptHierarchy, name: str = "H") -> str:
    """Render a hierarchy as Graphviz DOT (for reports and debugging).

    Items are boxes, concepts ellipses, the root a double circle; edges
    point from parent to child.
    """
    lines = [f"digraph {name} {{", '  rankdir="TB";']
    lines.append(f'  "{ROOT_CONCEPT}" [shape=doublecircle];')
    for concept in sorted(hierarchy.concepts):
        lines.append(f'  "{concept}" [shape=ellipse];')
    for item in sorted(hierarchy.items):
        lines.append(f'  "{item}" [shape=box];')
    for node in sorted(hierarchy.parents):
        for parent in hierarchy.parents_of(node):
            lines.append(f'  "{parent}" -> "{node}";')
    lines.append("}")
    return "\n".join(lines)
