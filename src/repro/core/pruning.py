"""Cut-optimal pruning of the covering tree (Section 4.2).

Each rule ``r`` carries a *projected profit*

    ``Prof_pr(r) = X · Y``,
    ``X = N · (1 − U_CF(N, E))``  (pessimistic hit count over ``Cover(r)``),
    ``Y = Σ_{t ∈ Cover(r)} p(r, t) / #hits``  (observed profit per hit),

where ``N = |Cover(r)|`` and ``E`` is the number of covered transactions the
head misses.  The bottom-up traversal compares, at each internal node,

* ``Tree_Prof(r)`` — projected profit of the (already-pruned) subtree at
  ``r``: ``Prof_pr(r)`` plus the children's surviving profits, and
* ``Leaf_Prof(r)`` — ``Prof_pr`` of ``r`` recomputed as if it covered every
  transaction in its subtree,

and prunes the subtree when the leaf is at least as profitable.  Pruning on
ties keeps the optimal cut as small as possible (Definition 9).  Note the
direction: the paper's prose reads "if Leaf_Prof(r) ≤ Tree_Prof(r), we
prune", which would discard profit; we prune on ``Leaf ≥ Tree``, the
direction consistent with C4.5's pessimistic pruning that the paper cites
(see DESIGN.md).

Because a pruned subtree's transactions transfer to the pruned node itself
(Definition 8) and ``Leaf_Prof`` depends only on the subtree's coverage
*union* — invariant under pruning below — decisions at different nodes do
not interact, which is the independence Theorem 2's proof relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.covering import CoveringTree
from repro.core.mining import TransactionIndex
from repro.core.pessimistic import DEFAULT_CF, pessimistic_hits
from repro.core.rules import ScoredRule
from repro.errors import ValidationError
from repro.obs import trace as obs

__all__ = ["PruneConfig", "PruneReport", "projected_profit", "cut_optimal_prune"]


@dataclass(frozen=True)
class PruneConfig:
    """Parameters of the cut-optimal phase.

    ``cf`` is the pessimistic confidence level (C4.5 default 0.25); smaller
    values prune more aggressively.  Setting ``enabled=False`` skips pruning
    entirely, which exposes the unpruned MPF recommender for ablations.
    """

    cf: float = DEFAULT_CF
    enabled: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.cf < 1:
            raise ValidationError(f"cf must be in (0, 1), got {self.cf}")


@dataclass
class PruneReport:
    """What the pruning pass did, for logging and the experiments."""

    n_rules_before: int
    n_rules_after: int
    n_subtrees_pruned: int
    tree_profit_before: float
    tree_profit_after: float
    kept_rules: list[ScoredRule] = field(default_factory=list)


def projected_profit(
    node_head_id: int,
    cover_mask: int,
    index: TransactionIndex,
    cf: float,
) -> float:
    """``Prof_pr`` of a rule with head ``node_head_id`` over ``cover_mask``."""
    n = cover_mask.bit_count()
    if n == 0:
        return 0.0
    # ``mask_positions`` is vectorized once the index's dense kernel
    # exists and matches ``iter_bits``'s ascending order exactly, so the
    # sequential profit accumulation below is the same float either way.
    positions = index.mask_positions(
        cover_mask & index.head_hits_mask(node_head_id)
    )
    hits = len(positions)
    total_profit = 0.0
    for pos in positions:
        total_profit += index.hit_profit(pos, node_head_id)
    if hits == 0:
        return 0.0
    avg_profit_per_hit = total_profit / hits
    return pessimistic_hits(n, hits, cf) * avg_profit_per_hit


def cut_optimal_prune(tree: CoveringTree, config: PruneConfig) -> PruneReport:
    """Prune ``tree`` in place to the cut-optimal recommender (Theorem 2).

    Returns a report with the surviving rules in rank order (the tree's
    nodes are mutated: pruned nodes disappear and their coverage merges into
    the ancestor that absorbed them).
    """
    with obs.span("prune"):
        return _cut_optimal_prune_impl(tree, config)


def _cut_optimal_prune_impl(
    tree: CoveringTree, config: PruneConfig
) -> PruneReport:
    index = tree.index
    head_ids = {
        node.scored.rule.order: index.gsale_id(node.scored.rule.head)
        for node in tree.root.subtree()
    }
    n_before = len(tree)

    # ``Prof_pr`` is a pure function of (head, coverage mask, cf), and the
    # postorder walk re-evaluates each node once per ancestor, so memoizing
    # turns the O(n·depth) recomputation into O(distinct).  The memo lives
    # on the index: support-sweep levels pruned over the same fold repeat
    # most (head, coverage) pairs, and the index is model-bound, so shared
    # entries are exact.
    memo = index.projected_profit_cache
    cf = config.cf
    memo_hits = 0
    memo_misses = 0

    def prof(head_id: int, cover_mask: int) -> float:
        nonlocal memo_hits, memo_misses
        key = (cf, head_id, cover_mask)
        value = memo.get(key)
        if value is None:
            memo_misses += 1
            value = projected_profit(head_id, cover_mask, index, cf)
            memo[key] = value
        else:
            memo_hits += 1
        return value

    profit_before = _total_projected_profit(tree, head_ids, config.cf, prof)

    pruned_subtrees = 0
    if config.enabled:
        # Postorder: children are final (already pruned) when visited.
        for node in list(tree.postorder()):
            if not node.children:
                continue
            subtree_cover = 0
            tree_prof = 0.0
            for member in node.subtree():
                subtree_cover |= member.cover_mask
                tree_prof += prof(
                    head_ids[member.scored.rule.order], member.cover_mask
                )
            leaf_prof = prof(
                head_ids[node.scored.rule.order], subtree_cover
            )
            if leaf_prof >= tree_prof:
                node.cover_mask = subtree_cover
                node.children = []
                pruned_subtrees += 1

    kept_nodes = sorted(tree.root.subtree(), key=lambda n: n.scored.rank_key())
    report = PruneReport(
        n_rules_before=n_before,
        n_rules_after=len(kept_nodes),
        n_subtrees_pruned=pruned_subtrees,
        tree_profit_before=profit_before,
        tree_profit_after=_total_projected_profit(tree, head_ids, config.cf, prof),
        kept_rules=[node.scored for node in kept_nodes],
    )
    trace = obs.current_trace()
    if trace is not None:
        trace.count("prune.rules_before", n_before)
        trace.count("prune.rules_after", len(kept_nodes))
        trace.count("prune.subtrees_pruned", pruned_subtrees)
        trace.cache_event(
            "pruning.projected_profit",
            hits=memo_hits,
            misses=memo_misses,
            entries=len(memo),
        )
    return report


def _total_projected_profit(
    tree: CoveringTree,
    head_ids: dict[int, int],
    cf: float,
    prof: Callable[[int, int], float] | None = None,
) -> float:
    """Projected profit of the whole recommender (sum over its rules)."""
    if prof is None:
        prof = lambda head_id, mask: projected_profit(  # noqa: E731
            head_id, mask, tree.index, cf
        )
    return sum(
        prof(head_ids[node.scored.rule.order], node.cover_mask)
        for node in tree.root.subtree()
    )
