"""Items and the item catalog.

Profit mining distinguishes *target items* (the items whose sales we want to
promote; each carries promotion codes and is recommended together with one)
from *non-target items* (everything else a customer may buy; their sales form
rule bodies).  The :class:`ItemCatalog` is the single registry both the data
generators and the recommenders share: it resolves item ids to
:class:`Item` objects and promotion-code ids to
:class:`~repro.core.promotion.PromotionCode` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.promotion import PromotionCode, sort_by_favorability
from repro.errors import CatalogError, ValidationError

__all__ = ["Item", "ItemCatalog"]


@dataclass(frozen=True, slots=True)
class Item:
    """An item together with its promotion codes.

    Parameters
    ----------
    item_id:
        Globally unique identifier.
    promotions:
        The item's promotion codes; ids must be unique within the item.
        Descriptive items (e.g. ``Gender=Male``) may have none — the paper
        models those with price 1, cost 0 and the notion of profit collapsing
        to support; helpers below expose that convention.
    is_target:
        Whether the item is a recommendation target.  Target items must carry
        at least one promotion code (the paper assumes every target item has
        a natural notion of promotion code).
    """

    item_id: str
    promotions: tuple[PromotionCode, ...] = ()
    is_target: bool = False

    def __post_init__(self) -> None:
        if not self.item_id:
            raise ValidationError("item_id must be non-empty")
        seen: set[str] = set()
        for promo in self.promotions:
            if promo.code in seen:
                raise ValidationError(
                    f"item {self.item_id!r}: duplicate promotion code {promo.code!r}"
                )
            seen.add(promo.code)
        if self.is_target and not self.promotions:
            raise ValidationError(
                f"target item {self.item_id!r} must have at least one promotion code"
            )

    def promotion(self, code: str) -> PromotionCode:
        """Look up one of this item's promotion codes by id."""
        for promo in self.promotions:
            if promo.code == code:
                return promo
        raise CatalogError(
            f"item {self.item_id!r} has no promotion code {code!r}"
        )

    def has_promotion(self, code: str) -> bool:
        """Whether ``code`` is one of this item's promotion code ids."""
        return any(promo.code == code for promo in self.promotions)

    def promotions_by_favorability(self) -> list[PromotionCode]:
        """This item's codes ordered from most to least favorable."""
        return sort_by_favorability(self.promotions)

    @staticmethod
    def descriptive(item_id: str) -> "Item":
        """A non-target item with the descriptive-item convention applied.

        The paper sets ``Price(P) = 1``, ``Cost(P) = 0`` and quantity 1 for
        items like ``Gender=Male`` so that profit degenerates to support.
        """
        return Item(
            item_id=item_id,
            promotions=(PromotionCode(code="unit", price=1.0, cost=0.0),),
            is_target=False,
        )


@dataclass
class ItemCatalog:
    """Registry of all items participating in a profit-mining problem.

    The catalog validates that ids are unique and exposes the target /
    non-target split every other component relies on.  It is mutable during
    construction (items can be added) but items themselves are immutable.
    """

    _items: dict[str, Item] = field(default_factory=dict)

    @classmethod
    def from_items(cls, items: Iterable[Item]) -> "ItemCatalog":
        """Build a catalog from an iterable of items."""
        catalog = cls()
        for item in items:
            catalog.add(item)
        return catalog

    def add(self, item: Item) -> None:
        """Register ``item``, rejecting duplicate ids."""
        if item.item_id in self._items:
            raise CatalogError(f"duplicate item id {item.item_id!r}")
        self._items[item.item_id] = item

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items.values())

    def get(self, item_id: str) -> Item:
        """Resolve an item id, raising :class:`CatalogError` if unknown."""
        try:
            return self._items[item_id]
        except KeyError:
            raise CatalogError(f"unknown item id {item_id!r}") from None

    def promotion(self, item_id: str, code: str) -> PromotionCode:
        """Resolve an (item id, promotion code id) pair."""
        return self.get(item_id).promotion(code)

    @property
    def items(self) -> Mapping[str, Item]:
        """Read-only view of the id → item mapping."""
        return dict(self._items)

    @property
    def target_items(self) -> list[Item]:
        """All target items, in insertion order."""
        return [item for item in self._items.values() if item.is_target]

    @property
    def nontarget_items(self) -> list[Item]:
        """All non-target items, in insertion order."""
        return [item for item in self._items.values() if not item.is_target]

    def target_ids(self) -> list[str]:
        """Ids of all target items."""
        return [item.item_id for item in self.target_items]

    def nontarget_ids(self) -> list[str]:
        """Ids of all non-target items."""
        return [item.item_id for item in self.nontarget_items]

    def validate_for_mining(self) -> None:
        """Check the catalog can support profit mining.

        Requires at least one target item and at least one non-target item,
        mirroring Definition 1's setting of pre-selected target items.
        """
        if not self.target_items:
            raise ValidationError("catalog has no target items")
        if not self.nontarget_items:
            raise ValidationError("catalog has no non-target items")
