"""FP-growth frequent-body discovery (alternative mining backend).

The paper observes that "the execution time is dominated by the step of
generating association rules" (Section 5.3).  This module provides an
FP-tree–based alternative to the level-wise Apriori pass in
:mod:`repro.core.mining`: it discovers exactly the same frequent,
ancestor-free bodies (Han, Pei & Yin, SIGMOD 2000), usually touching far
fewer candidates at low supports.

Division of labour: FP-growth here only *discovers* body itemsets; the
caller recomputes each body's transaction mask from the shared
:class:`~repro.core.mining.TransactionIndex` (one ``&`` per member) and
runs the common rule-emission path, so rule statistics are identical by
construction.  Bodies are returned in Apriori's generation order (by size,
then lexicographically by interned ids), which keeps the paper's
"generated before" tie-breaker stable across backends.

The ancestor-free constraint (Definition 4) is enforced by filtering at
emission.  Unlike Apriori — where excluding an ancestor pair prunes all
its supersets for free — FP-growth must skip over subsumed combinations
explicitly; correctness is unaffected because a body is emitted iff it is
frequent *and* ancestor-free, the same predicate Apriori's
join-plus-closure implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.mining import MinerConfig, TransactionIndex
from repro.errors import MiningError
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine.kernel import DenseBitsetKernel

__all__ = ["frequent_bodies_fpgrowth"]


@dataclass
class _FPNode:
    """One FP-tree node: an item id, a count, and tree links."""

    gid: int
    count: int = 0
    parent: "_FPNode | None" = None
    children: dict[int, "_FPNode"] = field(default_factory=dict)
    next_same: "_FPNode | None" = None  # header-table chain


class _FPTree:
    """A compact prefix tree of (sorted) transactions with a header table."""

    def __init__(self) -> None:
        self.root = _FPNode(gid=-1)
        self.header: dict[int, _FPNode] = {}
        self.counts: dict[int, int] = {}

    def insert(self, gids: list[int], count: int) -> None:
        node = self.root
        for gid in gids:
            child = node.children.get(gid)
            if child is None:
                child = _FPNode(gid=gid, parent=node)
                child.next_same = self.header.get(gid)
                self.header[gid] = child
                node.children[gid] = child
            child.count += count
            node = child
            self.counts[gid] = self.counts.get(gid, 0) + count

    def prefix_paths(self, gid: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of ``gid``: (path-to-root, count) pairs."""
        paths: list[tuple[list[int], int]] = []
        node = self.header.get(gid)
        while node is not None:
            path: list[int] = []
            up = node.parent
            while up is not None and up.gid != -1:
                path.append(up.gid)
                up = up.parent
            if path:
                paths.append((list(reversed(path)), node.count))
            node = node.next_same
        return paths


def frequent_bodies_fpgrowth(
    index: TransactionIndex,
    minsup_count: int,
    config: MinerConfig,
    kernel: "DenseBitsetKernel | None" = None,
) -> dict[tuple[int, ...], int]:
    """All frequent ancestor-free bodies with their transaction masks.

    Returns the same mapping Apriori's level-wise pass accumulates:
    canonical (sorted) id tuples → bitmask of matched transactions, keyed
    in generation order (size, then ids).

    ``kernel`` (the dense backend's
    :class:`~repro.core.engine.kernel.DenseBitsetKernel`) vectorizes the
    two mask-facing steps — singles counting and the final per-body mask
    attachment — without touching the tree walk; counts and masks are
    exact either way, so the returned mapping is identical.
    """
    # Frequency-ordered item list (FP-growth's canonical ordering).
    if kernel is not None:
        counts = kernel.single_counts()
        singles = {
            gid: count
            for gid, count in counts.items()
            if count >= minsup_count
        }
    else:
        singles = {
            gid: count
            for gid, mask in index.body_masks.items()
            if (count := mask.bit_count()) >= minsup_count
        }
    order = {gid: rank for rank, gid in enumerate(sorted(singles, key=lambda g: (-singles[g], g)))}

    tree = _FPTree()
    for ext in index.ext_sets:
        frequent = sorted(
            (gid for gid in ext if gid in singles), key=lambda g: order[g]
        )
        if frequent:
            tree.insert(frequent, 1)

    itemsets: list[tuple[int, ...]] = []
    budget = [config.max_candidates_per_level]

    def mine(current_tree: _FPTree, suffix: tuple[int, ...]) -> None:
        if len(suffix) >= config.max_body_size:
            return
        for gid in sorted(current_tree.counts, key=lambda g: order[g], reverse=True):
            if current_tree.counts[gid] < minsup_count:
                continue
            itemset = tuple(sorted((*suffix, gid)))
            budget[0] -= 1
            if budget[0] < 0:
                raise MiningError(
                    "FP-growth itemset explosion "
                    f"(> {config.max_candidates_per_level}); raise min_support "
                    "or lower max_body_size"
                )
            itemsets.append(itemset)
            if len(itemset) >= config.max_body_size:
                continue
            conditional = _FPTree()
            for path, count in current_tree.prefix_paths(gid):
                conditional.insert(path, count)
            # prune infrequent items inside the conditional tree lazily:
            # counts below threshold are skipped by the loop above.
            mine(conditional, itemset)

    mine(tree, ())

    # Filter to ancestor-free bodies and attach transaction masks, in
    # Apriori's generation order.
    kept = [
        itemset
        for itemset in sorted(itemsets, key=lambda t: (len(t), t))
        if len(itemset) == 1 or _ancestor_free(index, itemset)
    ]
    if kernel is not None:
        masks = kernel.masks_for_bodies(kept)
    else:
        masks = [index.body_mask(itemset) for itemset in kept]
    bodies: dict[tuple[int, ...], int] = {}
    for itemset, mask in zip(kept, masks):
        if mask.bit_count() >= minsup_count:
            bodies[itemset] = mask
    trace = obs.current_trace()
    if trace is not None:
        trace.count("mine.fpgrowth.itemsets", len(itemsets))
        trace.count("mine.fpgrowth.bodies", len(bodies))
        trace.count(
            "mine.fpgrowth.pruned_not_ancestor_free",
            len(itemsets) - len(kept),
        )
    return bodies


def _ancestor_free(index: TransactionIndex, itemset: tuple[int, ...]) -> bool:
    ancestor_ids = index.ancestor_ids
    for i, a in enumerate(itemset):
        for b in itemset[i + 1 :]:
            if a in ancestor_ids[b] or b in ancestor_ids[a]:
                return False
    return True
