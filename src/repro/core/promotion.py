"""Promotion codes and the favorability partial order (paper Section 2).

A *promotion code* packages the pricing information for one way of selling an
item: a price, a cost, and a packing quantity (how many base units one
"package" holds).  The paper's running example gives 2%-Milk the codes
``($3.2/4-pack, $2)``, ``($3.0/4-pack, $1.8)``, ``($1.2/pack, $0.5)`` and
``($1/pack, $0.5)``.

The customer-facing *favorability* relation ``P ≺ P'`` (read: ``P`` is more
favorable than ``P'``) holds when ``P`` offers

* more value (a larger packing) for the same or lower price, or
* a lower price for the same or more value.

It is a strict partial order: ``$3.80/2-pack`` is *not* comparable with
``$3.50/1-pack`` because paying more for unwanted quantity is not favorable.
Mining-on-availability (MOA) treats a more favorable code as a *concept* of a
less favorable one, which is how the order enters the MOA(H) hierarchy
(:mod:`repro.core.moa`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ValidationError

__all__ = [
    "PromotionCode",
    "is_more_favorable",
    "is_at_least_as_favorable",
    "favorable_or_equal_codes",
    "favorability_covers",
    "maximal_codes",
    "sort_by_favorability",
]


@dataclass(frozen=True, slots=True)
class PromotionCode:
    """One promotion package for an item.

    Parameters
    ----------
    code:
        Identifier unique among the owning item's promotion codes
        (e.g. ``"P1"`` or ``"$3.2/4-pack"``).
    price:
        Price of one package, in dollars.  Must be positive and finite.
    cost:
        Cost of one package to the seller.  Must be non-negative, finite and
        is allowed to exceed ``price`` (loss-leader promotions).
    packing:
        Number of base units per package (the "value" side of favorability).
        Must be a positive integer; defaults to a single unit.
    """

    code: str
    price: float
    cost: float
    packing: int = 1

    def __post_init__(self) -> None:
        if not self.code:
            raise ValidationError("promotion code identifier must be non-empty")
        if not math.isfinite(self.price) or self.price <= 0:
            raise ValidationError(
                f"promotion {self.code!r}: price must be positive and finite, "
                f"got {self.price!r}"
            )
        if not math.isfinite(self.cost) or self.cost < 0:
            raise ValidationError(
                f"promotion {self.code!r}: cost must be non-negative and finite, "
                f"got {self.cost!r}"
            )
        if not isinstance(self.packing, int) or self.packing < 1:
            raise ValidationError(
                f"promotion {self.code!r}: packing must be a positive integer, "
                f"got {self.packing!r}"
            )

    @property
    def profit(self) -> float:
        """Profit of selling one package: ``price − cost``."""
        return self.price - self.cost

    @property
    def unit_price(self) -> float:
        """Price per base unit."""
        return self.price / self.packing

    @property
    def unit_profit(self) -> float:
        """Profit per base unit."""
        return self.profit / self.packing

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``$3.20/4-pack (cost $2.00)``."""
        pack = "unit" if self.packing == 1 else f"{self.packing}-pack"
        return f"${self.price:.2f}/{pack} (cost ${self.cost:.2f})"


def is_more_favorable(p: PromotionCode, q: PromotionCode) -> bool:
    """Return ``True`` when ``p ≺ q`` strictly (paper Section 2).

    ``p`` is more favorable than ``q`` when it offers at least as much value
    (packing) for at most the price, and improves on at least one of the two.
    Prices are compared with a small absolute tolerance so that codes derived
    from float arithmetic compare sanely.
    """
    if p.packing < q.packing:
        return False
    if p.price > q.price + _PRICE_EPS:
        return False
    strictly_cheaper = p.price < q.price - _PRICE_EPS
    strictly_bigger = p.packing > q.packing
    return strictly_cheaper or strictly_bigger


def is_at_least_as_favorable(p: PromotionCode, q: PromotionCode) -> bool:
    """Return ``True`` when ``p ⪯ q``: strictly more favorable or equivalent.

    Equivalence means equal packing and equal price (within tolerance); the
    cost does not matter to the customer and is ignored, exactly as in the
    paper where favorability reflects the customer's view of the offer.
    """
    return p.packing >= q.packing and p.price <= q.price + _PRICE_EPS


_PRICE_EPS = 1e-9


def favorable_or_equal_codes(
    code: PromotionCode, codes: Iterable[PromotionCode]
) -> list[PromotionCode]:
    """All codes from ``codes`` that are at least as favorable as ``code``.

    This is the generalization set used when a sale under ``code`` is lifted
    through MOA(H): a sale at a code implies a (hypothetical) sale at every
    more favorable code of the same item.
    """
    return [c for c in codes if is_at_least_as_favorable(c, code)]


def favorability_covers(
    codes: Sequence[PromotionCode],
) -> list[tuple[PromotionCode, PromotionCode]]:
    """Covering (Hasse) edges of the favorability order on ``codes``.

    Returns ``(parent, child)`` pairs where *parent* is more favorable than
    *child* and no third code sits strictly between them.  These edges define
    the per-item sub-hierarchy ``(≺, I)`` of Definition 2.
    """
    edges: list[tuple[PromotionCode, PromotionCode]] = []
    for parent in codes:
        for child in codes:
            if parent is child or not is_more_favorable(parent, child):
                continue
            has_middle = any(
                mid is not parent
                and mid is not child
                and is_more_favorable(parent, mid)
                and is_more_favorable(mid, child)
                for mid in codes
            )
            if not has_middle:
                edges.append((parent, child))
    return edges


def maximal_codes(codes: Sequence[PromotionCode]) -> list[PromotionCode]:
    """Codes with no strictly more favorable code in ``codes``.

    These are the roots of the per-item favorability hierarchy, i.e. the
    direct children of the item node in MOA(H).
    """
    return [
        c
        for c in codes
        if not any(other is not c and is_more_favorable(other, c) for other in codes)
    ]


def sort_by_favorability(codes: Sequence[PromotionCode]) -> list[PromotionCode]:
    """Topologically sort ``codes`` from most to least favorable.

    Incomparable codes keep a deterministic order (by unit price, then
    packing descending, then code id) so downstream iteration is stable.
    """
    remaining = sorted(
        codes, key=lambda c: (c.unit_price, -c.packing, c.code)
    )
    ordered: list[PromotionCode] = []
    while remaining:
        for i, candidate in enumerate(remaining):
            dominated = any(
                is_more_favorable(other, candidate)
                for j, other in enumerate(remaining)
                if j != i
            )
            if not dominated:
                ordered.append(candidate)
                del remaining[i]
                break
        else:  # pragma: no cover - unreachable for a strict partial order
            raise ValidationError("favorability order contains a cycle")
    return ordered
