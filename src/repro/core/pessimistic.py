"""Pessimistic estimation of the non-hit probability (Section 4.2).

The projected profit of a rule multiplies the observed average profit per
hit by a *pessimistic* hit count: out of ``N`` covered transactions with
``E`` observed misses, the upper limit ``U_CF(N, E)`` of the true miss
probability at confidence level ``CF`` is taken from the binomial
confidence-interval construction of Clopper & Pearson (1934), the same
estimate C4.5 uses for pessimistic error-based pruning (Quinlan 1993).  The
expected number of hits is then ``X = N · (1 − U_CF(N, E))``.

The exact Clopper–Pearson upper limit is the solution ``p`` of
``P[Binomial(N, p) ≤ E] = CF``, which equals the ``1 − CF`` quantile of a
``Beta(E + 1, N − E)`` distribution.  C4.5's closed-form special case for
``E = 0`` (``U = 1 − CF^(1/N)``) coincides with the Beta formula; we keep it
as a fast path and as executable documentation.

``CF`` follows C4.5's default of 0.25.
"""

from __future__ import annotations

from functools import lru_cache

try:  # scipy ships with the default install; the numpy-free footprint
    # (mining + serving on the big-int backend) never reaches the Beta
    # quantile below, so the import failure is deferred to first use.
    from scipy import stats
except ImportError:  # pragma: no cover - exercised by the numpy-free leg
    stats = None  # type: ignore[assignment]

from repro.errors import ValidationError

__all__ = ["DEFAULT_CF", "pessimistic_miss_rate", "pessimistic_hits"]

DEFAULT_CF = 0.25


@lru_cache(maxsize=65536)
def pessimistic_miss_rate(n: int, errors: float, cf: float = DEFAULT_CF) -> float:
    """Upper confidence limit ``U_CF(N, E)`` of the miss probability.

    Parameters
    ----------
    n:
        Number of covered transactions (``N > 0``).
    errors:
        Observed misses ``E`` with ``0 ≤ E ≤ N``.  Fractional values are
        accepted (they arise when coverage is weighted) and handled by the
        continuous Beta form.
    cf:
        Confidence level in ``(0, 1)``; smaller is more pessimistic.
        Defaults to C4.5's 0.25.
    """
    if n <= 0:
        raise ValidationError(f"pessimistic estimate needs N > 0, got {n}")
    if not 0 <= errors <= n:
        raise ValidationError(
            f"error count must satisfy 0 <= E <= N, got E={errors}, N={n}"
        )
    if not 0 < cf < 1:
        raise ValidationError(f"confidence level must be in (0, 1), got {cf}")
    if errors >= n:
        return 1.0
    if errors == 0:
        # C4.5 closed form, identical to the Beta(1, N) quantile below.
        return 1.0 - cf ** (1.0 / n)
    if stats is None:
        raise ImportError(
            "pessimistic pruning with fractional/nonzero error counts "
            "needs scipy (the Clopper-Pearson Beta quantile); install the "
            "base dependencies"
        )
    upper = stats.beta.ppf(1.0 - cf, errors + 1.0, n - errors)
    return float(upper)


def pessimistic_hits(n: int, hits: float, cf: float = DEFAULT_CF) -> float:
    """Pessimistic expected hit count ``X = N · (1 − U_CF(N, N − hits))``.

    Returns 0 for an empty coverage, which keeps the projected profit of a
    rule that covers nothing at zero.
    """
    if n <= 0:
        return 0.0
    if not 0 <= hits <= n:
        raise ValidationError(
            f"hit count must satisfy 0 <= hits <= N, got hits={hits}, N={n}"
        )
    return n * (1.0 - pessimistic_miss_rate(n, n - hits, cf))
