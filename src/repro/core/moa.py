"""The MOA(H) hierarchy and generalization semantics (Definitions 2–3).

``MOA(H)`` extends a concept hierarchy ``H`` by hanging, under each item
leaf ``I``, the hierarchy ``(≺, I)`` of the item's promotion codes ordered by
favorability.  A sale ``⟨I, P', Q⟩`` then generalizes upward to

* every ``⟨I, P⟩`` with ``P ⪯ P'`` (mining on availability: a customer who
  bought at ``P'`` would also have bought at a more favorable ``P``),
* the bare item ``I``, and
* every concept ancestor of ``I`` (the root ``ANY`` excluded).

:class:`MOAHierarchy` is the library's generalization engine.  It is built
once per (catalog, hierarchy, use_moa) configuration and answers, with
memoization, the queries the miner and recommenders need:

* the generalization set of a concrete sale (how transactions extend),
* the set of rule heads that *hit* a target sale,
* subsumption between generalized sales (for ancestor-free rule bodies,
  dominated-rule deletion and the covering tree).

Setting ``use_moa=False`` produces the −MOA variants of the paper's
experiments: promotion codes stop generalizing across each other, so a sale
lifts only to its exact ``⟨I, P⟩`` node (plus item and concepts) and a head
hits only on an exact promotion-code match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.generalized import GKind, GSale
from repro.core.hierarchy import ConceptHierarchy
from repro.core.items import ItemCatalog
from repro.core.promotion import PromotionCode, is_more_favorable
from repro.core.sales import Sale
from repro.errors import ValidationError

__all__ = ["MOAHierarchy", "moa_to_dot"]


@dataclass
class MOAHierarchy:
    """Generalization engine over ``MOA(H)`` (or plain ``H`` when MOA is off).

    Parameters
    ----------
    catalog:
        Item catalog supplying promotion codes and the target split.
    hierarchy:
        Concept hierarchy ``H`` over the catalog's items.
    use_moa:
        When ``True`` (the paper's default), promotion codes generalize along
        the favorability order; when ``False``, each promotion code stands
        alone.
    """

    catalog: ItemCatalog
    hierarchy: ConceptHierarchy
    use_moa: bool = True
    _sale_gen_cache: dict[tuple[str, str], frozenset[GSale]] = field(
        default_factory=dict, repr=False
    )
    _head_cache: dict[tuple[str, str], frozenset[GSale]] = field(
        default_factory=dict, repr=False
    )
    _gsale_ancestors: dict[GSale, frozenset[GSale]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        self.hierarchy.validate_against_catalog(self.catalog)

    # ------------------------------------------------------------------
    # Generalizing concrete sales
    # ------------------------------------------------------------------
    def generalizations_of_sale(self, sale: Sale) -> frozenset[GSale]:
        """All generalized sales of a *non-target* sale (Definition 3).

        The returned set is exactly the set of generalized sales ``g`` such
        that ``g`` is a generalized sale of ``sale``; a rule body ``G``
        matches a basket iff every member of ``G`` lies in the union of these
        sets over the basket's sales.
        """
        key = (sale.item_id, sale.promo_code)
        cached = self._sale_gen_cache.get(key)
        if cached is not None:
            return cached
        item = self.catalog.get(sale.item_id)
        if item.is_target:
            raise ValidationError(
                f"{sale.item_id!r} is a target item; use target_heads_of_sale"
            )
        sold_at = item.promotion(sale.promo_code)
        gsales: set[GSale] = set()
        gsales.update(
            GSale.promo_form(item.item_id, promo.code)
            for promo in self._codes_lifting(item.promotions, sold_at)
        )
        gsales.add(GSale.item(item.item_id))
        gsales.update(
            GSale.concept(concept)
            for concept in self.hierarchy.ancestors_of(item.item_id)
        )
        result = frozenset(gsales)
        self._sale_gen_cache[key] = result
        return result

    def generalizations_of_basket(self, sales: Iterable[Sale]) -> frozenset[GSale]:
        """Union of the generalization sets of a basket's non-target sales."""
        combined: set[GSale] = set()
        for sale in sales:
            combined.update(self.generalizations_of_sale(sale))
        return frozenset(combined)

    def _codes_lifting(
        self, codes: Sequence[PromotionCode], sold_at: PromotionCode
    ) -> list[PromotionCode]:
        """Promotion codes a sale at ``sold_at`` generalizes to.

        The code itself plus every *strictly* more favorable code — the
        same relation :meth:`ancestors_of_gsale` walks, so membership in a
        generalization set and subsumption in MOA(H) always agree.  A
        distinct code with identical customer terms (same price and
        packing) is not lifted to: it is a different offer, possibly at a
        different cost to the seller, and crediting it would misstate the
        profit.
        """
        if not self.use_moa:
            return [sold_at]
        return [
            c
            for c in codes
            if c.code == sold_at.code or is_more_favorable(c, sold_at)
        ]

    # ------------------------------------------------------------------
    # Target-sale hits
    # ------------------------------------------------------------------
    def target_heads_of_sale(self, target_sale: Sale) -> frozenset[GSale]:
        """All heads ``⟨I, P⟩`` that capture the intention of ``target_sale``.

        With MOA these are the codes at least as favorable as the recorded
        one; without MOA only the exact recorded code.  A rule whose head is
        in this set scores a *hit* on the transaction.
        """
        key = (target_sale.item_id, target_sale.promo_code)
        cached = self._head_cache.get(key)
        if cached is not None:
            return cached
        item = self.catalog.get(target_sale.item_id)
        if not item.is_target:
            raise ValidationError(
                f"{target_sale.item_id!r} is not a target item"
            )
        sold_at = item.promotion(target_sale.promo_code)
        heads = frozenset(
            GSale.promo_form(item.item_id, promo.code)
            for promo in self._codes_lifting(item.promotions, sold_at)
        )
        self._head_cache[key] = heads
        return heads

    def hits(self, head: GSale, target_sale: Sale) -> bool:
        """Whether recommending ``head`` is a hit on ``target_sale``."""
        if head.kind is not GKind.PROMO:
            raise ValidationError("rule heads must be promo-form generalized sales")
        return head in self.target_heads_of_sale(target_sale)

    def all_candidate_heads(self) -> list[GSale]:
        """Every recommendable ``⟨target item, promotion code⟩`` pair."""
        return [
            GSale.promo_form(item.item_id, promo.code)
            for item in self.catalog.target_items
            for promo in item.promotions
        ]

    # ------------------------------------------------------------------
    # Subsumption between generalized sales
    # ------------------------------------------------------------------
    def strictly_generalizes(self, general: GSale, specific: GSale) -> bool:
        """Whether ``general`` is a proper ancestor of ``specific`` in MOA(H)."""
        return general != specific and general in self.ancestors_of_gsale(specific)

    def generalizes_or_equal(self, general: GSale, specific: GSale) -> bool:
        """Reflexive subsumption: equal or a proper ancestor."""
        return general == specific or general in self.ancestors_of_gsale(specific)

    def ancestors_of_gsale(self, gsale: GSale) -> frozenset[GSale]:
        """All proper ancestors of ``gsale`` in MOA(H) (root excluded)."""
        cached = self._gsale_ancestors.get(gsale)
        if cached is not None:
            return cached
        result: set[GSale] = set()
        if gsale.kind is GKind.CONCEPT:
            result.update(
                GSale.concept(c) for c in self.hierarchy.ancestors_of(gsale.node)
            )
        elif gsale.kind is GKind.ITEM:
            result.update(
                GSale.concept(c) for c in self.hierarchy.ancestors_of(gsale.node)
            )
        else:
            item = self.catalog.get(gsale.node)
            sold_at = item.promotion(gsale.promo or "")
            if self.use_moa:
                result.update(
                    GSale.promo_form(item.item_id, promo.code)
                    for promo in item.promotions
                    if is_more_favorable(promo, sold_at)
                )
            result.add(GSale.item(item.item_id))
            result.update(
                GSale.concept(c) for c in self.hierarchy.ancestors_of(item.item_id)
            )
        frozen = frozenset(result)
        self._gsale_ancestors[gsale] = frozen
        return frozen

    def closure(self, gsales: Iterable[GSale]) -> frozenset[GSale]:
        """``gsales`` together with all their proper ancestors.

        A body ``G`` is at least as general as a body ``G'`` exactly when
        ``G ⊆ closure(G')`` — the subset test the covering tree runs many
        thousands of times.
        """
        result: set[GSale] = set()
        for gsale in gsales:
            result.add(gsale)
            result.update(self.ancestors_of_gsale(gsale))
        return frozenset(result)

    def body_generalizes(
        self, general: Iterable[GSale], specific: Iterable[GSale]
    ) -> bool:
        """Whether body ``general`` generalizes body ``specific``.

        Per Definition 3's matching: every member of ``general`` must equal
        or subsume some member of ``specific``.  Reflexive.
        """
        specific_closure = self.closure(specific)
        return all(g in specific_closure for g in general)

    def is_ancestor_free(self, body: Iterable[GSale]) -> bool:
        """Definition 4's body constraint: no member subsumes another."""
        members = list(body)
        for i, g in enumerate(members):
            for j, other in enumerate(members):
                if i != j and self.generalizes_or_equal(g, other):
                    return False
        return True


def moa_to_dot(moa: MOAHierarchy, name: str = "MOAH") -> str:
    """Render MOA(H) as Graphviz DOT — the paper's Figure 1(b) view.

    Concepts are ellipses, items boxes, promotion-code nodes ⟨I, P⟩ plain
    text; favorability cover edges run from more to less favorable codes.
    """
    from repro.core.hierarchy import ROOT_CONCEPT
    from repro.core.promotion import favorability_covers, maximal_codes

    lines = [f"digraph {name} {{", '  rankdir="TB";']
    lines.append(f'  "{ROOT_CONCEPT}" [shape=doublecircle];')
    for concept in sorted(moa.hierarchy.concepts):
        lines.append(f'  "{concept}" [shape=ellipse];')
    for node in sorted(moa.hierarchy.parents):
        for parent in moa.hierarchy.parents_of(node):
            lines.append(f'  "{parent}" -> "{node}";')
    for item in sorted(moa.hierarchy.items):
        lines.append(f'  "{item}" [shape=box];')
        codes = moa.catalog.get(item).promotions
        if not codes:
            continue
        for promo in codes:
            label = f"<{item} @ {promo.code}>"
            lines.append(f'  "{label}" [shape=plaintext];')
        if moa.use_moa:
            for root_code in maximal_codes(codes):
                lines.append(f'  "{item}" -> "<{item} @ {root_code.code}>";')
            for parent, child in favorability_covers(list(codes)):
                lines.append(
                    f'  "<{item} @ {parent.code}>" -> "<{item} @ {child.code}>";'
                )
        else:
            for promo in codes:
                lines.append(f'  "{item}" -> "<{item} @ {promo.code}>";')
    lines.append("}")
    return "\n".join(lines)
