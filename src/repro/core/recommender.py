"""The recommender interface shared by the profit miner and the baselines.

A recommender, per Definition 4, is "a set of rules plus a method for
selecting rules to make recommendation" — operationally: given a future
customer's non-target sales, produce one ``(target item, promotion code)``
pair.  Baselines without rules (kNN, MPI) implement the same protocol so the
evaluation harness can treat all six systems of Section 5 uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.core.rules import ScoredRule
from repro.core.sales import Sale, TransactionDB
from repro.errors import RecommenderError

__all__ = ["Recommendation", "Recommender"]


@dataclass(frozen=True)
class Recommendation:
    """One recommendation: a target item under a promotion code.

    ``rule`` is populated by rule-based recommenders so callers can explain
    why the pair was recommended; baselines leave it ``None``.
    """

    item_id: str
    promo_code: str
    rule: ScoredRule | None = None

    def describe(self) -> str:
        """Human-readable form, with the triggering rule when available."""
        base = f"recommend {self.item_id} @ {self.promo_code}"
        if self.rule is not None:
            return f"{base}  (by {self.rule.describe()})"
        return base


class Recommender(abc.ABC):
    """Common protocol: ``fit`` on past transactions, ``recommend`` baskets."""

    #: Display name used in experiment tables (e.g. ``"PROF+MOA"``).
    name: str = "recommender"

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(self, db: TransactionDB) -> "Recommender":
        """Build the model from past transactions; returns ``self``."""

    @abc.abstractmethod
    def recommend(self, basket: Sequence[Sale]) -> Recommendation:
        """Recommend one (target item, promotion code) pair for ``basket``."""

    def recommend_many(
        self, baskets: Sequence[Sequence[Sale]]
    ) -> list[Recommendation]:
        """Vectorized convenience over :meth:`recommend`."""
        return [self.recommend(basket) for basket in baskets]

    @property
    def model_size(self) -> int | None:
        """Number of rules in the model; ``None`` for model-free baselines."""
        return None

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RecommenderError(
                f"{type(self).__name__} must be fitted before recommending"
            )
