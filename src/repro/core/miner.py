"""The end-to-end profit miner: mine → cover → prune → recommend.

:class:`ProfitMiner` is the library's main entry point.  It wires the whole
pipeline of the paper together:

1. mine generalized association rules over MOA(H) with profit-aware worth
   (:mod:`repro.core.mining`),
2. rank them most-profitable-first and build the covering tree
   (:mod:`repro.core.covering`),
3. prune to the cut-optimal recommender (:mod:`repro.core.pruning`),
4. expose the result as an :class:`~repro.core.mpf.MPFRecommender`.

The four rule-based systems of the evaluation are configurations of this
one class:

=============  =========================  ===========
System         profit model               ``use_moa``
=============  =========================  ===========
``PROF+MOA``   saving (or buying) MOA     ``True``
``PROF-MOA``   saving (or buying) MOA     ``False``
``CONF+MOA``   binary (hit counting)      ``True``
``CONF-MOA``   binary (hit counting)      ``False``
=============  =========================  ===========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.covering import CoveringTree, build_covering_tree
from repro.core.engine.compiled import CompiledModel
from repro.core.hierarchy import ConceptHierarchy
from repro.core.index_cache import FitCache
from repro.core.mining import MinerConfig, MiningResult, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.mpf import MPFRecommender
from repro.core.profit import ProfitModel, SavingMOA
from repro.core.pruning import PruneConfig, PruneReport, cut_optimal_prune
from repro.core.recommender import Recommendation, Recommender
from repro.core.sales import Sale, Transaction, TransactionDB
from repro.errors import RecommenderError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine.store import ChunkedTransactionStore

__all__ = ["ProfitMinerConfig", "ProfitMiner"]


@dataclass(frozen=True)
class ProfitMinerConfig:
    """Full configuration of one profit-mining run."""

    mining: MinerConfig = field(default_factory=MinerConfig)
    pruning: PruneConfig = field(default_factory=PruneConfig)
    use_moa: bool = True

    @classmethod
    def prof_moa(cls, **mining_kwargs: object) -> "ProfitMinerConfig":
        """The paper's PROF+MOA configuration."""
        return cls(mining=MinerConfig(**mining_kwargs), use_moa=True)  # type: ignore[arg-type]

    @classmethod
    def prof_no_moa(cls, **mining_kwargs: object) -> "ProfitMinerConfig":
        """The paper's PROF−MOA configuration."""
        return cls(mining=MinerConfig(**mining_kwargs), use_moa=False)  # type: ignore[arg-type]


class ProfitMiner(Recommender):
    """Builds the cut-optimal recommender of Sections 3–4.

    Parameters
    ----------
    hierarchy:
        Concept hierarchy ``H`` over the catalog's items.
    profit_model:
        How hit profit is credited during model building; defaults to the
        conservative saving MOA.  Pass
        :class:`~repro.core.profit.BinaryProfit` for the CONF variants.
    config:
        Mining/pruning thresholds and the MOA switch.
    name:
        Display name in experiment tables (defaults to the paper's label
        derived from the configuration, e.g. ``"PROF+MOA"``).
    """

    def __init__(
        self,
        hierarchy: ConceptHierarchy,
        profit_model: ProfitModel | None = None,
        config: ProfitMinerConfig | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__()
        self.hierarchy = hierarchy
        self.profit_model = profit_model or SavingMOA()
        self.config = config or ProfitMinerConfig()
        self.name = name or self._derive_name()
        self.moa: MOAHierarchy | None = None
        self.mining_result: MiningResult | None = None
        self.covering_tree: CoveringTree | None = None
        self.prune_report: PruneReport | None = None
        self.recommender: MPFRecommender | None = None
        self._initial_recommender: MPFRecommender | None = None

    def _derive_name(self) -> str:
        profit = "CONF" if self.profit_model.name == "binary" else "PROF"
        moa = "+MOA" if self.config.use_moa else "-MOA"
        return profit + moa

    # ------------------------------------------------------------------
    def fit(self, db: TransactionDB, cache: FitCache | None = None) -> "ProfitMiner":
        """Run the full pipeline on ``db``; returns ``self``.

        ``cache`` shares MOA hierarchies and transaction indexes across
        fits (see :class:`~repro.core.index_cache.FitCache`): sweeps and
        cross-validation runs that fit several systems over the same fold
        pay the extension/interning/mask cost once instead of per system.
        Results are identical with or without a cache.
        """
        db.catalog.validate_for_mining()
        if cache is not None:
            self.moa = cache.moa_for(db.catalog, self.hierarchy, self.config.use_moa)
            index = cache.index_for(db, self.moa, self.profit_model)
        else:
            self.moa = MOAHierarchy(
                catalog=db.catalog,
                hierarchy=self.hierarchy,
                use_moa=self.config.use_moa,
            )
            index = None
        self.mining_result = mine_rules(
            db, self.moa, self.profit_model, self.config.mining, index=index
        )
        return self._finish_fit()

    def fit_store(self, store: "ChunkedTransactionStore") -> "ProfitMiner":
        """Run the pipeline over an out-of-core transaction store.

        Mines ``store`` with the SON two-pass partitioned miner
        (:func:`~repro.core.partition.mine_store`) — bit-identical to
        :meth:`fit` on the same transactions — then finishes covering,
        pruning and recommender assembly as usual.  The store must have
        been built with this miner's MOA setting and profit model; both
        are checked against the store's manifest.
        """
        from repro.core.partition import mine_store

        self._check_store(store)
        self.moa = store.moa
        self.mining_result = mine_store(store, self.config.mining)
        return self._finish_fit()

    def refit_refreshed(
        self,
        store: "ChunkedTransactionStore",
        new_transactions: "Iterable[Transaction]",
    ) -> "ProfitMiner":
        """Append ``new_transactions`` to ``store`` and refit incrementally.

        Uses :func:`~repro.core.partition.refresh_store`: only the new
        partitions are mined and counted in full; history is touched only
        for the candidate delta.  The resulting model is bit-identical to
        re-fitting the grown store from scratch.  The store must carry the
        SON state of a previous :meth:`fit_store` / ``refit_refreshed``
        run with this same mining configuration.
        """
        from repro.core.partition import refresh_store

        self._check_store(store)
        self.moa = store.moa
        self.mining_result = refresh_store(
            store, new_transactions, self.config.mining
        )
        return self._finish_fit()

    def _check_store(self, store: "ChunkedTransactionStore") -> None:
        if store.moa.use_moa != self.config.use_moa:
            raise RecommenderError(
                "transaction store disagrees with this miner's use_moa setting"
            )
        if store.profit_model.name != self.profit_model.name:
            raise RecommenderError(
                f"transaction store credits profit with "
                f"{store.profit_model.name!r}, not {self.profit_model.name!r}"
            )

    def fit_from_mining_result(self, mining_result: MiningResult) -> "ProfitMiner":
        """Finish the pipeline from an already-computed mining result.

        Runs covering-tree construction, cut-optimal pruning and
        recommender assembly on ``mining_result`` without re-mining.  This
        is the mine-once sweep's entry point: mine a fold once at the
        sweep's lowest support, then fit each higher level from
        :func:`~repro.core.mining.filter_mining_result` of that base run.
        The result must have been mined with this miner's MOA setting and
        profit model.
        """
        index = mining_result.index
        if index.moa.use_moa != self.config.use_moa:
            raise RecommenderError(
                "mining result disagrees with this miner's use_moa setting"
            )
        if index.profit_model.name != self.profit_model.name:
            raise RecommenderError(
                f"mining result credits profit with "
                f"{index.profit_model.name!r}, not {self.profit_model.name!r}"
            )
        self.moa = index.moa
        self.mining_result = mining_result
        return self._finish_fit()

    def _finish_fit(self) -> "ProfitMiner":
        """Covering, pruning and recommender assembly (fit steps 2–4)."""
        assert self.mining_result is not None and self.moa is not None
        self._initial_recommender = None  # rebuilt lazily against this fit
        self.covering_tree = build_covering_tree(self.mining_result)
        self.prune_report = cut_optimal_prune(self.covering_tree, self.config.pruning)
        # Compile against the mining index's shared symbol table, reusing
        # the miner's body interning — the recommender is born serving-
        # ready, with no interning left on the request path.
        compiled = CompiledModel.compile(
            self.prune_report.kept_rules,
            self.mining_result.index.symbols,
            name=self.name,
            body_ids_by_order=self.mining_result.body_ids_by_order,
        )
        self.recommender = MPFRecommender(
            compiled.ranked_rules,
            self.moa,
            name=self.name,
            presorted=True,
            compiled=compiled,
        )
        self._fitted = True
        return self

    @property
    def initial_recommender(self) -> MPFRecommender | None:
        """The unpruned MPF recommender over all mined rules (Section 3).

        Only ablations and the figure reproductions comparing initial vs
        cut-optimal recommenders need this, so it is assembled on first
        access rather than on every fit — sweeps that evaluate only the
        pruned recommender never pay for ranking the full rule list twice.
        """
        if self._initial_recommender is None and self.mining_result is not None:
            assert self.moa is not None
            ranked = self.mining_result.ranked_cache
            self._initial_recommender = MPFRecommender(
                ranked if ranked is not None else self.mining_result.all_rules,
                self.moa,
                name=f"{self.name} (initial)",
                presorted=ranked is not None,
            )
        return self._initial_recommender

    def recommend(self, basket: Sequence[Sale]) -> Recommendation:
        """Recommend with the cut-optimal recommender."""
        self._check_fitted()
        assert self.recommender is not None
        return self.recommender.recommend(basket)

    def recommend_many(
        self, baskets: Sequence[Sequence[Sale]]
    ) -> list[Recommendation]:
        """Batch recommendation through the indexed cut-optimal recommender."""
        self._check_fitted()
        assert self.recommender is not None
        return self.recommender.recommend_many(baskets)

    def explain(self, basket: Sequence[Sale]) -> str:
        """Explain the recommendation for ``basket`` (Requirement 5)."""
        self._check_fitted()
        assert self.recommender is not None
        return self.recommender.explain(basket)

    def query_rules(self, **filters: object) -> list:
        """Audit query over the cut-optimal rules.

        Forwards to :meth:`~repro.core.mpf.MPFRecommender.query_rules`
        (and through it :meth:`~repro.core.rulestore.RuleStore.query`):
        filter by head promotion/item, head-under-concept, body mentions,
        rule shape and stat floors, answered from the shape-split
        columnar store rather than a scan of the ranked list.
        """
        return self.require_fitted_recommender().query_rules(**filters)

    @property
    def model_size(self) -> int:
        """Number of rules in the cut-optimal recommender."""
        self._check_fitted()
        assert self.recommender is not None
        return self.recommender.model_size

    @property
    def rules(self) -> list:
        """The surviving rules in MPF rank order."""
        self._check_fitted()
        assert self.recommender is not None
        return list(self.recommender.ranked_rules)

    def summary(self) -> str:
        """One-paragraph fit summary (rule counts, pruning effect)."""
        self._check_fitted()
        assert self.mining_result is not None
        assert self.covering_tree is not None
        assert self.prune_report is not None
        mined = len(self.mining_result.scored_rules)
        report = self.prune_report
        return (
            f"{self.name}: mined {mined} rules "
            f"(+1 default) over {self.mining_result.index.n} transactions; "
            f"{self.covering_tree.n_dominated_removed} dominated rules removed; "
            f"covering tree of {report.n_rules_before} nodes pruned to "
            f"{report.n_rules_after} rules "
            f"({report.n_subtrees_pruned} subtrees cut); projected profit "
            f"{report.tree_profit_before:.2f} -> {report.tree_profit_after:.2f}"
        )

    def require_fitted_recommender(self) -> MPFRecommender:
        """The cut-optimal recommender, raising if :meth:`fit` never ran."""
        if self.recommender is None:
            raise RecommenderError("ProfitMiner has not been fitted")
        return self.recommender
