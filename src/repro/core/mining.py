"""Generalized association-rule mining over MOA(H) (Section 3.1).

The miner follows the multi-level association mining of Srikant & Agrawal
(VLDB'95) / Han & Fu (VLDB'95) that the paper adopts, specialised to profit
mining's rule shape: bodies are ancestor-free sets of generalized non-target
sales, heads are single ``⟨target item, promotion code⟩`` pairs.

Implementation notes
--------------------
* Every transaction is *extended* once: its non-target sales are replaced by
  the set of all their generalizations under MOA(H) (the root concept
  excluded), and its target sale by the set of heads that would hit it.  A
  body matches a transaction iff it is a subset of the extended set, so all
  support counting reduces to set intersections.
* Tid-sets are Python integers used as bitmasks; intersection is ``&`` and
  support is ``int.bit_count()``, which keeps the level-wise Apriori passes
  fast without any native-code dependency.
* Candidate bodies are kept ancestor-free (Definition 4).  Rejecting
  subsuming *pairs* at level 2 suffices: any larger body containing such a
  pair fails the standard all-subsets-frequent check.
* The credited profit of each (transaction, head) pair is precomputed with
  the configured :class:`~repro.core.profit.ProfitModel`, so mining under
  saving MOA, buying MOA or binary (CONF) profit differs only in one table.

The :class:`TransactionIndex` built here is reused verbatim by the covering
tree and the cut-optimal pruning, which need the same masks and profit
tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.generalized import GKind, GSale
from repro.core.moa import MOAHierarchy
from repro.core.profit import ProfitModel
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.core.sales import TransactionDB
from repro.errors import MiningError, ValidationError

__all__ = ["MinerConfig", "TransactionIndex", "MiningResult", "mine_rules"]


def _positions_to_mask(positions: list[int], n: int) -> int:
    """Bitmask with the given transaction positions set (one conversion).

    Builds a little-endian byte buffer and converts once — O(n) instead of
    the O(n²) of repeated single-bit ORs on a growing int.
    """
    buffer = bytearray((n + 7) // 8)
    for pos in positions:
        buffer[pos >> 3] |= 1 << (pos & 7)
    return int.from_bytes(buffer, "little")


@dataclass(frozen=True)
class MinerConfig:
    """Thresholds and limits for rule generation.

    Parameters
    ----------
    min_support:
        Minimum ``Supp(body ∪ {head})`` as a fraction of the database.  The
        paper requires this for support-based pruning.
    min_confidence:
        Optional minimum ``Conf``; 0 disables (the paper folds confidence
        into ``Prof_re`` instead of thresholding it).
    min_rule_profit:
        Optional minimum ``Prof_ru``; valid as a pruning threshold only when
        all target items have non-negative profit (Section 3.1).
    max_body_size:
        Cap on ``|body|``; bounds the level-wise search.
    max_candidates_per_level:
        Safety valve against candidate explosions at very low supports.
    """

    min_support: float = 0.01
    min_confidence: float = 0.0
    min_rule_profit: float = 0.0
    max_body_size: int = 3
    max_candidates_per_level: int = 2_000_000
    algorithm: str = "apriori"

    def __post_init__(self) -> None:
        if self.algorithm not in ("apriori", "fpgrowth"):
            raise ValidationError(
                f"algorithm must be 'apriori' or 'fpgrowth', got "
                f"{self.algorithm!r}"
            )
        if not 0 < self.min_support <= 1:
            raise ValidationError(
                f"min_support must be in (0, 1], got {self.min_support}"
            )
        if not 0 <= self.min_confidence <= 1:
            raise ValidationError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if self.min_rule_profit < 0:
            raise ValidationError(
                f"min_rule_profit must be non-negative, got {self.min_rule_profit}"
            )
        if self.max_body_size < 1:
            raise ValidationError(
                f"max_body_size must be at least 1, got {self.max_body_size}"
            )
        if self.max_candidates_per_level < 1:
            raise ValidationError("max_candidates_per_level must be positive")


@dataclass
class TransactionIndex:
    """Preprocessed, interned view of a transaction database.

    Generalized sales are interned to dense integer ids (sorted by their
    canonical key, so ids are deterministic).  All masks index transactions
    by their position in ``db.transactions``.
    """

    db: TransactionDB
    moa: MOAHierarchy
    profit_model: ProfitModel
    n: int = field(init=False)
    gsale_ids: dict[GSale, int] = field(init=False, default_factory=dict)
    gsales: list[GSale] = field(init=False, default_factory=list)
    ext_sets: list[frozenset[int]] = field(init=False, default_factory=list)
    body_masks: dict[int, int] = field(init=False, default_factory=dict)
    head_sets: list[frozenset[int]] = field(init=False, default_factory=list)
    head_masks: dict[int, int] = field(init=False, default_factory=dict)
    head_profits: list[dict[int, float]] = field(init=False, default_factory=list)
    candidate_head_ids: list[int] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.n = len(self.db)
        if self.n == 0:
            raise MiningError("cannot mine an empty transaction database")
        self._intern_gsales()
        self._index_transactions()

    # ------------------------------------------------------------------
    def _intern_gsales(self) -> None:
        seen: set[GSale] = set()
        for transaction in self.db:
            seen.update(self.moa.generalizations_of_basket(transaction.nontarget_sales))
            seen.update(self.moa.target_heads_of_sale(transaction.target_sale))
        seen.update(self.moa.all_candidate_heads())
        self.gsales = sorted(seen, key=GSale.sort_key)
        self.gsale_ids = {g: i for i, g in enumerate(self.gsales)}
        # Candidate heads are enumerated most-specific-first (deepest in the
        # per-item MOA(H) sub-hierarchy, i.e. least favorable price first).
        # This fixes the paper's "generated before" tie-breaker: when two
        # heads tie on recommendation profit and support — which happens
        # systematically under MOA, where every cheaper price hits a
        # superset — the most specific recommendation wins.
        def head_depth_key(head: GSale) -> tuple[str, float, str]:
            promo = self.db.catalog.promotion(head.node, head.promo or "")
            return (head.node, -promo.unit_price, head.promo or "")

        self.candidate_head_ids = [
            self.gsale_ids[h]
            for h in sorted(self.moa.all_candidate_heads(), key=head_depth_key)
        ]

    def _index_transactions(self) -> None:
        # Accumulate per-gsale transaction positions first and build each
        # bitmask once at the end: OR-ing single bits into a growing Python
        # int copies the whole mask every time (quadratic at 100K
        # transactions), whereas one bytes conversion per gsale is linear.
        body_positions: dict[int, list[int]] = {}
        head_positions: dict[int, list[int]] = {}
        for pos, transaction in enumerate(self.db):
            ext = frozenset(
                self.gsale_ids[g]
                for g in self.moa.generalizations_of_basket(
                    transaction.nontarget_sales
                )
            )
            self.ext_sets.append(ext)
            for gid in ext:
                body_positions.setdefault(gid, []).append(pos)

            heads = frozenset(
                self.gsale_ids[h]
                for h in self.moa.target_heads_of_sale(transaction.target_sale)
            )
            self.head_sets.append(heads)
            profits: dict[int, float] = {}
            for hid in heads:
                head_positions.setdefault(hid, []).append(pos)
                profits[hid] = self.profit_model.credited_profit(
                    self.gsales[hid], transaction.target_sale, self.db.catalog
                )
            self.head_profits.append(profits)
        self.body_masks = {
            gid: _positions_to_mask(positions, self.n)
            for gid, positions in body_positions.items()
        }
        self.head_masks = {
            hid: _positions_to_mask(positions, self.n)
            for hid, positions in head_positions.items()
        }

    # ------------------------------------------------------------------
    # Queries shared with covering / pruning
    # ------------------------------------------------------------------
    def body_mask(self, body_ids: Sequence[int]) -> int:
        """Bitmask of transactions matched by the body ``body_ids``."""
        mask = (1 << self.n) - 1
        for gid in body_ids:
            mask &= self.body_masks.get(gid, 0)
            if not mask:
                return 0
        return mask

    def gsale_id(self, gsale: GSale) -> int:
        """Interned id of ``gsale`` (raises for unseen generalized sales)."""
        try:
            return self.gsale_ids[gsale]
        except KeyError:
            raise MiningError(
                f"generalized sale {gsale.describe()} not present in index"
            ) from None

    def hit_profit(self, transaction_pos: int, head_id: int) -> float:
        """Credited profit of ``head_id`` on transaction ``transaction_pos``.

        Zero when the head does not hit the transaction's target sale,
        matching the paper's ``p(r, t)``.
        """
        return self.head_profits[transaction_pos].get(head_id, 0.0)

    def head_hits_mask(self, head_id: int) -> int:
        """Bitmask of transactions whose target sale ``head_id`` hits."""
        return self.head_masks.get(head_id, 0)

    def recorded_profit(self, transaction_pos: int) -> float:
        """Recorded profit of the transaction's target sale."""
        return self.db[transaction_pos].recorded_target_profit(self.db.catalog)

    @staticmethod
    def iter_bits(mask: int) -> Iterator[int]:
        """Yield the positions of the set bits of ``mask``, ascending."""
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low


@dataclass
class MiningResult:
    """Output of :func:`mine_rules`: the rule set ``R`` plus shared state."""

    index: TransactionIndex
    scored_rules: list[ScoredRule]
    default_rule: ScoredRule
    body_tid_masks: dict[int, int]  # rule.order -> matched-transaction mask
    frequent_body_count: int

    @property
    def all_rules(self) -> list[ScoredRule]:
        """Mined rules followed by the default rule (generation order)."""
        return [*self.scored_rules, self.default_rule]


def mine_rules(
    db: TransactionDB,
    moa: MOAHierarchy,
    profit_model: ProfitModel,
    config: MinerConfig,
) -> MiningResult:
    """Generate the rule set ``R`` of Section 3.1.

    Runs a level-wise search for frequent ancestor-free bodies over the
    extended transactions, emits every (body, head) combination passing the
    support / confidence / rule-profit thresholds, and appends the default
    rule ``∅ → g`` with ``g`` maximizing ``Prof_re(∅ → g)``.
    """
    index = TransactionIndex(db=db, moa=moa, profit_model=profit_model)
    minsup_count = max(1, math.ceil(config.min_support * index.n))

    frequent_heads = [
        hid
        for hid in index.candidate_head_ids
        if index.head_hits_mask(hid).bit_count() >= minsup_count
    ]

    scored: list[ScoredRule] = []
    body_tid_masks: dict[int, int] = {}
    order = 0
    frequent_body_count = 0

    def emit_rules_for_body(body_ids: tuple[int, ...], body_mask: int) -> None:
        nonlocal order
        n_matched = body_mask.bit_count()
        # Items the body mentions in promo form.  A head for such an item
        # would violate the body/head separation that Rule.__post_init__
        # enforces — possible when a generalization engine lifts target
        # promo-forms into basket extensions — so the combination is
        # skipped rather than aborting the whole mining run.
        blocked_items = {
            index.gsales[gid].node
            for gid in body_ids
            if index.gsales[gid].kind is GKind.PROMO
        }
        for hid in frequent_heads:
            if index.gsales[hid].node in blocked_items:
                continue
            hit_mask = body_mask & index.head_hits_mask(hid)
            n_hits = hit_mask.bit_count()
            if n_hits < minsup_count:
                continue
            if n_matched and n_hits / n_matched < config.min_confidence:
                continue
            rule_profit = sum(
                index.hit_profit(pos, hid)
                for pos in TransactionIndex.iter_bits(hit_mask)
            )
            if rule_profit < config.min_rule_profit:
                continue
            rule = Rule(
                body=frozenset(index.gsales[gid] for gid in body_ids),
                head=index.gsales[hid],
                order=order,
            )
            stats = RuleStats(
                n_matched=n_matched,
                n_hits=n_hits,
                rule_profit=rule_profit,
                n_total=index.n,
            )
            body_tid_masks[order] = body_mask
            scored.append(ScoredRule(rule=rule, stats=stats))
            order += 1

    if config.algorithm == "fpgrowth":
        from repro.core.fpgrowth import frequent_bodies_fpgrowth

        bodies = frequent_bodies_fpgrowth(index, minsup_count, config)
        frequent_body_count = len(bodies)
        for body_ids, mask in bodies.items():
            emit_rules_for_body(body_ids, mask)
    else:
        # Level 1: frequent single generalized non-target sales.
        level: dict[tuple[int, ...], int] = {}
        for gid in sorted(index.body_masks):
            mask = index.body_masks[gid]
            if mask.bit_count() >= minsup_count:
                level[(gid,)] = mask
        frequent_body_count += len(level)
        for body_ids, mask in level.items():
            emit_rules_for_body(body_ids, mask)

        size = 1
        while level and size < config.max_body_size:
            level = _next_level(index, level, minsup_count, config, size)
            frequent_body_count += len(level)
            for body_ids, mask in level.items():
                emit_rules_for_body(body_ids, mask)
            size += 1

    default_rule = _build_default_rule(index, order)
    return MiningResult(
        index=index,
        scored_rules=scored,
        default_rule=default_rule,
        body_tid_masks=body_tid_masks,
        frequent_body_count=frequent_body_count,
    )


def _next_level(
    index: TransactionIndex,
    level: dict[tuple[int, ...], int],
    minsup_count: int,
    config: MinerConfig,
    size: int,
) -> dict[tuple[int, ...], int]:
    """Apriori join + prune from the frequent bodies of one level."""
    keys = sorted(level)
    next_level: dict[tuple[int, ...], int] = {}
    candidates = 0
    for i, left in enumerate(keys):
        for right in keys[i + 1 :]:
            if left[:-1] != right[:-1]:
                break  # sorted keys: the shared prefix can only shrink
            candidate = left + (right[-1],)
            candidates += 1
            if candidates > config.max_candidates_per_level:
                raise MiningError(
                    f"candidate explosion at body size {size + 1} "
                    f"(> {config.max_candidates_per_level}); raise min_support "
                    "or lower max_body_size"
                )
            if size == 1 and not _pair_is_ancestor_free(index, left[0], right[0]):
                continue
            if size > 1 and not _all_subsets_frequent(candidate, level):
                continue
            mask = level[left] & level[right]
            if mask.bit_count() >= minsup_count:
                next_level[candidate] = mask
    return next_level


def _pair_is_ancestor_free(index: TransactionIndex, a: int, b: int) -> bool:
    """Definition 4's constraint checked on a candidate pair."""
    ga, gb = index.gsales[a], index.gsales[b]
    return not (
        index.moa.generalizes_or_equal(ga, gb)
        or index.moa.generalizes_or_equal(gb, ga)
    )


def _all_subsets_frequent(
    candidate: tuple[int, ...], level: dict[tuple[int, ...], int]
) -> bool:
    """Standard Apriori prune: every (k−1)-subset must be frequent.

    The two subsets obtained by dropping one of the last two elements are
    the join parents and known frequent; checking the rest suffices.
    """
    for drop in range(len(candidate) - 2):
        subset = candidate[:drop] + candidate[drop + 1 :]
        if subset not in level:
            return False
    return True


def _build_default_rule(index: TransactionIndex, order: int) -> ScoredRule:
    """The default rule ``∅ → g`` maximizing ``Prof_re`` (Section 3.1).

    Matched transactions are the whole database, so maximizing ``Prof_re``
    reduces to maximizing total credited profit.  Ties break toward the
    head generated first: candidate heads are enumerated
    most-specific-first (deepest in the per-item MOA(H) sub-hierarchy,
    i.e. least favorable price first), mirroring the "generated before"
    tie-breaker applied to mined rules — so a tie keeps the most
    *specific* head, not the lexicographically first one.
    """
    best_hid: int | None = None
    best_profit = -math.inf
    for hid in index.candidate_head_ids:
        total = sum(
            index.hit_profit(pos, hid)
            for pos in TransactionIndex.iter_bits(index.head_hits_mask(hid))
        )
        if total > best_profit:  # strict: a tie keeps the earlier, more
            best_profit = total  # specific head in generation order
            best_hid = hid
    if best_hid is None:  # pragma: no cover - catalog validation prevents this
        raise MiningError("no candidate heads available for the default rule")
    hits_mask = index.head_hits_mask(best_hid)
    rule = Rule(body=frozenset(), head=index.gsales[best_hid], order=order)
    stats = RuleStats(
        n_matched=index.n,
        n_hits=hits_mask.bit_count(),
        rule_profit=best_profit,
        n_total=index.n,
    )
    return ScoredRule(rule=rule, stats=stats)
