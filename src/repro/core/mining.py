"""Generalized association-rule mining over MOA(H) (Section 3.1).

The miner follows the multi-level association mining of Srikant & Agrawal
(VLDB'95) / Han & Fu (VLDB'95) that the paper adopts, specialised to profit
mining's rule shape: bodies are ancestor-free sets of generalized non-target
sales, heads are single ``⟨target item, promotion code⟩`` pairs.

Implementation notes
--------------------
* Every transaction is *extended* once: its non-target sales are replaced by
  the set of all their generalizations under MOA(H) (the root concept
  excluded), and its target sale by the set of heads that would hit it.  A
  body matches a transaction iff it is a subset of the extended set, so all
  support counting reduces to set intersections.
* Tid-sets are Python integers used as bitmasks; intersection is ``&`` and
  support is ``int.bit_count()``, which keeps the level-wise Apriori passes
  fast without any native-code dependency.  On large databases the
  selectable *dense* backend (``MinerConfig.backend``) mirrors the masks
  into the chunked ``uint64`` matrices of
  :mod:`repro.core.engine.kernel` and evaluates whole candidate batches
  as vectorized AND + popcount; the big-int path remains the
  no-dependency fallback and the two backends produce bit-identical
  results (see ``docs/ALGORITHMS.md`` §9).
* Candidate bodies are kept ancestor-free (Definition 4).  Rejecting
  subsuming *pairs* at level 2 suffices: any larger body containing such a
  pair fails the standard all-subsets-frequent check.
* The credited profit of each (transaction, head) pair is precomputed with
  the configured :class:`~repro.core.profit.ProfitModel`, so mining under
  saving MOA, buying MOA or binary (CONF) profit differs only in one table.

The :class:`TransactionIndex` built here is reused verbatim by the covering
tree and the cut-optimal pruning, which need the same masks and profit
tables.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.engine.kernel import (
    BACKENDS,
    DenseBitsetKernel,
    map_chunks,
    resolve_backend,
    resolve_jobs,
)
from repro.core.engine.symbols import SymbolTable
from repro.core.generalized import GKind, GSale
from repro.core.moa import MOAHierarchy
from repro.core.profit import ProfitModel
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.core.sales import TransactionDB
from repro.errors import MiningError, ValidationError
from repro.obs import trace as obs

__all__ = [
    "MinerConfig",
    "TransactionIndex",
    "MiningResult",
    "mine_rules",
    "filter_mining_result",
]


#: Dense-backend batch sizes.  Join chunks bound peak memory — a chunk
#: gathers two ``(chunk, n_chunks)`` uint64 matrices (~16 MB each at 1024
#: pairs × 100k transactions) no matter how many candidates a level has;
#: emission chunks amortize the per-batch Python overhead while keeping
#: the (bodies × heads) count matrix small.  Both are pure performance
#: knobs: results are identical at any chunking.
_JOIN_CHUNK = 1024
_EMIT_CHUNK = 256


def _positions_to_mask(positions: list[int], n: int) -> int:
    """Bitmask with the given transaction positions set (one conversion).

    Builds a little-endian byte buffer and converts once — O(n) instead of
    the O(n²) of repeated single-bit ORs on a growing int.
    """
    buffer = bytearray((n + 7) // 8)
    for pos in positions:
        buffer[pos >> 3] |= 1 << (pos & 7)
    return int.from_bytes(buffer, "little")


@dataclass(frozen=True)
class MinerConfig:
    """Thresholds and limits for rule generation.

    Parameters
    ----------
    min_support:
        Minimum ``Supp(body ∪ {head})`` as a fraction of the database.  The
        paper requires this for support-based pruning.
    min_confidence:
        Optional minimum ``Conf``; 0 disables (the paper folds confidence
        into ``Prof_re`` instead of thresholding it).
    min_rule_profit:
        Optional minimum ``Prof_ru``; valid as a pruning threshold only when
        all target items have non-negative profit (Section 3.1).
    max_body_size:
        Cap on ``|body|``; bounds the level-wise search.
    max_candidates_per_level:
        Safety valve against candidate explosions at very low supports.
    backend:
        Support-counting backend: ``"bigint"`` (Python integer bitmasks,
        no dependencies), ``"dense"`` (the chunked ``uint64`` kernel of
        :mod:`repro.core.engine.kernel`, requires the ``numpy`` extra) or
        ``"auto"`` (dense on databases of at least
        :data:`~repro.core.engine.kernel.DENSE_MIN_TRANSACTIONS`
        transactions when numpy is available, big-int otherwise).  The
        backends produce bit-identical results.
    n_jobs:
        Worker threads for within-mine candidate-batch evaluation on the
        dense backend (``None``: ``$REPRO_JOBS`` or sequential).  A pure
        performance knob — results are identical at any setting.  The
        big-int backend ignores it: its per-candidate work happens under
        the GIL, where threads cannot help.  The out-of-core backend
        uses it to mine partitions in parallel during SON pass 1.
    partition_size:
        Transactions per partition for the out-of-core backend (``None``:
        :data:`~repro.core.engine.store.DEFAULT_PARTITION_SIZE`).  A pure
        performance/memory knob — results are identical at any
        partitioning.
    max_resident_mb:
        Resident-memory budget for the out-of-core backend's loaded
        partitions (``None``: the store's default).  Loaded partitions
        are LRU-evicted above it; purely a memory knob.
    store_dir:
        Where the out-of-core backend spills its partitioned store
        (``None``: a temporary directory deleted with the mining
        result).  Point it at a persistent directory to enable
        incremental refresh (:func:`repro.core.partition.refresh_store`)
        later.
    """

    min_support: float = 0.01
    min_confidence: float = 0.0
    min_rule_profit: float = 0.0
    max_body_size: int = 3
    max_candidates_per_level: int = 2_000_000
    algorithm: str = "apriori"
    backend: str = "auto"
    n_jobs: int | None = None
    partition_size: int | None = None
    max_resident_mb: float | None = None
    store_dir: str | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("apriori", "fpgrowth"):
            raise ValidationError(
                f"algorithm must be 'apriori' or 'fpgrowth', got "
                f"{self.algorithm!r}"
            )
        if self.backend not in BACKENDS:
            raise ValidationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.n_jobs is not None and self.n_jobs < 1:
            raise ValidationError(
                f"n_jobs must be >= 1 (or None for $REPRO_JOBS), got {self.n_jobs}"
            )
        if not 0 < self.min_support <= 1:
            raise ValidationError(
                f"min_support must be in (0, 1], got {self.min_support}"
            )
        if not 0 <= self.min_confidence <= 1:
            raise ValidationError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if self.min_rule_profit < 0:
            raise ValidationError(
                f"min_rule_profit must be non-negative, got {self.min_rule_profit}"
            )
        if self.max_body_size < 1:
            raise ValidationError(
                f"max_body_size must be at least 1, got {self.max_body_size}"
            )
        if self.max_candidates_per_level < 1:
            raise ValidationError("max_candidates_per_level must be positive")
        if self.partition_size is not None and self.partition_size < 1:
            raise ValidationError(
                f"partition_size must be >= 1, got {self.partition_size}"
            )
        if self.max_resident_mb is not None and self.max_resident_mb <= 0:
            raise ValidationError(
                f"max_resident_mb must be positive, got {self.max_resident_mb}"
            )


@dataclass
class TransactionIndex:
    """Preprocessed, interned view of a transaction database.

    Generalized sales are named by the dense ids of a shared
    :class:`~repro.core.engine.symbols.SymbolTable` (sorted by their
    canonical key, so ids are deterministic); the interning, subsumption
    tables and candidate-head order are borrowed from the table rather
    than rebuilt per database — every fold and profit-model twin over one
    generalization engine shares them.  All masks index transactions by
    their position in ``db.transactions``.
    """

    db: TransactionDB
    moa: MOAHierarchy
    profit_model: ProfitModel
    #: The shared symbol table; defaults to the MOA engine's canonical one
    #: (:meth:`SymbolTable.of`).  Injecting a different table is only for
    #: tests — it must name the same world.
    symbols: SymbolTable | None = None
    n: int = field(init=False)
    ext_sets: list[frozenset[int]] = field(init=False, default_factory=list)
    body_masks: dict[int, int] = field(init=False, default_factory=dict)
    head_sets: list[frozenset[int]] = field(init=False, default_factory=list)
    head_masks: dict[int, int] = field(init=False, default_factory=dict)
    head_profits: list[dict[int, float]] = field(init=False, default_factory=list)
    #: Frequent-body discovery results keyed by the structural parameters
    #: (minsup count, body-size cap, candidate cap, algorithm).  Body
    #: discovery never looks at credited profit, so profit-model twins
    #: share this dict by reference and a CONF mine reuses the level-wise
    #: search its PROF sibling already ran.
    body_cache: dict[tuple, tuple[list[tuple[tuple[int, ...], int]], int]] = field(
        init=False, default_factory=dict, repr=False, compare=False
    )
    #: Emitted-rule skeletons keyed by (discovery key, minsup count,
    #: min confidence).  When no rule-profit threshold applies, which
    #: rules pass is decided entirely by structural counts, so the rule
    #: list (bodies, heads, orders, masks — everything except the credited
    #: profit) is identical across profit models and replayed by twins.
    emit_cache: dict[
        tuple, list[tuple["Rule", tuple[int, ...], int, int, int, int, int]]
    ] = field(init=False, default_factory=dict, repr=False, compare=False)
    #: Per-body interned closures (union of the members' closure tables),
    #: reused by every covering-tree build over this index.
    closure_cache: dict[tuple[int, ...], frozenset[int]] = field(
        init=False, default_factory=dict, repr=False, compare=False
    )
    #: Per-body id tuples frozen once (``frozenset(ids)``), companion to
    #: ``closure_cache`` for the covering tree's interning pass.
    frozen_body_cache: dict[tuple[int, ...], frozenset[int]] = field(
        init=False, default_factory=dict, repr=False, compare=False
    )
    #: ``Prof_pr`` memo keyed by ``(cf, head id, cover mask)``, shared by
    #: every pruning pass over this index: sweep levels derived from one
    #: base mine re-evaluate many identical (head, coverage) pairs.  Profit
    #: values depend on this index's profit model, so the cache is *not*
    #: shared with :meth:`with_profit_model` twins.
    projected_profit_cache: dict[tuple[float, int, int], float] = field(
        init=False, default_factory=dict, repr=False, compare=False
    )
    #: Holder for the lazily built :class:`DenseBitsetKernel` (key
    #: ``"kernel"``).  A dict rather than a plain attribute so
    #: profit-model twins share the kernel *by reference* no matter which
    #: twin builds it first — the kernel mirrors the structural masks
    #: only, never credited profit.
    kernel_cache: dict[str, DenseBitsetKernel] = field(
        init=False, default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.n = len(self.db)
        if self.n == 0:
            raise MiningError("cannot mine an empty transaction database")
        if self.symbols is None:
            self.symbols = SymbolTable.of(self.moa)
        elif self.symbols.moa.use_moa != self.moa.use_moa:
            raise MiningError(
                "injected SymbolTable disagrees with the MOA engine on use_moa"
            )
        self._index_transactions()

    # ------------------------------------------------------------------
    # Views borrowed from the shared symbol table
    # ------------------------------------------------------------------
    @property
    def gsales(self) -> list[GSale]:
        """Dense id → generalized sale (the shared table's symbol list)."""
        assert self.symbols is not None
        return self.symbols.gsales

    @property
    def gsale_ids(self) -> dict[GSale, int]:
        """Generalized sale → dense id (the shared table's interning)."""
        assert self.symbols is not None
        return self.symbols.ids

    @property
    def candidate_head_ids(self) -> list[int]:
        """Recommendable head ids, most-specific-first.

        The order realizes the paper's "generated before" tie-breaker:
        heads are enumerated deepest in the per-item MOA(H) sub-hierarchy
        first (least favorable price first), so when two heads tie on
        recommendation profit and support — systematic under MOA, where
        every cheaper price hits a superset — the most specific
        recommendation wins.
        """
        assert self.symbols is not None
        return self.symbols.candidate_head_ids

    @property
    def ancestor_ids(self) -> list[frozenset[int]]:
        """Per-gsale proper-ancestor id sets (shared subsumption table)."""
        assert self.symbols is not None
        return self.symbols.ancestor_ids

    @property
    def closure_ids(self) -> list[frozenset[int]]:
        """Per-gsale reflexive closure id sets (shared subsumption table)."""
        assert self.symbols is not None
        return self.symbols.closure_ids

    def _index_transactions(self) -> None:
        # Accumulate per-gsale transaction positions first and build each
        # bitmask once at the end: OR-ing single bits into a growing Python
        # int copies the whole mask every time (quadratic at 100K
        # transactions), whereas one bytes conversion per gsale is linear.
        assert self.symbols is not None
        sale_ids = self.symbols.sale_ids
        head_ids = self.symbols.head_ids
        gsales = self.symbols.gsales
        credited = self.profit_model.credited_profit
        catalog = self.db.catalog
        body_positions: dict[int, list[int]] = {}
        head_positions: dict[int, list[int]] = {}
        for pos, transaction in enumerate(self.db):
            ext_ids: set[int] = set()
            for sale in transaction.nontarget_sales:
                ext_ids.update(sale_ids(sale))
            ext = frozenset(ext_ids)
            self.ext_sets.append(ext)
            for gid in ext:
                body_positions.setdefault(gid, []).append(pos)

            heads = frozenset(head_ids(transaction.target_sale))
            self.head_sets.append(heads)
            profits: dict[int, float] = {}
            for hid in heads:
                head_positions.setdefault(hid, []).append(pos)
                profits[hid] = credited(
                    gsales[hid], transaction.target_sale, catalog
                )
            self.head_profits.append(profits)
        self.body_masks = {
            gid: _positions_to_mask(positions, self.n)
            for gid, positions in body_positions.items()
        }
        self.head_masks = {
            hid: _positions_to_mask(positions, self.n)
            for hid, positions in head_positions.items()
        }

    # ------------------------------------------------------------------
    @classmethod
    def with_profit_model(
        cls, base: "TransactionIndex", profit_model: ProfitModel
    ) -> "TransactionIndex":
        """A twin of ``base`` rebound to a different profit model.

        Everything *structural* — gsale interning, extended transaction
        sets, body/head bitmasks, the candidate-head order — depends only
        on (db, MOA), not on how hit profit is credited, so it is shared
        by reference with ``base``; only the per-transaction credited-
        profit tables are recomputed.  This is how PROF and CONF variants
        over the same fold split the cost of one index build.

        The shared structures are treated as immutable after
        construction; neither twin may mutate them.
        """
        index = cls.__new__(cls)
        index.db = base.db
        index.moa = base.moa
        index.profit_model = profit_model
        index.symbols = base.symbols
        index.n = base.n
        index.ext_sets = base.ext_sets
        index.body_masks = base.body_masks
        index.head_sets = base.head_sets
        index.head_masks = base.head_masks
        index.body_cache = base.body_cache
        index.emit_cache = base.emit_cache
        index.closure_cache = base.closure_cache
        index.frozen_body_cache = base.frozen_body_cache
        index.kernel_cache = base.kernel_cache
        # Not shared: projected profits credit hits with the profit model.
        index.projected_profit_cache = {}
        index.head_profits = [
            {
                hid: profit_model.credited_profit(
                    base.gsales[hid], transaction.target_sale, base.db.catalog
                )
                for hid in heads
            }
            for transaction, heads in zip(base.db, base.head_sets)
        ]
        return index

    # ------------------------------------------------------------------
    # Queries shared with covering / pruning
    # ------------------------------------------------------------------
    def kernel(self) -> DenseBitsetKernel:
        """The dense chunked-bitset mirror of this index's masks.

        Built lazily on first use and cached (shared by reference with
        profit-model twins — the kernel is structural).  Raises
        :class:`~repro.errors.MiningError` when numpy is unavailable;
        callers gate on the resolved backend, not on this method.
        """
        kernel = self.kernel_cache.get("kernel")
        if kernel is None:
            obs.cache_event("kernel.mask_matrix", misses=1)
            kernel = DenseBitsetKernel(self.n, self.body_masks)
            self.kernel_cache["kernel"] = kernel
        else:
            obs.cache_event("kernel.mask_matrix", hits=1)
        return kernel

    def mask_positions(self, mask: int) -> list[int]:
        """Set-bit positions of ``mask``, ascending (list form).

        Same positions in the same order as :meth:`iter_bits`; when the
        dense kernel has been built the extraction is vectorized
        (``unpackbits`` instead of a per-bit Python loop), which matters
        for pruning's per-node coverage scans on large databases.
        Consumers summing credited profit over the positions accumulate
        in the same order either way, so the floats are identical.
        """
        kernel = self.kernel_cache.get("kernel")
        if kernel is not None:
            return kernel.positions(mask).tolist()
        return list(self.iter_bits(mask))

    def body_mask(self, body_ids: Sequence[int]) -> int:
        """Bitmask of transactions matched by the body ``body_ids``.

        The empty body matches every transaction (the default rule's
        semantics).  Non-empty bodies start from the first gsale's mask
        rather than a freshly built all-ones mask, which would cost an
        O(n)-bit allocation per call on large databases.  Multi-member
        bodies route through the dense kernel when it is already built —
        the chunked AND avoids one big-int allocation per member.
        """
        if not body_ids:
            return (1 << self.n) - 1
        if len(body_ids) > 1:
            kernel = self.kernel_cache.get("kernel")
            if kernel is not None:
                return kernel.intersect_to_int(body_ids)
        mask = self.body_masks.get(body_ids[0], 0)
        for gid in body_ids[1:]:
            if not mask:
                return 0
            mask &= self.body_masks.get(gid, 0)
        return mask

    def gsale_id(self, gsale: GSale) -> int:
        """Interned id of ``gsale`` (raises for unseen generalized sales)."""
        try:
            return self.gsale_ids[gsale]
        except KeyError:
            raise MiningError(
                f"generalized sale {gsale.describe()} not present in index"
            ) from None

    def hit_profit(self, transaction_pos: int, head_id: int) -> float:
        """Credited profit of ``head_id`` on transaction ``transaction_pos``.

        Zero when the head does not hit the transaction's target sale,
        matching the paper's ``p(r, t)``.
        """
        return self.head_profits[transaction_pos].get(head_id, 0.0)

    def head_hits_mask(self, head_id: int) -> int:
        """Bitmask of transactions whose target sale ``head_id`` hits."""
        return self.head_masks.get(head_id, 0)

    def recorded_profit(self, transaction_pos: int) -> float:
        """Recorded profit of the transaction's target sale."""
        return self.db[transaction_pos].recorded_target_profit(self.db.catalog)

    @staticmethod
    def iter_bits(mask: int) -> Iterator[int]:
        """Yield the positions of the set bits of ``mask``, ascending."""
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low


@dataclass
class MiningResult:
    """Output of :func:`mine_rules`: the rule set ``R`` plus shared state."""

    index: TransactionIndex
    scored_rules: list[ScoredRule]
    default_rule: ScoredRule
    body_tid_masks: dict[int, int]  # rule.order -> matched-transaction mask
    frequent_body_count: int
    #: rule.order -> interned body ids (the default rule maps to ``()``).
    #: Lets downstream passes (covering) reuse the miner's interning
    #: instead of re-hashing GSale objects; ``None`` for results built by
    #: hand without the mapping.
    body_ids_by_order: dict[int, tuple[int, ...]] | None = None
    #: ``all_rules`` in MPF rank order, filled in by the first pass that
    #: sorts them (covering) and reused by every later consumer.  Filtered
    #: results derive theirs from the base run's order — renumbering
    #: preserves the rank order, so no re-sort is needed per sweep level.
    ranked_cache: list[ScoredRule] | None = None
    #: Orders of rules known *not* to be dominated (covering's step-1
    #: survivors), recorded by ``build_covering_tree`` and translated by
    #: :func:`filter_mining_result`.  Sound under support raising: a
    #: dominator in the filtered set is also a base rule, and transitivity
    #: lifts any base dominator to a base *surviving* dominator, so a rule
    #: undominated at the base support stays undominated at every higher
    #: level.  ``None`` means no covering pass has run yet.
    undominated_orders: frozenset[int] | None = None
    #: The absolute support count this result was mined (or filtered) at:
    #: ``⌈min_support · n⌉``, floored at 1.  :func:`filter_mining_result`
    #: refuses to derive a result *below* this threshold — the base run
    #: never generated those rules.  ``None`` on results assembled by
    #: hand, which disables the guard.
    minsup_count: int | None = None

    @property
    def all_rules(self) -> list[ScoredRule]:
        """Mined rules followed by the default rule (generation order)."""
        return [*self.scored_rules, self.default_rule]


def mine_rules(
    db: TransactionDB,
    moa: MOAHierarchy,
    profit_model: ProfitModel,
    config: MinerConfig,
    index: TransactionIndex | None = None,
) -> MiningResult:
    """Generate the rule set ``R`` of Section 3.1.

    Runs a level-wise search for frequent ancestor-free bodies over the
    extended transactions, emits every (body, head) combination passing the
    support / confidence / rule-profit thresholds, and appends the default
    rule ``∅ → g`` with ``g`` maximizing ``Prof_re(∅ → g)``.

    ``index`` injects a prebuilt :class:`TransactionIndex` (e.g. from a
    :class:`~repro.core.index_cache.FitCache`), skipping the extension /
    interning / mask-building pass — the dominant fixed cost when the same
    fold is mined repeatedly.  It must have been built over exactly this
    ``db`` with this ``profit_model``.
    """
    trace = obs.current_trace()
    if trace is None:
        return _mine_rules_impl(db, moa, profit_model, config, index)
    with trace.span("mine", algorithm=config.algorithm):
        result = _mine_rules_impl(db, moa, profit_model, config, index)
        trace.count("mine.rules_emitted", len(result.scored_rules))
        trace.count("mine.frequent_bodies", result.frequent_body_count)
    return result


def _mine_rules_impl(
    db: TransactionDB,
    moa: MOAHierarchy,
    profit_model: ProfitModel,
    config: MinerConfig,
    index: TransactionIndex | None,
) -> MiningResult:
    if config.backend == "ooc":
        # The out-of-core SON miner never builds an in-RAM index — that
        # is its whole point — so an injected one cannot be honoured.
        if index is not None:
            raise MiningError(
                "backend='ooc' mines from a partitioned store and cannot "
                "reuse an injected in-RAM TransactionIndex"
            )
        from repro.core.partition import mine_partitioned_db

        return mine_partitioned_db(db, moa, profit_model, config)
    if index is None:
        index = TransactionIndex(db=db, moa=moa, profit_model=profit_model)
    elif index.db is not db:
        raise MiningError(
            "injected TransactionIndex was built over a different database"
        )
    elif index.profit_model.name != profit_model.name:
        raise MiningError(
            f"injected TransactionIndex credits profit with "
            f"{index.profit_model.name!r}, not {profit_model.name!r}"
        )
    elif index.moa.use_moa != moa.use_moa:
        raise MiningError(
            "injected TransactionIndex disagrees with the miner on use_moa"
        )
    minsup_count = max(1, math.ceil(config.min_support * index.n))

    # Support-counting backend for this mine.  The dense kernel mirrors the
    # big-int masks into chunked uint64 matrices (built once per index and
    # shared with twins); ``n_jobs`` only matters there — the big-int path
    # never leaves the GIL, so threads cannot help it.
    backend = resolve_backend(config.backend, index.n)
    obs.annotate(backend=backend)
    obs.count(f"mine.backend.{backend}")
    kernel = index.kernel() if backend == "dense" else None
    n_jobs = resolve_jobs(config.n_jobs) if kernel is not None else 1
    positions_of = index.mask_positions

    frequent_heads = [
        hid
        for hid in index.candidate_head_ids
        if index.head_hits_mask(hid).bit_count() >= minsup_count
    ]

    # Per-head profit rows for the emission loop.  ``prof_at`` re-keys the
    # per-transaction credit tables by position so the hot sum is one dict
    # per head instead of one per transaction; ``totals`` pre-adds each
    # head's full credit in the same ascending-position order, so a body
    # that matches every hit of a head reuses the sum bit-for-bit.
    head_prof_at: dict[int, dict[int, float]] = {}
    head_totals: dict[int, tuple[int, float]] = {}
    profits_nonnegative = True
    for hid in frequent_heads:
        prof_at = {
            pos: index.head_profits[pos].get(hid, 0.0)
            for pos in positions_of(index.head_hits_mask(hid))
        }
        head_prof_at[hid] = prof_at
        head_totals[hid] = (len(prof_at), sum(prof_at.values()))
        if profits_nonnegative and prof_at and min(prof_at.values()) < 0.0:
            profits_nonnegative = False
    # Distinct (head, hit-mask) pairs are far rarer than (body, head)
    # candidates — many bodies intersect a head identically — so the
    # credited-profit sum is memoized on the pair.
    profit_memo: dict[tuple[int, int], float] = {}

    scored: list[ScoredRule] = []
    body_tid_masks: dict[int, int] = {}
    body_ids_by_order: dict[int, tuple[int, ...]] = {}
    order = 0
    frequent_body_count = 0

    # Hot-loop tables: promo-form item per gsale id (None otherwise), the
    # frequent heads with their masks/nodes, and local aliases that keep
    # attribute lookups out of the per-candidate path.
    gsales = index.gsales
    promo_node = [
        g.node if g.kind is GKind.PROMO else None for g in gsales
    ]
    head_rows = [
        (hid, index.head_hits_mask(hid), gsales[hid].node)
        for hid in frequent_heads
    ]
    min_confidence = config.min_confidence
    min_rule_profit = config.min_rule_profit
    n_total = index.n

    def rule_profit_of(hid: int, hit_mask: int, n_hits: int) -> float:
        head_count, head_total = head_totals[hid]
        if n_hits == head_count:
            return head_total
        memo_key = (hid, hit_mask)
        cached = profit_memo.get(memo_key)
        if cached is None:
            # ``positions_of`` yields the same ascending order as
            # ``iter_bits``, so the sequential sum is the same float on
            # either backend.
            cached = sum(
                map(head_prof_at[hid].__getitem__, positions_of(hit_mask))
            )
            profit_memo[memo_key] = cached
        return cached

    # Skeletons recorded for profit-model twins (see ``emit_cache``).
    skeletons: list[tuple[Rule, tuple[int, ...], int, int, int, int, int]] = []

    def emit_rules_for_body(
        body_ids: tuple[int, ...],
        body_mask: int,
        hit_counts: Sequence[int] | None = None,
    ) -> None:
        nonlocal order
        n_matched = body_mask.bit_count()
        body_gsales: frozenset[GSale] | None = None
        # Items the body mentions in promo form.  A head for such an item
        # would violate the body/head separation that Rule.__post_init__
        # enforces — possible when a generalization engine lifts target
        # promo-forms into basket extensions — so the combination is
        # skipped rather than aborting the whole mining run.
        blocked_items = {
            node for gid in body_ids if (node := promo_node[gid]) is not None
        }
        for col, (hid, head_mask, head_node) in enumerate(head_rows):
            if head_node in blocked_items:
                continue
            if hit_counts is None:
                hit_mask = body_mask & head_mask
                n_hits = hit_mask.bit_count()
                if n_hits < minsup_count:
                    continue
                if n_matched and n_hits / n_matched < min_confidence:
                    continue
            else:
                # The dense driver already counted every (body, head)
                # pair; the exact hit mask is only materialized for the
                # few threshold survivors.
                n_hits = hit_counts[col]
                if n_hits < minsup_count:
                    continue
                if n_matched and n_hits / n_matched < min_confidence:
                    continue
                hit_mask = body_mask & head_mask
            rule_profit = rule_profit_of(hid, hit_mask, n_hits)
            if rule_profit < min_rule_profit:
                continue
            if body_gsales is None:
                body_gsales = frozenset(gsales[gid] for gid in body_ids)
            rule = Rule(body=body_gsales, head=gsales[hid], order=order)
            stats = RuleStats(
                n_matched=n_matched,
                n_hits=n_hits,
                rule_profit=rule_profit,
                n_total=n_total,
            )
            body_tid_masks[order] = body_mask
            body_ids_by_order[order] = body_ids
            scored.append(ScoredRule(rule=rule, stats=stats))
            skeletons.append(
                (rule, body_ids, hid, n_matched, n_hits, body_mask, hit_mask)
            )
            order += 1

    # Frequent-body discovery is independent of the profit model, so its
    # generation-ordered output is cached on the (structural) index and
    # shared between profit-model twins mining the same fold.
    discovery_key = (
        minsup_count,
        config.max_body_size,
        config.max_candidates_per_level,
        config.algorithm,
    )
    discovered = index.body_cache.get(discovery_key)
    if discovered is None:
        # A cached run at a *lower* threshold subsumes this one: frequent
        # bodies here are exactly its bodies meeting the raised count, in
        # the same generation order (filtering a sorted key set preserves
        # both the per-level sort and the join order, and a search that
        # did not explode at the lower threshold cannot explode above it).
        for (count, *rest), (bodies, _) in index.body_cache.items():
            if count <= minsup_count and tuple(rest) == discovery_key[1:]:
                ordered = [
                    (body, mask)
                    for body, mask in bodies
                    if mask.bit_count() >= minsup_count
                ]
                discovered = (ordered, len(ordered))
                index.body_cache[discovery_key] = discovered
                break
    # The thread pool (dense backend only) is shared by the join and the
    # emission drivers; numpy's AND/popcount loops release the GIL, so the
    # threads get real parallelism over the shared matrices.
    executor = (
        ThreadPoolExecutor(max_workers=n_jobs)
        if kernel is not None and n_jobs > 1
        else None
    )
    try:
        if discovered is None:
            obs.cache_event("mine.body_cache", misses=1)
            with obs.span("mine.discover"):
                ordered_bodies: list[tuple[tuple[int, ...], int]] = []
                if config.algorithm == "fpgrowth":
                    from repro.core.fpgrowth import frequent_bodies_fpgrowth

                    bodies = frequent_bodies_fpgrowth(
                        index, minsup_count, config, kernel=kernel
                    )
                    frequent_body_count = len(bodies)
                    ordered_bodies.extend(bodies.items())
                elif kernel is not None:
                    ordered_bodies, frequent_body_count = _discover_apriori_dense(
                        index, kernel, minsup_count, config, executor, n_jobs
                    )
                else:
                    # Level 1: frequent single generalized non-target sales.
                    level: dict[tuple[int, ...], int] = {}
                    for gid in sorted(index.body_masks):
                        mask = index.body_masks[gid]
                        if mask.bit_count() >= minsup_count:
                            level[(gid,)] = mask
                    frequent_body_count += len(level)
                    ordered_bodies.extend(level.items())
                    obs.count("mine.level1.candidates", len(index.body_masks))
                    obs.count("mine.level1.frequent", len(level))

                    size = 1
                    while level and size < config.max_body_size:
                        level = _next_level(
                            index, level, minsup_count, config, size
                        )
                        frequent_body_count += len(level)
                        ordered_bodies.extend(level.items())
                        size += 1
                index.body_cache[discovery_key] = (
                    ordered_bodies,
                    frequent_body_count,
                )
        else:
            ordered_bodies, frequent_body_count = discovered
            obs.cache_event("mine.body_cache", hits=1)

        # When the rule-profit threshold can never fire (no positive
        # threshold, no negative credits), which (body, head) pairs become
        # rules is decided entirely by structural counts — identical for
        # every profit model over this index — so a twin replays the
        # recorded skeletons (sharing the frozen Rule objects) and only
        # re-credits profit.  The same guard gates both storing and
        # replaying, each side checking its own credits.
        emit_key = (discovery_key, min_confidence)
        replayable = min_rule_profit <= 0 and profits_nonnegative
        replay = index.emit_cache.get(emit_key) if replayable else None
        if replay is not None:
            obs.cache_event("mine.emit_cache", hits=1)
            for rule, body_ids, hid, n_matched, n_hits, body_mask, hit_mask in replay:
                # The counts were validated when the skeleton was first
                # emitted and only the credited profit changes, so the stats
                # are assembled without re-running ``__post_init__``.
                stats = _stats_of(
                    n_matched, n_hits, rule_profit_of(hid, hit_mask, n_hits), n_total
                )
                body_tid_masks[rule.order] = body_mask
                body_ids_by_order[rule.order] = body_ids
                scored.append(ScoredRule(rule=rule, stats=stats))
            order = len(scored)
        else:
            obs.cache_event("mine.emit_cache", misses=1)
            with obs.span("mine.emit"):
                if kernel is not None and head_rows:
                    # Dense emission: one AND + popcount per head over a
                    # whole batch of body rows replaces a big-int ``&`` +
                    # ``bit_count()`` per (body, head) candidate; the
                    # Python filter loop below then only touches counts,
                    # preserving head order and the promo-guard semantics
                    # exactly.
                    head_matrix = kernel.pack_masks(
                        head_mask for _, head_mask, _ in head_rows
                    )

                    def count_chunk(start: int, stop: int) -> list[list[int]]:
                        rows = kernel.pack_masks(
                            mask for _, mask in ordered_bodies[start:stop]
                        )
                        return kernel.head_hit_counts(rows, head_matrix).tolist()

                    chunks = map_chunks(
                        count_chunk,
                        len(ordered_bodies),
                        _EMIT_CHUNK,
                        executor,
                        n_jobs,
                    )
                    for chunk_index, chunk_counts in enumerate(chunks):
                        base = chunk_index * _EMIT_CHUNK
                        for offset, hit_counts in enumerate(chunk_counts):
                            body_ids, mask = ordered_bodies[base + offset]
                            emit_rules_for_body(body_ids, mask, hit_counts)
                else:
                    for body_ids, mask in ordered_bodies:
                        emit_rules_for_body(body_ids, mask)
            if replayable:
                index.emit_cache[emit_key] = skeletons
    finally:
        if executor is not None:
            executor.shutdown(wait=True)

    default_rule = _build_default_rule(index, order, head_totals)
    body_ids_by_order[order] = ()
    return MiningResult(
        index=index,
        scored_rules=scored,
        default_rule=default_rule,
        body_tid_masks=body_tid_masks,
        frequent_body_count=frequent_body_count,
        body_ids_by_order=body_ids_by_order,
        minsup_count=minsup_count,
    )


def filter_mining_result(
    result: MiningResult, min_support: float
) -> MiningResult:
    """Derive the mining result at a *higher* minimum support by filtering.

    Itemset support is anti-monotone in the threshold: every body (and
    every (body, head) combination) frequent at ``min_support`` is also
    frequent at the lower support ``result`` was mined with, and the
    Apriori/FP-growth searches are complete over frequent bodies.  The rule
    set at ``min_support`` is therefore exactly the subset of ``result``'s
    rules whose hit count meets the raised threshold — ``n_hits ≥
    ⌈min_support · n⌉`` implies the body, head and combination supports all
    do (``n_hits ≤ min(n_matched, head support)``) — with generation order
    renumbered consecutively.  Confidence and rule-profit thresholds do not
    depend on the support level, so they are inherited from the base run.
    This is what lets a support sweep mine each (system, fold) cell once at
    the sweep's minimum and derive every higher level for free.

    The derived result is *identical* to mining at ``min_support``
    directly (same rules, stats, orders, tid masks and default rule)
    except for ``frequent_body_count``, which here counts only the
    distinct bodies among the surviving rules — a lower bound, since a
    direct run also counts frequent bodies that emit no rule.

    ``result`` must have been mined with the same configuration apart from
    ``min_support``; raising past the base threshold is the only supported
    direction — asking for a support whose absolute count falls *below*
    the base run's raises :class:`~repro.errors.MiningError`, since the
    base run never generated those rules and silently returning its rule
    set would present an incomplete result as complete.
    """
    index = result.index
    minsup_count = max(1, math.ceil(min_support * index.n))
    if result.minsup_count is not None and minsup_count < result.minsup_count:
        raise MiningError(
            f"cannot filter a mining result down to min_support="
            f"{min_support} (count {minsup_count}): the base run was mined "
            f"at count {result.minsup_count} and never generated the "
            f"rules below it; re-mine at the lower support instead"
        )
    base_ids = result.body_ids_by_order
    scored: list[ScoredRule] = []
    body_tid_masks: dict[int, int] = {}
    body_ids_by_order: dict[int, tuple[int, ...]] | None = (
        {} if base_ids is not None else None
    )
    # Orders are assigned consecutively at generation time (default last),
    # so base order → filtered rule is a flat list, not a dict.
    n_orders = result.default_rule.rule.order + 1
    if result.scored_rules:
        n_orders = max(n_orders, result.scored_rules[-1].rule.order + 1)
    new_of_base: list[ScoredRule | None] = [None] * n_orders
    base_undominated = result.undominated_orders
    undominated: set[int] | None = (
        set() if base_undominated is not None else None
    )
    for sr in result.scored_rules:
        if sr.stats.n_hits < minsup_count:
            continue
        order = len(scored)
        if undominated is not None and sr.rule.order in base_undominated:
            undominated.add(order)
        body_tid_masks[order] = result.body_tid_masks[sr.rule.order]
        if body_ids_by_order is not None and base_ids is not None:
            body_ids_by_order[order] = base_ids[sr.rule.order]
        if order == sr.rule.order:
            # Nothing dropped before this rule: the renumbering is the
            # identity so far and the scored rule is reused as-is.
            copy = sr
        else:
            copy = ScoredRule(rule=_with_order(sr.rule, order), stats=sr.stats)
            base_key = getattr(sr, "_rank_key", None)
            if base_key is not None:
                # Only the order component changes under renumbering.
                object.__setattr__(copy, "_rank_key", (*base_key[:3], order))
        scored.append(copy)
        new_of_base[sr.rule.order] = copy
    base_default = result.default_rule
    default_rule = ScoredRule(
        rule=Rule(
            body=frozenset(), head=base_default.rule.head, order=len(scored)
        ),
        stats=base_default.stats,
    )
    new_of_base[base_default.rule.order] = default_rule
    if undominated is not None and base_default.rule.order in base_undominated:
        undominated.add(default_rule.rule.order)
    # Interning is injective, so distinct id tuples count distinct bodies
    # without re-hashing frozensets of GSales.
    if body_ids_by_order is not None:
        frequent_body_count = len(set(body_ids_by_order.values()))
        body_ids_by_order[len(scored)] = ()
    else:
        frequent_body_count = len({sr.rule.body for sr in scored})
    # Renumbering is monotone in generation order and every other rank-key
    # component is unchanged, so the filtered rank order is the base rank
    # order restricted to the survivors — derive it instead of re-sorting.
    ranked_cache: list[ScoredRule] | None = None
    if result.ranked_cache is not None:
        ranked_cache = [
            kept
            for sr in result.ranked_cache
            if (kept := new_of_base[sr.rule.order]) is not None
        ]
    return MiningResult(
        index=index,
        scored_rules=scored,
        default_rule=default_rule,
        body_tid_masks=body_tid_masks,
        frequent_body_count=frequent_body_count,
        body_ids_by_order=body_ids_by_order,
        ranked_cache=ranked_cache,
        undominated_orders=(
            frozenset(undominated) if undominated is not None else None
        ),
        minsup_count=minsup_count,
    )


def _with_order(rule: Rule, order: int) -> Rule:
    """``rule`` renumbered to ``order``, skipping re-validation.

    The body/head separation was checked when ``rule`` was first built and
    does not depend on the order, so the copy is assembled directly instead
    of going through ``Rule.__post_init__`` — this runs once per surviving
    rule per derived support level.
    """
    copy = Rule.__new__(Rule)
    object.__setattr__(copy, "body", rule.body)
    object.__setattr__(copy, "head", rule.head)
    object.__setattr__(copy, "order", order)
    return copy


def _stats_of(
    n_matched: int, n_hits: int, rule_profit: float, n_total: int
) -> RuleStats:
    """A :class:`RuleStats` from already-validated counts, skipping init."""
    stats = RuleStats.__new__(RuleStats)
    set_field = object.__setattr__
    set_field(stats, "n_matched", n_matched)
    set_field(stats, "n_hits", n_hits)
    set_field(stats, "rule_profit", rule_profit)
    set_field(stats, "n_total", n_total)
    return stats


def _next_level(
    index: TransactionIndex,
    level: dict[tuple[int, ...], int],
    minsup_count: int,
    config: MinerConfig,
    size: int,
) -> dict[tuple[int, ...], int]:
    """Apriori join + prune from the frequent bodies of one level."""
    keys = sorted(level)
    next_level: dict[tuple[int, ...], int] = {}
    candidates = 0
    for i, left in enumerate(keys):
        for right in keys[i + 1 :]:
            if left[:-1] != right[:-1]:
                break  # sorted keys: the shared prefix can only shrink
            candidate = left + (right[-1],)
            candidates += 1
            if candidates > config.max_candidates_per_level:
                raise MiningError(
                    f"candidate explosion at body size {size + 1} "
                    f"(> {config.max_candidates_per_level}); raise min_support "
                    "or lower max_body_size"
                )
            if size == 1 and not _pair_is_ancestor_free(index, left[0], right[0]):
                continue
            if size > 1 and not _all_subsets_frequent(candidate, level):
                continue
            mask = level[left] & level[right]
            if mask.bit_count() >= minsup_count:
                next_level[candidate] = mask
    obs.count(f"mine.level{size + 1}.candidates", candidates)
    obs.count(f"mine.level{size + 1}.frequent", len(next_level))
    obs.count(f"mine.level{size + 1}.pruned", candidates - len(next_level))
    return next_level


def _pair_is_ancestor_free(index: TransactionIndex, a: int, b: int) -> bool:
    """Definition 4's constraint checked on a candidate pair.

    Runs on the index's interned-id ancestor tables: integer set-membership
    instead of re-hashing GSale objects through the MOA engine, which this
    check — the level-2 join's inner loop — used to dominate with.
    """
    return a != b and a not in index.ancestor_ids[b] and b not in index.ancestor_ids[a]


def _all_subsets_frequent(
    candidate: tuple[int, ...], level: dict[tuple[int, ...], int]
) -> bool:
    """Standard Apriori prune: every (k−1)-subset must be frequent.

    The two subsets obtained by dropping one of the last two elements are
    the join parents and known frequent; checking the rest suffices.
    """
    for drop in range(len(candidate) - 2):
        subset = candidate[:drop] + candidate[drop + 1 :]
        if subset not in level:
            return False
    return True


def _discover_apriori_dense(
    index: TransactionIndex,
    kernel: DenseBitsetKernel,
    minsup_count: int,
    config: MinerConfig,
    executor: ThreadPoolExecutor | None,
    n_jobs: int,
) -> tuple[list[tuple[tuple[int, ...], int]], int]:
    """Level-wise Apriori search evaluated on the dense kernel.

    Generates the same candidates in the same order as the big-int
    :func:`_next_level` loop — candidate generation (join, ancestor-free
    and subset pruning, the explosion cap) is the identical Python code —
    and only replaces the per-candidate ``&`` + ``bit_count()`` with
    batched AND + popcount over the level's row matrix.  Survivor masks
    are converted back to big ints so the body cache stays
    backend-agnostic: a big-int mine can replay a dense discovery and
    vice versa.
    """
    ordered_bodies: list[tuple[tuple[int, ...], int]] = []
    # Level 1: one vectorized popcount pass over every gsale row.
    # ``body_gids`` is ascending, matching the big-int path's
    # ``sorted(index.body_masks)`` enumeration.
    counts = kernel.single_counts()
    frequent_gids = [
        gid for gid in kernel.body_gids if counts[gid] >= minsup_count
    ]
    obs.count("mine.level1.candidates", len(kernel.body_gids))
    obs.count("mine.level1.frequent", len(frequent_gids))
    level_keys: list[tuple[int, ...]] = [(gid,) for gid in frequent_gids]
    level_rows = kernel.gather_rows(frequent_gids)
    frequent_body_count = len(level_keys)
    ordered_bodies.extend(
        ((gid,), index.body_masks[gid]) for gid in frequent_gids
    )

    size = 1
    while level_keys and size < config.max_body_size:
        level_keys, level_rows = _next_level_dense(
            index,
            kernel,
            level_keys,
            level_rows,
            minsup_count,
            config,
            size,
            executor,
            n_jobs,
        )
        frequent_body_count += len(level_keys)
        ordered_bodies.extend(
            (key, kernel.to_int(row))
            for key, row in zip(level_keys, level_rows)
        )
        size += 1
    return ordered_bodies, frequent_body_count


def _next_level_dense(
    index: TransactionIndex,
    kernel: DenseBitsetKernel,
    level_keys: list[tuple[int, ...]],
    level_rows: object,
    minsup_count: int,
    config: MinerConfig,
    size: int,
    executor: ThreadPoolExecutor | None,
    n_jobs: int,
) -> tuple[list[tuple[int, ...]], object]:
    """Apriori join + prune of one level, evaluated in dense batches.

    Returns the next level's keys (generation order, which for the
    prefix join of sorted keys is itself sorted) and their row matrix.
    Chunks bound peak memory and, with an executor, run concurrently;
    results are gathered in chunk order, so the output is independent of
    ``n_jobs``.
    """
    order = sorted(range(len(level_keys)), key=level_keys.__getitem__)
    keys = [level_keys[i] for i in order]
    key_set = frozenset(keys)
    ancestor_ids = index.ancestor_ids  # hoisted: the level-2 inner loop
    cand_keys: list[tuple[int, ...]] = []
    left_rows: list[int] = []
    right_rows: list[int] = []
    candidates = 0
    for i, left in enumerate(keys):
        for j in range(i + 1, len(keys)):
            right = keys[j]
            if left[:-1] != right[:-1]:
                break  # sorted keys: the shared prefix can only shrink
            candidate = left + (right[-1],)
            candidates += 1
            if candidates > config.max_candidates_per_level:
                raise MiningError(
                    f"candidate explosion at body size {size + 1} "
                    f"(> {config.max_candidates_per_level}); raise min_support "
                    "or lower max_body_size"
                )
            if size == 1:
                # Definition 4 on the pair (sorted distinct keys, so the
                # ids already differ) — same predicate as
                # :func:`_pair_is_ancestor_free` with the subsumption
                # table hoisted out of the inner loop.
                a, b = left[0], right[0]
                if a in ancestor_ids[b] or b in ancestor_ids[a]:
                    continue
            elif not _all_subsets_frequent(candidate, key_set):
                continue
            cand_keys.append(candidate)
            left_rows.append(order[i])
            right_rows.append(order[j])

    def join_chunk(start: int, stop: int) -> tuple[list[int], object]:
        return kernel.join_pairs(
            level_rows,
            left_rows[start:stop],
            right_rows[start:stop],
            minsup_count,
        )

    next_keys: list[tuple[int, ...]] = []
    kept_parts: list[object] = []
    chunks = map_chunks(
        join_chunk, len(cand_keys), _JOIN_CHUNK, executor, n_jobs
    )
    for chunk_index, (kept, rows) in enumerate(chunks):
        base = chunk_index * _JOIN_CHUNK
        next_keys.extend(cand_keys[base + local] for local in kept)
        if kept:
            kept_parts.append(rows)
    obs.count(f"mine.level{size + 1}.candidates", candidates)
    obs.count(f"mine.level{size + 1}.frequent", len(next_keys))
    obs.count(f"mine.level{size + 1}.pruned", candidates - len(next_keys))
    return next_keys, kernel.stack(kept_parts)


def _build_default_rule(
    index: TransactionIndex,
    order: int,
    head_totals: dict[int, tuple[int, float]] | None = None,
) -> ScoredRule:
    """The default rule ``∅ → g`` maximizing ``Prof_re`` (Section 3.1).

    Matched transactions are the whole database, so maximizing ``Prof_re``
    reduces to maximizing total credited profit.  Ties break toward the
    head generated first: candidate heads are enumerated
    most-specific-first (deepest in the per-item MOA(H) sub-hierarchy,
    i.e. least favorable price first), mirroring the "generated before"
    tie-breaker applied to mined rules — so a tie keeps the most
    *specific* head, not the lexicographically first one.

    ``head_totals`` is the miner's per-head ``(hit count, total credited
    profit)`` table for *frequent* heads; their totals were accumulated in
    the same ascending-position order this loop would use, so reusing
    them is bit-identical and skips re-summing ``hit_profit`` over every
    frequent head's hits on every mine.  Infrequent heads (few hits by
    definition) still sum directly.
    """
    best_hid: int | None = None
    best_profit = -math.inf
    for hid in index.candidate_head_ids:
        cached = head_totals.get(hid) if head_totals is not None else None
        if cached is not None:
            total = cached[1]
        else:
            total = sum(
                index.hit_profit(pos, hid)
                for pos in TransactionIndex.iter_bits(index.head_hits_mask(hid))
            )
        if total > best_profit:  # strict: a tie keeps the earlier, more
            best_profit = total  # specific head in generation order
            best_hid = hid
    if best_hid is None:  # pragma: no cover - catalog validation prevents this
        raise MiningError("no candidate heads available for the default rule")
    hits_mask = index.head_hits_mask(best_hid)
    rule = Rule(body=frozenset(), head=index.gsales[best_hid], order=order)
    stats = RuleStats(
        n_matched=index.n,
        n_hits=hits_mask.bit_count(),
        rule_profit=best_profit,
        n_total=index.n,
    )
    return ScoredRule(rule=rule, stats=stats)
