"""Sales and transactions (paper Section 2).

A *sale* ``⟨I, P, Q⟩`` records that item ``I`` was sold in quantity ``Q``
(packages) under promotion code ``P``.  A *transaction* consists of exactly
one target sale and one or more non-target sales; the paper's framework
recommends one (target item, promotion code) pair per transaction, which is
not a restriction because multi-target transactions can be split.

:class:`TransactionDB` bundles transactions with the catalog they refer to
and validates referential integrity once, so that the miner and evaluators
can trust every id they encounter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.items import ItemCatalog
from repro.core.promotion import PromotionCode
from repro.errors import ValidationError

__all__ = ["Sale", "Transaction", "TransactionDB"]


@dataclass(frozen=True, slots=True)
class Sale:
    """One line of a transaction: ``⟨item_id, promo_code, quantity⟩``.

    ``quantity`` counts *packages* of the promotion's packing, matching the
    paper's convention that "the price, cost and quantity in a sale refer to
    the same packing".
    """

    item_id: str
    promo_code: str
    quantity: float = 1.0

    def __post_init__(self) -> None:
        if not self.item_id:
            raise ValidationError("sale item_id must be non-empty")
        if not self.promo_code:
            raise ValidationError(
                f"sale of {self.item_id!r}: promo_code must be non-empty"
            )
        if not self.quantity > 0:
            raise ValidationError(
                f"sale of {self.item_id!r}: quantity must be positive, "
                f"got {self.quantity!r}"
            )

    def recorded_profit(self, catalog: ItemCatalog) -> float:
        """Profit this sale actually generated: ``(price − cost) × quantity``."""
        promo = catalog.promotion(self.item_id, self.promo_code)
        return promo.profit * self.quantity

    def recorded_spend(self, catalog: ItemCatalog) -> float:
        """Money the customer spent on this sale: ``price × quantity``."""
        promo = catalog.promotion(self.item_id, self.promo_code)
        return promo.price * self.quantity

    def units(self, catalog: ItemCatalog) -> float:
        """Base units bought: ``quantity × packing``."""
        promo = catalog.promotion(self.item_id, self.promo_code)
        return self.quantity * promo.packing


@dataclass(frozen=True, slots=True)
class Transaction:
    """One past transaction: non-target sales plus a single target sale."""

    tid: int
    nontarget_sales: tuple[Sale, ...]
    target_sale: Sale

    def __post_init__(self) -> None:
        if self.tid < 0:
            raise ValidationError(f"transaction id must be non-negative, got {self.tid}")
        if not self.nontarget_sales:
            raise ValidationError(
                f"transaction {self.tid}: needs at least one non-target sale"
            )
        seen: set[str] = set()
        for sale in self.nontarget_sales:
            if sale.item_id in seen:
                raise ValidationError(
                    f"transaction {self.tid}: duplicate non-target item "
                    f"{sale.item_id!r}"
                )
            seen.add(sale.item_id)
        if self.target_sale.item_id in seen:
            raise ValidationError(
                f"transaction {self.tid}: target item "
                f"{self.target_sale.item_id!r} also appears as a non-target sale"
            )

    @property
    def basket(self) -> tuple[str, ...]:
        """Ids of the non-target items bought, in sale order."""
        return tuple(sale.item_id for sale in self.nontarget_sales)

    def recorded_target_profit(self, catalog: ItemCatalog) -> float:
        """The profit the target sale actually generated (gain denominator)."""
        return self.target_sale.recorded_profit(catalog)


@dataclass
class TransactionDB:
    """A validated collection of transactions over one catalog."""

    catalog: ItemCatalog
    transactions: list[Transaction] = field(default_factory=list)

    def __post_init__(self) -> None:
        for transaction in self.transactions:
            self._validate(transaction)

    def _validate(self, transaction: Transaction) -> None:
        target = transaction.target_sale
        item = self.catalog.get(target.item_id)
        if not item.is_target:
            raise ValidationError(
                f"transaction {transaction.tid}: {target.item_id!r} is not a "
                "target item"
            )
        item.promotion(target.promo_code)  # raises CatalogError if missing
        for sale in transaction.nontarget_sales:
            nt_item = self.catalog.get(sale.item_id)
            if nt_item.is_target:
                raise ValidationError(
                    f"transaction {transaction.tid}: target item "
                    f"{sale.item_id!r} used as a non-target sale"
                )
            nt_item.promotion(sale.promo_code)

    def append(self, transaction: Transaction) -> None:
        """Validate and add one transaction."""
        self._validate(transaction)
        self.transactions.append(transaction)

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self.transactions[index]

    def subset(self, indices: Sequence[int]) -> "TransactionDB":
        """A new DB holding the transactions at ``indices`` (same catalog)."""
        picked = [self.transactions[i] for i in indices]
        return TransactionDB(catalog=self.catalog, transactions=picked)

    def filtered(self, predicate: Callable[[Transaction], bool]) -> "TransactionDB":
        """A new DB with only the transactions satisfying ``predicate``."""
        picked = [t for t in self.transactions if predicate(t)]
        return TransactionDB(catalog=self.catalog, transactions=picked)

    def total_recorded_profit(self) -> float:
        """Sum of recorded target-sale profits over all transactions."""
        return sum(t.recorded_target_profit(self.catalog) for t in self.transactions)

    def target_sale_histogram(self) -> dict[tuple[str, str], int]:
        """Count of transactions per (target item, promotion code) pair."""
        counts: dict[tuple[str, str], int] = {}
        for t in self.transactions:
            key = (t.target_sale.item_id, t.target_sale.promo_code)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def promotion_for(self, sale: Sale) -> PromotionCode:
        """Resolve a sale's promotion code through this DB's catalog."""
        return self.catalog.promotion(sale.item_id, sale.promo_code)


def concat(dbs: Iterable[TransactionDB]) -> TransactionDB:
    """Concatenate several DBs sharing a catalog into one.

    Raises :class:`ValidationError` when the DBs disagree on the catalog
    object — mixing catalogs would silently mis-resolve promotion codes.
    """
    dbs = list(dbs)
    if not dbs:
        raise ValidationError("cannot concatenate zero TransactionDBs")
    catalog = dbs[0].catalog
    for db in dbs[1:]:
        if db.catalog is not catalog:
            raise ValidationError("all TransactionDBs must share one catalog")
    merged: list[Transaction] = []
    for db in dbs:
        merged.extend(db.transactions)
    return TransactionDB(catalog=catalog, transactions=merged)


__all__.append("concat")
