"""SON two-pass partitioned mining over the out-of-core store.

The in-RAM miner (:mod:`repro.core.mining`) holds every gsale's tid-mask
for the whole database at once.  This module mines the same rule set —
bit-identically, floats included — from a
:class:`~repro.core.engine.store.ChunkedTransactionStore` whose mask
matrices live on disk, using the classic SON (Savasere–Omiecinski–Navathe,
VLDB'95) two-pass scheme:

* **Pass 1 (local discovery).**  Each partition ``p`` is mined
  independently with the *n-independent* local threshold
  ``max(1, ceil(min_support · n_p))`` — the same level-wise Apriori the
  in-RAM dense backend runs, on the partition's memmapped kernel.  If a
  body is globally frequent its count satisfies
  ``count(B) ≥ ceil(s·n)``, and since ``count_p(B) < ceil(s·n_p)``
  implies ``count_p(B) < s·n_p`` for integer counts, failing in *every*
  partition would force ``count(B) < s·Σn_p = s·n`` — so every globally
  frequent body is locally frequent somewhere.  The union of local
  results is therefore a complete candidate superset (no false
  negatives), and because each local search enforces the same
  ancestor-free / ``max_body_size`` invariants over the shared symbol
  table, it introduces no body the in-RAM search could not generate.
* **Pass 2 (exact counting).**  One streaming pass counts every
  candidate's global support and (body, head) hit counts with the dense
  kernel's batched AND + popcount; a second streaming pass accumulates
  the credited-profit sums of the surviving pairs *sequentially in
  ascending global transaction order* — one Python float add per hit,
  exactly the summation the in-RAM miner performs — so every emitted
  ``rule_profit`` is the identical float, not merely a close one.

Rule order is reconstructed without replaying the joins: the in-RAM
Apriori emits each level's bodies in ascending lexicographic id order
(level 1 enumerates sorted gids; the prefix join of sorted keys produces
sorted output, and frequency filtering preserves order), so sorting the
globally frequent bodies by ``(len, ids)`` reproduces ``ordered_bodies``
— and hence rule numbering — exactly.

**Incremental refresh** (:func:`refresh_store`) appends new partitions
and updates the result without re-mining history: local thresholds don't
depend on ``n``, so old partitions' local results stay valid; counts and
profit sums extend by the new partitions' contributions (new global
positions follow all old ones, so sequential float accumulation extends
exactly); only *delta* candidates — bodies or pairs that the grown union
or thresholds newly require — are counted over old partitions.  The SON
state needed for this lives next to the store (``son_state.json`` plus
binary side files) and is rewritten after every mine/refresh.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.engine.kernel import DenseBitsetKernel, resolve_backend, resolve_jobs
from repro.core.engine.store import (
    DEFAULT_PARTITION_SIZE,
    ChunkedTransactionStore,
    StorePartition,
)
from repro.core.engine.symbols import SymbolTable
from repro.core.generalized import GKind, GSale
from repro.core.mining import (
    _EMIT_CHUNK,
    _JOIN_CHUNK,
    MinerConfig,
    MiningResult,
    TransactionIndex,
    _all_subsets_frequent,
    _build_default_rule,
)
from repro.core.moa import MOAHierarchy
from repro.core.profit import ProfitModel
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.core.sales import Transaction, TransactionDB
from repro.errors import MiningError, SerializationError
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the numpy-free CI leg
    np = None  # type: ignore[assignment]

__all__ = [
    "PartitionedIndex",
    "mine_partitioned_db",
    "mine_store",
    "refresh_store",
]

_STATE_FORMAT = "repro-son-state-v1"
_STATE_JSON = "son_state.json"
_STATE_PAIRS = "son_state.pairs.i64"
_STATE_PROFITS = "son_state.profits.f64"
_STATE_MASKS = "son_state.masks.bin"

#: MinerConfig fields that must match between the mine that wrote a SON
#: state and a refresh extending it — they shape the candidate space.
_CONFIG_ECHO = (
    "min_support",
    "min_confidence",
    "min_rule_profit",
    "max_body_size",
    "max_candidates_per_level",
)

Body = tuple[int, ...]


# ---------------------------------------------------------------------------
# TransactionIndex-compatible facade
# ---------------------------------------------------------------------------
class PartitionedIndex:
    """The out-of-core stand-in for :class:`TransactionIndex`.

    Downstream passes (covering, pruning, analysis, compilation) consume
    a mining result's index through a narrow surface — ``n``, ``moa``,
    ``profit_model``, ``symbols``, ``gsale_id``, ``closure_ids``,
    ``head_hits_mask``, ``hit_profit``, ``body_mask``,
    ``mask_positions`` and the shared caches.  This facade answers all
    of them from the partitioned store, assembling global masks lazily
    (per gsale / head, memoized) instead of ever materializing the full
    matrix; per-position profit lookups bisect to the owning partition
    and read its aligned profit column.  Floats are identical to the
    in-RAM index's: the store persisted the same credited profits, and
    position orders are preserved.
    """

    def __init__(self, store: ChunkedTransactionStore) -> None:
        self.store = store
        self.n = store.n
        self.moa = store.moa
        self.profit_model = store.profit_model
        self.symbols: SymbolTable = store.symbols
        self.closure_cache: dict[Body, frozenset[int]] = {}
        self.frozen_body_cache: dict[Body, frozenset[int]] = {}
        self.projected_profit_cache: dict[tuple[float, int, int], float] = {}
        self._offsets = [
            int(store.partition_meta(i)["offset"])
            for i in range(store.n_partitions)
        ]
        self._head_mask_cache: dict[int, int] = {}
        self._gid_mask_cache: dict[int, int] = {}
        self._profit_cache: dict[tuple[int, int], dict[int, float]] = {}
        self._global_head_counts = store.global_head_counts()
        # Owner handle for a temporary spill directory (set by
        # mine_partitioned_db); deleting the index deletes the spill.
        self._tmp: tempfile.TemporaryDirectory | None = None

    # -- symbol-table views (same shape as TransactionIndex) -----------
    @property
    def gsales(self) -> list[GSale]:
        return self.symbols.gsales

    @property
    def gsale_ids(self) -> dict[GSale, int]:
        return self.symbols.ids

    @property
    def candidate_head_ids(self) -> list[int]:
        return self.symbols.candidate_head_ids

    @property
    def ancestor_ids(self) -> list[frozenset[int]]:
        return self.symbols.ancestor_ids

    @property
    def closure_ids(self) -> list[frozenset[int]]:
        return self.symbols.closure_ids

    def gsale_id(self, gsale: GSale) -> int:
        """Dense id of ``gsale`` in the shared symbol table."""
        try:
            return self.symbols.ids[gsale]
        except KeyError:
            raise MiningError(
                f"generalized sale {gsale.describe()} not present in index"
            ) from None

    # -- masks ---------------------------------------------------------
    def _gid_mask(self, gid: int) -> int:
        mask = self._gid_mask_cache.get(gid)
        if mask is None:
            mask = 0
            for part in self.store.iter_partitions():
                row = part.kernel().body_rows.get(gid)
                if row is not None:
                    local = int.from_bytes(
                        part.kernel().row_of(gid).tobytes(), "little"
                    )
                    mask |= local << part.offset
            self._gid_mask_cache[gid] = mask
        return mask

    def head_hits_mask(self, head_id: int) -> int:
        """Global tid-mask of transactions whose target matches ``head_id``."""
        mask = self._head_mask_cache.get(head_id)
        if mask is None:
            mask = 0
            if self._global_head_counts.get(head_id, 0):
                for part in self.store.iter_partitions():
                    row = part.head_row(head_id)
                    if row is not None:
                        mask |= (
                            int.from_bytes(row.tobytes(), "little")
                            << part.offset
                        )
            self._head_mask_cache[head_id] = mask
        return mask

    def body_mask(self, body_ids: Sequence[int]) -> int:
        """Global tid-mask of transactions matching every id in the body."""
        if not body_ids:
            return (1 << self.n) - 1
        mask = self._gid_mask(body_ids[0])
        for gid in body_ids[1:]:
            if not mask:
                return 0
            mask &= self._gid_mask(gid)
        return mask

    def mask_positions(self, mask: int) -> list[int]:
        """Ascending set-bit positions (vectorized, same order as iter_bits)."""
        as_bytes = np.frombuffer(
            mask.to_bytes((self.n + 7) // 8, "little"), dtype=np.uint8
        )
        bits = np.unpackbits(as_bytes, bitorder="little", count=self.n)
        return np.flatnonzero(bits).tolist()

    # -- per-position profit -------------------------------------------
    def _partition_of(self, pos: int) -> int:
        return bisect_right(self._offsets, pos) - 1

    def hit_profit(self, transaction_pos: int, head_id: int) -> float:
        """Credited profit of ``head_id`` at global position ``transaction_pos``.

        Zero when the transaction's target does not match the head —
        the same contract as ``TransactionIndex.hit_profit``.
        """
        pi = self._partition_of(transaction_pos)
        table = self._profit_cache.get((pi, head_id))
        if table is None:
            part = self.store.partition(pi)
            row = part.head_row(head_id)
            if row is None:
                table = {}
            else:
                positions = _row_positions(row, part.n)
                table = dict(
                    zip(positions.tolist(), part.head_profits(head_id).tolist())
                )
            self._profit_cache[(pi, head_id)] = table
        return table.get(transaction_pos - self._offsets[pi], 0.0)

    @staticmethod
    def iter_bits(mask: int):
        """Yield the positions of the set bits of ``mask``, ascending."""
        return TransactionIndex.iter_bits(mask)


# ---------------------------------------------------------------------------
# Helpers shared by mine and refresh
# ---------------------------------------------------------------------------
def _row_positions(row: "numpy.ndarray", n: int) -> "numpy.ndarray":
    """Ascending set-bit positions of one uint64 chunk row."""
    bits = np.unpackbits(row.view(np.uint8), bitorder="little", count=n)
    return np.flatnonzero(bits)


def _local_minsup(min_support: float, n_local: int) -> int:
    """The n-independent local threshold ``max(1, ceil(s · n_p))``."""
    return max(1, math.ceil(min_support * n_local))


def _local_frequent_bodies(
    part: StorePartition,
    config: MinerConfig,
    ancestor_ids: list[frozenset[int]],
) -> set[Body]:
    """Pass 1 on one partition: its locally frequent ancestor-free bodies.

    Identical candidate generation to the in-RAM dense Apriori
    (:func:`repro.core.mining._next_level_dense`): sorted prefix join,
    ancestor-free pairs at level 2, all-subsets pruning above, the
    explosion cap — only the support threshold is the partition-local
    one.
    """
    minsup = _local_minsup(config.min_support, part.n)
    kernel = part.kernel()
    with obs.span("partition.local_mine", partition=part.name):
        counts = kernel.single_counts()
        keys: list[Body] = [
            (gid,) for gid in kernel.body_gids if counts[gid] >= minsup
        ]
        rows = kernel.gather_rows([key[0] for key in keys])
        found: set[Body] = set(keys)
        size = 1
        while keys and size < config.max_body_size:
            key_set = frozenset(keys)
            cand_keys: list[Body] = []
            left_rows: list[int] = []
            right_rows: list[int] = []
            candidates = 0
            for i, left in enumerate(keys):
                for j in range(i + 1, len(keys)):
                    right = keys[j]
                    if left[:-1] != right[:-1]:
                        break  # sorted keys: the shared prefix can only shrink
                    candidate = left + (right[-1],)
                    candidates += 1
                    if candidates > config.max_candidates_per_level:
                        raise MiningError(
                            f"candidate explosion at body size {size + 1} in "
                            f"partition {part.name} "
                            f"(> {config.max_candidates_per_level}); raise "
                            "min_support or lower max_body_size"
                        )
                    if size == 1:
                        a, b = left[0], right[0]
                        if a in ancestor_ids[b] or b in ancestor_ids[a]:
                            continue
                    elif not _all_subsets_frequent(candidate, key_set):
                        continue
                    cand_keys.append(candidate)
                    left_rows.append(i)
                    right_rows.append(j)
            # Bounded join batches, exactly like the in-RAM dense path:
            # one unchunked join would gather two (n_pairs, n_chunks)
            # matrices at once, which at partition scale is hundreds of MB.
            kept: list[int] = []
            row_parts: list["numpy.ndarray"] = []
            for start in range(0, len(cand_keys), _JOIN_CHUNK):
                stop = min(start + _JOIN_CHUNK, len(cand_keys))
                part_kept, part_rows = kernel.join_pairs(
                    rows, left_rows[start:stop], right_rows[start:stop], minsup
                )
                kept.extend(start + k for k in part_kept)
                if len(part_kept):
                    row_parts.append(part_rows)
            rows = kernel.stack(row_parts)
            keys = [cand_keys[k] for k in kept]
            found.update(keys)
            size += 1
        obs.count("partition.partitions_mined")
        obs.count("partition.local_frequent", len(found))
    return found


def _mine_locals(
    store: ChunkedTransactionStore,
    partitions: Sequence[int],
    config: MinerConfig,
    symbols: SymbolTable,
) -> set[Body]:
    """Pass 1 over the given partitions (optionally thread-parallel)."""
    ancestor_ids = symbols.ancestor_ids
    n_jobs = resolve_jobs(config.n_jobs)
    union: set[Body] = set()
    with obs.span("partition.pass1", partitions=str(len(partitions))):
        if n_jobs > 1 and len(partitions) > 1:
            trace = obs.current_trace()

            def task(i: int) -> set[Body]:
                return _local_frequent_bodies(
                    store.partition(i), config, ancestor_ids
                )

            with ThreadPoolExecutor(max_workers=n_jobs) as executor:
                futures = [
                    executor.submit(obs.run_traced, task, i)
                    for i in partitions
                ]
                for i, future in zip(partitions, futures):
                    local, trace_dict = future.result()
                    union.update(local)
                    if trace is not None:
                        trace.merge(trace_dict, label=f"partition-{i}")
        else:
            for i in partitions:
                union.update(
                    _local_frequent_bodies(
                        store.partition(i), config, ancestor_ids
                    )
                )
    return union


def _prune_union(union: set[Body]) -> list[Body]:
    """Anti-monotone prune of the raw union, in canonical order.

    A body can only be globally frequent if every one of its
    ``(k−1)``-subsets is too — and every globally frequent body is in
    the union (SON), so a body with a missing subset is safely dropped
    before the counting pass.  The surviving list is sorted by
    ``(len, ids)``: exactly the in-RAM miner's ``ordered_bodies`` order
    once restricted to the globally frequent.
    """
    kept: list[Body] = []
    for body in sorted(union, key=lambda b: (len(b), b)):
        if len(body) > 1 and any(
            body[:drop] + body[drop + 1 :] not in union
            for drop in range(len(body))
        ):
            continue
        kept.append(body)
    return kept


def _body_matrix(
    kernel: DenseBitsetKernel, bodies: Sequence[Body]
) -> "numpy.ndarray":
    """Local tid-mask rows of many bodies (zero row for absent members).

    A gsale with no occurrences in the partition has no kernel row; any
    body containing one matches nothing locally, mirroring the in-RAM
    ``body_masks.get(gid, 0)`` convention.  Rows are fetched with one
    batched gather per body position (not one memmap read per gsale),
    which is what keeps pass 2 off the memmap random-access path.
    """
    out = np.zeros((len(bodies), kernel.n_chunks), dtype="<u8")
    rows = kernel.body_rows
    present = [
        i for i, body in enumerate(bodies)
        if all(gid in rows for gid in body)
    ]
    if not present:
        return out
    acc = kernel.gather_rows([bodies[i][0] for i in present])
    max_len = max(len(bodies[i]) for i in present)
    for k in range(1, max_len):
        longer = [j for j, i in enumerate(present) if len(bodies[i]) > k]
        if not longer:
            break
        extra = kernel.gather_rows([bodies[present[j]][k] for j in longer])
        sel = np.asarray(longer, dtype=np.intp)
        acc[sel] &= extra
    out[np.asarray(present, dtype=np.intp)] = acc
    return out


def _head_matrix(
    part: StorePartition, head_ids: Sequence[int]
) -> "numpy.ndarray":
    """Local hit-mask rows of many heads (zero row for absent heads)."""
    n_chunks = (part.n + 63) // 64
    out = np.zeros((len(head_ids), n_chunks), dtype="<u8")
    for j, hid in enumerate(head_ids):
        row = part.head_row(hid)
        if row is not None:
            out[j] = row
    return out


def _count_partitions(
    store: ChunkedTransactionStore,
    partitions: Sequence[int],
    bodies: Sequence[Body],
    head_ids: Sequence[int],
    body_counts: "numpy.ndarray",
    pair_counts: "numpy.ndarray",
) -> None:
    """Add the partitions' support counts into the accumulators (pass 2a).

    Bodies are counted in bounded batches: one (bodies, chunks) matrix
    for *all* candidates would dwarf the partition itself once the
    union runs to tens of thousands of bodies.
    """
    if not bodies:
        return
    for i in partitions:
        part = store.partition(i)
        with obs.span("partition.count", partition=part.name):
            kernel = part.kernel()
            heads = _head_matrix(part, head_ids) if head_ids else None
            for start in range(0, len(bodies), _JOIN_CHUNK):
                stop = min(start + _JOIN_CHUNK, len(bodies))
                rows = _body_matrix(kernel, bodies[start:stop])
                body_counts[start:stop] += kernel.popcounts(rows)
                if heads is not None:
                    pair_counts[start:stop] += kernel.head_hit_counts(
                        rows, heads
                    )


def _accumulate_profits(
    store: ChunkedTransactionStore,
    partitions: Sequence[int],
    pairs: dict[tuple[Body, int], float],
) -> None:
    """Extend the pairs' credited-profit sums over the partitions (pass 2b).

    Partitions are walked in ascending offset order and every hit's
    profit is added *one float at a time* — never a vectorized partial
    sum, whose different association would change the result bits.  The
    accumulator a pair arrives with must already cover every earlier
    transaction, so the extension equals the in-RAM miner's single
    ascending sequential sum over the pair's global hit positions.
    """
    if not pairs:
        return
    by_body: dict[Body, list[int]] = {}
    for body, hid in pairs:
        by_body.setdefault(body, []).append(hid)
    bodies = sorted(by_body, key=lambda b: (len(b), b))
    for i in sorted(partitions):
        part = store.partition(i)
        with obs.span("partition.profits", partition=part.name):
            kernel = part.kernel()
            heads: dict[int, tuple["numpy.ndarray", "numpy.ndarray"]] = {}
            for hid in {hid for hids in by_body.values() for hid in hids}:
                head_row = part.head_row(hid)
                if head_row is None:
                    continue
                positions = _row_positions(head_row, part.n)
                if positions.size:
                    heads[hid] = (positions, part.head_profits(hid))
            # Bodies are unpacked to per-transaction bits in bounded
            # batches; each body's bit row is then probed once per head.
            # ``sum(values, acc)`` adds left to right, one float64 IEEE
            # add per hit — the same operations as an explicit loop, so
            # the accumulator stays bit-identical.
            for start in range(0, len(bodies), _EMIT_CHUNK):
                batch = bodies[start : start + _EMIT_CHUNK]
                matrix = _body_matrix(kernel, batch)
                bits = np.unpackbits(
                    matrix.view(np.uint8),
                    axis=1,
                    bitorder="little",
                    count=part.n,
                )
                for body, row_bits in zip(batch, bits):
                    for hid in by_body[body]:
                        entry = heads.get(hid)
                        if entry is None:
                            continue
                        positions, profits = entry
                        selected = profits[row_bits[positions].view(np.bool_)]
                        if selected.size:
                            pairs[(body, hid)] = sum(
                                selected.tolist(), pairs[(body, hid)]
                            )


def _extend_head_totals(
    store: ChunkedTransactionStore,
    partitions: Sequence[int],
    totals: dict[int, tuple[int, float]],
) -> None:
    """Extend per-head (hit count, total credited profit) accumulators.

    Sequential ascending adds, partition by partition — the same order
    the in-RAM miner sums each head's hits in, so totals agree
    bit-for-bit.  Heads that never hit stay absent (the in-RAM default
    rule then sums an empty sequence, yielding integer 0; keeping them
    absent preserves even that).
    """
    for i in sorted(partitions):
        part = store.partition(i)
        for hid in part.head_ids:
            profits = part.head_profits(hid)
            count, total = totals.get(hid, (0, 0.0))
            for value in profits.tolist():
                total += value
            totals[hid] = (count + len(profits), total)


def _collect_masks(
    store: ChunkedTransactionStore,
    partitions: Sequence[int],
    masks: dict[Body, int],
) -> None:
    """OR the partitions' local body masks (shifted to global positions)."""
    if not masks:
        return
    bodies = list(masks)
    for i in sorted(partitions):
        part = store.partition(i)
        kernel = part.kernel()
        for start in range(0, len(bodies), _JOIN_CHUNK):
            batch = bodies[start : start + _JOIN_CHUNK]
            rows = _body_matrix(kernel, batch)
            for body, row in zip(batch, rows):
                local = int.from_bytes(row.tobytes(), "little")
                if local:
                    masks[body] |= local << part.offset


# ---------------------------------------------------------------------------
# SON state persistence
# ---------------------------------------------------------------------------
def _config_echo(config: MinerConfig) -> dict[str, float | int]:
    return {name: getattr(config, name) for name in _CONFIG_ECHO}


def _save_state(
    store: ChunkedTransactionStore,
    config: MinerConfig,
    union: set[Body],
    counted: list[Body],
    body_counts: "numpy.ndarray",
    pair_counts: "numpy.ndarray",
    head_totals: dict[int, tuple[int, float]],
    pair_profits: dict[tuple[Body, int], float],
    emitted_masks: dict[Body, int],
) -> None:
    """Persist everything a refresh needs, sized for truncation checks."""
    root = store.root
    head_col = {
        hid: j for j, hid in enumerate(store.symbols.candidate_head_ids)
    }
    body_row = {body: k for k, body in enumerate(counted)}
    mask_bodies = sorted(emitted_masks, key=lambda b: (len(b), b))
    mask_bytes = (store.n + 7) // 8
    pairs_blob = np.ascontiguousarray(pair_counts, dtype="<i8").tobytes()
    with open(root / _STATE_PAIRS, "wb") as handle:
        handle.write(pairs_blob)
    # Credited-profit accumulators ride in a float64 grid aligned with the
    # pair-count grid: binary float64 round-trips the sums exactly, and
    # NaN marks a pair with no stored sum (adding finite credited profits
    # can never produce one).
    profit_grid = np.full(pair_counts.shape, np.nan, dtype="<f8")
    for (body, hid), profit in pair_profits.items():
        profit_grid[body_row[body], head_col[hid]] = profit
    profits_blob = profit_grid.tobytes()
    with open(root / _STATE_PROFITS, "wb") as handle:
        handle.write(profits_blob)
    with open(root / _STATE_MASKS, "wb") as handle:
        for body in mask_bodies:
            handle.write(emitted_masks[body].to_bytes(mask_bytes, "little"))
    state = {
        "format": _STATE_FORMAT,
        "config": _config_echo(config),
        "n": store.n,
        "n_partitions": store.n_partitions,
        "union": sorted(union),
        "counted": [list(body) for body in counted],
        "body_counts": [int(c) for c in body_counts],
        "pair_counts_bytes": len(pairs_blob),
        "pair_profit_bytes": len(profits_blob),
        "head_totals": {
            str(hid): [count, total]
            for hid, (count, total) in sorted(head_totals.items())
        },
        "mask_body_rows": [body_row[body] for body in mask_bodies],
        "mask_bytes": mask_bytes,
    }
    temporary = root / (_STATE_JSON + ".tmp")
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(state, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, root / _STATE_JSON)


def _load_state(store: ChunkedTransactionStore, config: MinerConfig) -> dict:
    """Load and validate the SON state written by the previous mine."""
    path = store.root / _STATE_JSON
    if not path.exists():
        raise MiningError(
            f"{store.root}: no SON mining state found; run a full "
            "out-of-core mine before refreshing"
        )
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path}: corrupt SON state: {exc}") from exc
    if state.get("format") != _STATE_FORMAT:
        raise SerializationError(
            f"{path}: unexpected SON state format {state.get('format')!r}"
        )
    if state.get("config") != _config_echo(config):
        raise MiningError(
            "refresh MinerConfig differs from the one the SON state was "
            f"mined with ({state.get('config')} vs {_config_echo(config)}); "
            "re-mine the store instead"
        )
    counted = [tuple(body) for body in state["counted"]]
    head_ids = store.symbols.candidate_head_ids
    n_heads = len(head_ids)
    pairs_path = store.root / _STATE_PAIRS
    expected = len(counted) * n_heads * 8
    if int(state["pair_counts_bytes"]) != expected:
        raise SerializationError(
            f"{pairs_path}: SON state records {state['pair_counts_bytes']} "
            f"pair-count bytes but the candidate grid needs {expected}"
        )
    actual = pairs_path.stat().st_size if pairs_path.exists() else -1
    if actual != expected:
        raise SerializationError(
            f"{pairs_path}: pair-count file is {actual} bytes, expected "
            f"{expected} — the SON state is truncated or corrupt"
        )
    pair_counts = (
        np.fromfile(pairs_path, dtype="<i8").reshape(len(counted), n_heads)
        if expected
        else np.zeros((0, n_heads), dtype=np.int64)
    )
    profits_path = store.root / _STATE_PROFITS
    if int(state["pair_profit_bytes"]) != expected:
        raise SerializationError(
            f"{profits_path}: SON state records "
            f"{state['pair_profit_bytes']} profit bytes but the candidate "
            f"grid needs {expected}"
        )
    actual_profits = profits_path.stat().st_size if profits_path.exists() else -1
    if actual_profits != expected:
        raise SerializationError(
            f"{profits_path}: profit file is {actual_profits} bytes, "
            f"expected {expected} — the SON state is truncated or corrupt"
        )
    pair_profits: dict[tuple[Body, int], float] = {}
    if expected:
        profit_grid = np.fromfile(profits_path, dtype="<f8").reshape(
            len(counted), n_heads
        )
        for k, j in np.argwhere(~np.isnan(profit_grid)):
            pair_profits[(counted[k], head_ids[j])] = float(profit_grid[k, j])
    masks_path = store.root / _STATE_MASKS
    mask_bytes = int(state["mask_bytes"])
    mask_rows = [int(k) for k in state["mask_body_rows"]]
    if any(not 0 <= k < len(counted) for k in mask_rows):
        raise SerializationError(
            f"{path}: mask body rows fall outside the counted candidate "
            "list — the SON state is corrupt"
        )
    mask_bodies = [counted[k] for k in mask_rows]
    expected_masks = mask_bytes * len(mask_bodies)
    actual_masks = masks_path.stat().st_size if masks_path.exists() else -1
    if actual_masks != expected_masks:
        raise SerializationError(
            f"{masks_path}: mask file is {actual_masks} bytes, expected "
            f"{expected_masks} — the SON state is truncated or corrupt"
        )
    emitted_masks: dict[Body, int] = {}
    if mask_bodies:
        blob = masks_path.read_bytes()
        for k, body in enumerate(mask_bodies):
            emitted_masks[body] = int.from_bytes(
                blob[k * mask_bytes : (k + 1) * mask_bytes], "little"
            )
    return {
        "n": int(state["n"]),
        "n_partitions": int(state["n_partitions"]),
        "union": {tuple(body) for body in state["union"]},
        "counted": counted,
        "body_counts": {
            body: int(count)
            for body, count in zip(counted, state["body_counts"])
        },
        "pair_counts": pair_counts,
        "head_totals": {
            int(hid): (int(entry[0]), float(entry[1]))
            for hid, entry in state["head_totals"].items()
        },
        "pair_profits": pair_profits,
        "emitted_masks": emitted_masks,
    }


# ---------------------------------------------------------------------------
# Emission (mirrors repro.core.mining's filter chain exactly)
# ---------------------------------------------------------------------------
def _emit(
    index: PartitionedIndex,
    config: MinerConfig,
    minsup_count: int,
    frequent_bodies: list[Body],
    body_counts: dict[Body, int],
    pair_counts_of: dict[tuple[Body, int], int],
    pair_profits: dict[tuple[Body, int], float],
    frequent_heads: list[int],
) -> tuple[list[ScoredRule], dict[int, Body], list[Body]]:
    """The emission loop: (scored rules, order → body ids, emitted bodies).

    Iterates frequent bodies in the reconstructed generation order and
    frequent heads in candidate order, applying the in-RAM filter chain
    — promo-block, pair support, confidence, rule profit — with the
    identical short-circuit order, so rule numbering matches exactly.
    """
    gsales = index.gsales
    promo_node = [g.node if g.kind is GKind.PROMO else None for g in gsales]
    head_nodes = {hid: gsales[hid].node for hid in frequent_heads}
    min_confidence = config.min_confidence
    min_rule_profit = config.min_rule_profit
    n_total = index.n

    scored: list[ScoredRule] = []
    body_ids_by_order: dict[int, Body] = {}
    emitted_bodies: list[Body] = []
    order = 0
    with obs.span("partition.emit"):
        for body in frequent_bodies:
            n_matched = body_counts[body]
            body_gsales: frozenset[GSale] | None = None
            blocked_items = {
                node
                for gid in body
                if (node := promo_node[gid]) is not None
            }
            for hid in frequent_heads:
                if head_nodes[hid] in blocked_items:
                    continue
                n_hits = pair_counts_of[(body, hid)]
                if n_hits < minsup_count:
                    continue
                if n_matched and n_hits / n_matched < min_confidence:
                    continue
                rule_profit = pair_profits[(body, hid)]
                if rule_profit < min_rule_profit:
                    continue
                if body_gsales is None:
                    body_gsales = frozenset(gsales[gid] for gid in body)
                    emitted_bodies.append(body)
                rule = Rule(body=body_gsales, head=gsales[hid], order=order)
                stats = RuleStats(
                    n_matched=n_matched,
                    n_hits=n_hits,
                    rule_profit=rule_profit,
                    n_total=n_total,
                )
                body_ids_by_order[order] = body
                scored.append(ScoredRule(rule=rule, stats=stats))
                order += 1
    return scored, body_ids_by_order, emitted_bodies


def _needed_pairs(
    config: MinerConfig,
    minsup_count: int,
    frequent_bodies: list[Body],
    body_counts: dict[Body, int],
    pair_counts_of: dict[tuple[Body, int], int],
    frequent_heads: list[int],
    gsales: list[GSale],
) -> list[tuple[Body, int]]:
    """The (body, head) pairs whose credited-profit sum emission will read.

    Exactly the pairs that reach the ``rule_profit`` check in
    :func:`_emit`: promo-block, pair support and confidence applied in
    the same order.
    """
    promo_node = [g.node if g.kind is GKind.PROMO else None for g in gsales]
    head_nodes = {hid: gsales[hid].node for hid in frequent_heads}
    needed: list[tuple[Body, int]] = []
    for body in frequent_bodies:
        n_matched = body_counts[body]
        blocked = {
            node for gid in body if (node := promo_node[gid]) is not None
        }
        for hid in frequent_heads:
            if head_nodes[hid] in blocked:
                continue
            n_hits = pair_counts_of[(body, hid)]
            if n_hits < minsup_count:
                continue
            if n_matched and n_hits / n_matched < config.min_confidence:
                continue
            needed.append((body, hid))
    return needed


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def mine_store(
    store: ChunkedTransactionStore, config: MinerConfig
) -> MiningResult:
    """Full SON two-pass mine of a partitioned store.

    Bit-identical to in-RAM mining (any backend) of the same
    transactions with the same configuration; see the module docstring
    for the argument.  Persists the SON state for
    :func:`refresh_store` next to the store.
    """
    symbols = store.symbols
    minsup_count = max(1, math.ceil(config.min_support * store.n))
    obs.count("mine.backend.ooc")
    obs.annotate(backend="ooc")

    all_partitions = list(range(store.n_partitions))
    union = _mine_locals(store, all_partitions, config, symbols)
    obs.count("partition.union_candidates", len(union))

    counted = _prune_union(union)
    head_ids = symbols.candidate_head_ids
    body_counts_arr = np.zeros(len(counted), dtype=np.int64)
    pair_counts = np.zeros((len(counted), len(head_ids)), dtype=np.int64)
    _count_partitions(
        store, all_partitions, counted, head_ids, body_counts_arr, pair_counts
    )

    head_totals: dict[int, tuple[int, float]] = {}
    _extend_head_totals(store, all_partitions, head_totals)

    return _finish(
        store,
        config,
        minsup_count,
        union,
        counted,
        body_counts_arr,
        pair_counts,
        head_totals,
        stored_profits={},
        stored_masks={},
        new_partitions=(),
    )


def refresh_store(
    store: ChunkedTransactionStore,
    new_transactions: Iterable[Transaction],
    config: MinerConfig,
) -> MiningResult:
    """Append ``new_transactions`` and update the mining result incrementally.

    Old partitions are never re-mined: their local results remain valid
    (local thresholds don't depend on ``n``), existing candidates gain
    only the new partitions' counts, and stored profit sums extend
    sequentially (new global positions follow all old ones).  Old
    partitions are re-counted only for the *delta* — candidates or
    (body, head) pairs the grown union and thresholds newly require.
    The result is identical to :func:`mine_store` on the combined
    store.
    """
    state = _load_state(store, config)
    if (
        state["n"] != store.n
        or state["n_partitions"] != store.n_partitions
    ):
        raise MiningError(
            f"{store.root}: SON state covers {state['n']} transactions in "
            f"{state['n_partitions']} partitions but the store holds "
            f"{store.n} in {store.n_partitions}; re-mine the store"
        )
    with obs.span("partition.refresh"):
        new_partitions = store.append(new_transactions)
        if not new_partitions:
            raise MiningError("refresh needs at least one new transaction")
        old_partitions = [
            i for i in range(store.n_partitions) if i not in set(new_partitions)
        ]
        symbols = store.symbols
        minsup_count = max(1, math.ceil(config.min_support * store.n))

        union: set[Body] = set(state["union"])
        union.update(_mine_locals(store, new_partitions, config, symbols))
        obs.count("partition.union_candidates", len(union))

        counted = _prune_union(union)
        head_ids = symbols.candidate_head_ids
        old_counted_pos = {body: k for k, body in enumerate(state["counted"])}
        body_counts_arr = np.zeros(len(counted), dtype=np.int64)
        pair_counts = np.zeros((len(counted), len(head_ids)), dtype=np.int64)
        delta: list[Body] = []
        delta_rows: list[int] = []
        for k, body in enumerate(counted):
            old_row = old_counted_pos.get(body)
            if old_row is None:
                delta.append(body)
                delta_rows.append(k)
            else:
                body_counts_arr[k] = state["body_counts"][body]
                pair_counts[k] = state["pair_counts"][old_row]
        obs.count("partition.delta_candidates", len(delta))
        # New partitions contribute to every candidate; old partitions
        # are re-scanned only for the delta.
        _count_partitions(
            store, new_partitions, counted, head_ids, body_counts_arr, pair_counts
        )
        if delta:
            delta_body_counts = np.zeros(len(delta), dtype=np.int64)
            delta_pair_counts = np.zeros(
                (len(delta), len(head_ids)), dtype=np.int64
            )
            _count_partitions(
                store,
                old_partitions,
                delta,
                head_ids,
                delta_body_counts,
                delta_pair_counts,
            )
            for pos, k in enumerate(delta_rows):
                body_counts_arr[k] += delta_body_counts[pos]
                pair_counts[k] += delta_pair_counts[pos]

        head_totals = dict(state["head_totals"])
        _extend_head_totals(store, new_partitions, head_totals)

        return _finish(
            store,
            config,
            minsup_count,
            union,
            counted,
            body_counts_arr,
            pair_counts,
            head_totals,
            stored_profits=state["pair_profits"],
            stored_masks=state["emitted_masks"],
            new_partitions=tuple(new_partitions),
        )


def _finish(
    store: ChunkedTransactionStore,
    config: MinerConfig,
    minsup_count: int,
    union: set[Body],
    counted: list[Body],
    body_counts_arr: "numpy.ndarray",
    pair_counts: "numpy.ndarray",
    head_totals: dict[int, tuple[int, float]],
    stored_profits: dict[tuple[Body, int], float],
    stored_masks: dict[Body, int],
    new_partitions: tuple[int, ...],
) -> MiningResult:
    """Shared tail of mine and refresh: profits, emission, state save."""
    symbols = store.symbols
    head_ids = symbols.candidate_head_ids
    head_col = {hid: j for j, hid in enumerate(head_ids)}
    global_head_counts = store.global_head_counts()

    body_counts = {
        body: int(count) for body, count in zip(counted, body_counts_arr)
    }
    frequent_bodies = [
        body for body in counted if body_counts[body] >= minsup_count
    ]
    obs.count("partition.globally_frequent", len(frequent_bodies))
    frequent_heads = [
        hid
        for hid in head_ids
        if global_head_counts.get(hid, 0) >= minsup_count
    ]
    pair_counts_of = {
        (body, hid): int(pair_counts[k, head_col[hid]])
        for k, body in enumerate(counted)
        for hid in frequent_heads
    }

    needed = _needed_pairs(
        config,
        minsup_count,
        frequent_bodies,
        body_counts,
        pair_counts_of,
        frequent_heads,
        symbols.gsales,
    )
    all_partitions = list(range(store.n_partitions))
    new_set = set(new_partitions)
    old_partitions = [i for i in all_partitions if i not in new_set]
    # Pairs with a stored sum already cover every old partition; fresh
    # pairs catch up over the old history first, then every needed pair
    # extends over the new partitions — keeping each accumulation one
    # sequential sum in ascending global transaction order.  On a full
    # mine nothing is stored and "old" is everything.
    pair_profits: dict[tuple[Body, int], float] = {}
    fresh: dict[tuple[Body, int], float] = {}
    for pair in needed:
        stored = stored_profits.get(pair)
        if stored is not None:
            pair_profits[pair] = stored
        else:
            fresh[pair] = 0.0
    obs.count("partition.profit_pairs", len(needed))
    obs.count("partition.profit_pairs_fresh", len(fresh))
    _accumulate_profits(store, old_partitions, fresh)
    pair_profits.update(fresh)
    _accumulate_profits(store, list(new_partitions), pair_profits)

    index = PartitionedIndex(store)
    scored, body_ids_by_order, emitted_bodies = _emit(
        index,
        config,
        minsup_count,
        frequent_bodies,
        body_counts,
        pair_counts_of,
        pair_profits,
        frequent_heads,
    )
    # Global matched-transaction masks for the emitted bodies: stored
    # masks already cover the old partitions; only bodies emitted for
    # the first time re-scan history.
    emitted_masks: dict[Body, int] = {}
    missing: dict[Body, int] = {}
    for body in emitted_bodies:
        stored_mask = stored_masks.get(body)
        if stored_mask is not None:
            emitted_masks[body] = stored_mask
        else:
            missing[body] = 0
    _collect_masks(store, old_partitions, missing)
    emitted_masks.update(missing)
    _collect_masks(store, list(new_partitions), emitted_masks)
    body_tid_masks = {
        rule_order: emitted_masks[body]
        for rule_order, body in body_ids_by_order.items()
    }

    default_rule = _build_default_rule(index, len(scored), head_totals)
    body_ids_by_order[len(scored)] = ()
    result = MiningResult(
        index=index,  # type: ignore[arg-type]
        scored_rules=scored,
        default_rule=default_rule,
        body_tid_masks=body_tid_masks,
        frequent_body_count=len(frequent_bodies),
        body_ids_by_order=body_ids_by_order,
        minsup_count=minsup_count,
    )
    _save_state(
        store,
        config,
        union,
        counted,
        body_counts_arr,
        pair_counts,
        head_totals,
        pair_profits,
        emitted_masks,
    )
    return result


def mine_partitioned_db(
    db: TransactionDB,
    moa: MOAHierarchy,
    profit_model: ProfitModel,
    config: MinerConfig,
) -> MiningResult:
    """Mine an in-RAM database through the out-of-core machinery.

    Spills ``db`` into a partitioned store — at ``config.store_dir`` if
    set (kept for later :func:`refresh_store` runs), else a temporary
    directory owned by the returned result's index — then runs the SON
    two-pass mine.  This is what ``MinerConfig(backend="ooc")`` routes
    to.
    """
    resolve_backend("ooc", len(db))  # loud, consistent numpy gate
    partition_size = config.partition_size or DEFAULT_PARTITION_SIZE
    tmp: tempfile.TemporaryDirectory | None = None
    if config.store_dir is not None:
        root = Path(config.store_dir)
        if (root / "manifest.json").exists():
            raise MiningError(
                f"{root}: already contains a transaction store; refresh it "
                "or point store_dir at an empty directory"
            )
    else:
        tmp = tempfile.TemporaryDirectory(prefix="repro-ooc-")
        root = Path(tmp.name)
    store = ChunkedTransactionStore.build(
        root,
        db,
        moa,
        profit_model,
        partition_size=partition_size,
        max_resident_mb=config.max_resident_mb,
    )
    result = mine_store(store, config)
    if tmp is not None:
        result.index._tmp = tmp  # type: ignore[union-attr]
    return result
