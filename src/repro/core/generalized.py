"""Generalized sales (paper Definition 3).

A generalized sale takes one of three forms:

* ``⟨I, P⟩`` — an item with a promotion code but no quantity (rule heads use
  only this form; so do price-specific body conditions);
* ``I`` — a bare item (any promotion code);
* ``C`` — a concept from the hierarchy.

This module defines the immutable :class:`GSale` value type plus its ordering
helpers.  The *semantics* of generalization (which generalized sales a
concrete sale lifts to, and which generalized sale subsumes which) live in
:mod:`repro.core.moa`, because they depend on the hierarchy and on whether
mining-on-availability is enabled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["GKind", "GSale"]


class GKind(enum.Enum):
    """The three syntactic forms of a generalized sale."""

    CONCEPT = "concept"
    ITEM = "item"
    PROMO = "promo"


@dataclass(frozen=True, slots=True)
class GSale:
    """One generalized sale.

    ``node`` is the concept name (``CONCEPT``) or the item id (``ITEM`` and
    ``PROMO``); ``promo`` is the promotion-code id and is present exactly for
    the ``PROMO`` form.
    """

    kind: GKind
    node: str
    promo: str | None = None
    #: Hash of the identity fields, computed once at construction.  GSales
    #: are interned and then hashed over and over (body interning, inverted
    #: index lookups, basket expansion), so the precomputed value replaces
    #: a per-call field-tuple hash on one of the hottest call sites.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if not self.node:
            raise ValidationError("generalized sale node must be non-empty")
        if self.kind is GKind.PROMO:
            if not self.promo:
                raise ValidationError(
                    f"promo-form generalized sale of {self.node!r} needs a "
                    "promotion code"
                )
        elif self.promo is not None:
            raise ValidationError(
                f"{self.kind.value}-form generalized sale of {self.node!r} "
                "must not carry a promotion code"
            )
        object.__setattr__(self, "_hash", hash((self.kind, self.node, self.promo)))

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def concept(name: str) -> "GSale":
        """The concept form ``C``."""
        return GSale(GKind.CONCEPT, name)

    @staticmethod
    def item(item_id: str) -> "GSale":
        """The bare-item form ``I``."""
        return GSale(GKind.ITEM, item_id)

    @staticmethod
    def promo_form(item_id: str, promo_code: str) -> "GSale":
        """The ``⟨I, P⟩`` form."""
        return GSale(GKind.PROMO, item_id, promo_code)

    # ------------------------------------------------------------------
    # Presentation and ordering
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable rendering used in rule explanations."""
        if self.kind is GKind.CONCEPT:
            return f"[{self.node}]"
        if self.kind is GKind.ITEM:
            return self.node
        return f"<{self.node} @ {self.promo}>"

    def sort_key(self) -> tuple[str, str, str]:
        """Deterministic total order used for canonical rule bodies."""
        return (self.node, self.kind.value, self.promo or "")

    def __lt__(self, other: "GSale") -> bool:
        if not isinstance(other, GSale):
            return NotImplemented
        return self.sort_key() < other.sort_key()
