"""Dense chunked-bitset kernel: vectorized support counting.

The big-int mining backend stores each tid-set as one arbitrary-precision
Python integer and evaluates candidates one at a time — an ``&`` plus a
``bit_count()`` per (body, head) or join pair, each paying interpreter
dispatch and a fresh heap allocation for the intermediate mask.  At
production scale (the ~100k-transaction workloads of the ROADMAP north
star) that per-candidate overhead dominates a single mine.

This module provides the dense alternative: every gsale's tid-mask
becomes a row of ``ceil(n / 64)`` little-endian ``uint64`` chunks in a
shared matrix, so a whole level of Apriori join candidates — or a body
against every frequent head — is evaluated as one batched ``AND`` +
popcount over contiguous rows.  The batched primitives release the GIL
inside NumPy's ufunc loops, which is what makes the opt-in within-mine
thread parallelism (``MinerConfig.n_jobs`` / ``REPRO_JOBS``) effective.

Equivalence with the big-int backend is structural, not numerical: the
dense rows are bit-for-bit the same masks (``to_int``/``from_int`` are
exact inverses on ``n``-bit values, with the pad bits of the last chunk
always zero), candidate generation order is shared with the big-int
path, and credited-profit sums are *not* vectorized — survivors convert
their hit rows back to Python ints and run the exact sequential
summation the big-int backend runs, so every float in a
:class:`~repro.core.mining.MiningResult` is identical, not just close.
See ``docs/ALGORITHMS.md`` §9 for the full argument.

NumPy is an optional extra (``pip install repro[dense]``): this module
imports without it, :data:`HAVE_NUMPY` reports availability, and every
caller falls back to the big-int backend when the kernel is unavailable.
"""

from __future__ import annotations

import os
import sys
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.errors import MiningError, ValidationError
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy

try:  # NumPy is the optional "dense" extra; the big-int path needs nothing.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the numpy-free CI leg
    np = None  # type: ignore[assignment]

__all__ = [
    "HAVE_NUMPY",
    "DENSE_MIN_TRANSACTIONS",
    "BACKENDS",
    "DenseBitsetKernel",
    "map_chunks",
    "resolve_backend",
    "resolve_jobs",
    "run_sliced",
]

#: Whether the dense kernel can run here.  Chunks are little-endian
#: ``uint64``, so ``row.tobytes()`` equals the mask's little-endian byte
#: string only on little-endian hosts; big-endian platforms (rare) use
#: the big-int backend.
HAVE_NUMPY = np is not None and sys.byteorder == "little"

#: ``backend="auto"`` switches to the dense kernel at this many
#: transactions.  Below it the big-int masks fit comfortably in cache and
#: the matrix build does not amortize; above it batched AND + popcount
#: wins decisively.  The crossover is flat over a wide range, so the
#: constant is deliberately coarse.
DENSE_MIN_TRANSACTIONS = 4096

BACKENDS = ("auto", "dense", "bigint", "ooc")

_CHUNK_BITS = 64


def resolve_backend(backend: str, n_transactions: int) -> str:
    """The concrete backend (``"dense"``, ``"bigint"`` or ``"ooc"``).

    ``"auto"`` picks the dense kernel when NumPy is importable and the
    database is large enough to amortize the matrix build; an explicit
    ``"dense"`` insists, raising :class:`~repro.errors.MiningError` when
    the kernel cannot run so a deployment that sized its hardware for the
    dense path fails loudly instead of silently mining 10× slower.  The
    out-of-core partitioned backend (``"ooc"``, :mod:`repro.core.partition`)
    is never auto-selected — spilling to disk is an explicit choice — and
    like ``"dense"`` it fails loudly without numpy: its memmapped chunk
    matrices are the dense kernel's representation.
    """
    if backend == "bigint":
        return "bigint"
    if backend == "dense":
        if not HAVE_NUMPY:
            raise MiningError(
                "backend='dense' requires numpy on a little-endian host; "
                "install the 'dense' extra (pip install repro[dense]) or "
                "use backend='auto'/'bigint'"
            )
        return "dense"
    if backend == "ooc":
        if not HAVE_NUMPY:
            raise MiningError(
                "backend='ooc' requires numpy on a little-endian host: the "
                "partitioned store memmaps uint64 chunk matrices; install "
                "the 'dense' extra (pip install repro[dense]) or use "
                "backend='auto'/'bigint'"
            )
        return "ooc"
    if backend == "auto":
        if HAVE_NUMPY and n_transactions >= DENSE_MIN_TRANSACTIONS:
            return "dense"
        return "bigint"
    raise MiningError(f"unknown mining backend {backend!r}; expected one of {BACKENDS}")


def resolve_jobs(n_jobs: int | None) -> int:
    """Worker-thread count for within-mine batch parallelism.

    ``None`` defers to ``REPRO_JOBS`` (the same knob that fans out sweep
    cells across processes, see ``repro.eval.experiments.jobs_from_env``),
    defaulting to sequential.  Results are identical at any setting:
    batches are partitioned deterministically and gathered in order.
    """
    if n_jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValidationError(
                f"REPRO_JOBS must be a positive integer, got {raw!r}"
            ) from None
    if n_jobs < 1:
        raise ValidationError(f"n_jobs must be >= 1, got {n_jobs}")
    return n_jobs


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise MiningError(
            "the dense bitset kernel requires numpy on a little-endian host"
        )


if np is not None and not hasattr(np, "bitwise_count"):
    # NumPy < 2.0 has no popcount ufunc; an 8-bit lookup table over the
    # uint8 view counts the same bits (each uint64 chunk is 8 table hits).
    _POPCOUNT8 = np.array(
        [bin(v).count("1") for v in range(256)], dtype=np.uint16
    )
else:
    _POPCOUNT8 = None


def _popcount_rows(matrix: "numpy.ndarray") -> "numpy.ndarray":
    """Per-row popcount of a ``(rows, chunks)`` uint64 matrix (int64)."""
    if _POPCOUNT8 is None:
        return np.bitwise_count(matrix).sum(axis=-1, dtype=np.int64)
    as_bytes = matrix.view(np.uint8)
    return _POPCOUNT8[as_bytes].sum(axis=-1, dtype=np.int64)


class DenseBitsetKernel:
    """Chunked-bitset mirror of one :class:`TransactionIndex`'s masks.

    Each gsale's transaction mask becomes a row of ``n_chunks``
    little-endian ``uint64`` words; bit ``i`` of the mask is bit
    ``i % 64`` of chunk ``i // 64``.  The matrices are built once from
    the index's big-int masks and shared — like every other structural
    table — between profit-model twins of the index.

    All primitives are exact: ``from_int``/``to_int`` round-trip any
    ``n``-bit mask, and counting is integer popcount, so a dense count
    can never disagree with ``int.bit_count()`` on the same mask.
    """

    __slots__ = (
        "n",
        "n_chunks",
        "body_gids",
        "body_rows",
        "_body_matrix",
    )

    def __init__(self, n: int, body_masks: dict[int, int]) -> None:
        _require_numpy()
        if n <= 0:
            raise MiningError("dense kernel needs a non-empty database")
        self.n = n
        self.n_chunks = (n + _CHUNK_BITS - 1) // _CHUNK_BITS
        #: gsale ids with a row in the matrix, ascending (deterministic).
        self.body_gids: list[int] = sorted(body_masks)
        self.body_rows: dict[int, int] = {
            gid: row for row, gid in enumerate(self.body_gids)
        }
        self._body_matrix = self.pack_masks(
            body_masks[gid] for gid in self.body_gids
        )
        obs.cache_event(
            "kernel.mask_matrix",
            builds=1,
            resident_bytes=int(self._body_matrix.nbytes),
        )

    @classmethod
    def from_matrix(
        cls, n: int, gids: Sequence[int], matrix: "numpy.ndarray"
    ) -> "DenseBitsetKernel":
        """Wrap an existing ``(len(gids), ceil(n/64))`` chunk matrix.

        The out-of-core store persists each partition's tid-mask rows as
        exactly this little-endian ``uint64`` layout, so a partition's
        kernel is a zero-copy view over the memmapped file — no big-int
        round trip, no matrix rebuild.  ``gids`` must be ascending (the
        store writes rows in ascending gsale id, matching the dict-built
        constructor's ``sorted(body_masks)`` order) and pad bits of the
        last chunk must be zero, which the store's builder guarantees.
        """
        _require_numpy()
        if n <= 0:
            raise MiningError("dense kernel needs a non-empty database")
        kernel = cls.__new__(cls)
        kernel.n = n
        kernel.n_chunks = (n + _CHUNK_BITS - 1) // _CHUNK_BITS
        if matrix.shape != (len(gids), kernel.n_chunks):
            raise MiningError(
                f"chunk matrix shape {matrix.shape} does not match "
                f"{len(gids)} rows x {kernel.n_chunks} chunks"
            )
        kernel.body_gids = list(gids)
        kernel.body_rows = {gid: row for row, gid in enumerate(kernel.body_gids)}
        kernel._body_matrix = matrix
        return kernel

    # ------------------------------------------------------------------
    # Mask <-> row conversions (exact inverses on n-bit values)
    # ------------------------------------------------------------------
    def from_int(self, mask: int) -> "numpy.ndarray":
        """One big-int mask as a ``(n_chunks,)`` uint64 row."""
        return np.frombuffer(
            mask.to_bytes(self.n_chunks * 8, "little"), dtype="<u8"
        )

    @staticmethod
    def to_int(row: "numpy.ndarray") -> int:
        """A chunk row back to the big-int mask (the exact inverse)."""
        return int.from_bytes(row.tobytes(), "little")

    def pack_masks(self, masks: Iterable[int]) -> "numpy.ndarray":
        """Stack big-int masks into a ``(len(masks), n_chunks)`` matrix."""
        n_bytes = self.n_chunks * 8
        buffer = b"".join(mask.to_bytes(n_bytes, "little") for mask in masks)
        matrix = np.frombuffer(buffer, dtype="<u8")
        return matrix.reshape(-1, self.n_chunks)

    def positions(self, mask: int) -> "numpy.ndarray":
        """Set-bit positions of a big-int mask, ascending.

        The vectorized twin of
        :meth:`~repro.core.mining.TransactionIndex.iter_bits`:
        ``unpackbits`` over the little-endian byte string yields bits in
        ascending significance, so the order matches ``iter_bits``
        exactly — consumers summing credited profit over the positions
        accumulate in the same order and get the same float.
        """
        as_bytes = np.frombuffer(
            mask.to_bytes((self.n + 7) // 8, "little"), dtype=np.uint8
        )
        bits = np.unpackbits(as_bytes, bitorder="little", count=self.n)
        return np.flatnonzero(bits)

    # ------------------------------------------------------------------
    # Batched primitives
    # ------------------------------------------------------------------
    def row_of(self, gid: int) -> "numpy.ndarray":
        """The (read-only view of the) matrix row of one gsale id."""
        return self._body_matrix[self.body_rows[gid]]

    def popcounts(self, matrix: "numpy.ndarray") -> "numpy.ndarray":
        """Per-row popcount (int64) of a ``(rows, chunks)`` matrix."""
        return _popcount_rows(matrix)

    def single_counts(self) -> dict[int, int]:
        """Support count of every gsale row, one vectorized pass."""
        counts = _popcount_rows(self._body_matrix)
        return {
            gid: int(counts[row]) for gid, row in self.body_rows.items()
        }

    def and_counts(
        self,
        rows: "numpy.ndarray",
        left: Sequence[int],
        right: Sequence[int],
    ) -> tuple["numpy.ndarray", "numpy.ndarray"]:
        """Batched ``rows[left] & rows[right]`` with per-pair popcounts.

        Returns ``(anded, counts)``.  The AND happens in the gathered
        left copy, so ``rows`` itself is never mutated.
        """
        gathered = rows[np.asarray(left, dtype=np.intp)]
        np.bitwise_and(
            gathered, rows[np.asarray(right, dtype=np.intp)], out=gathered
        )
        counts = _popcount_rows(gathered)
        return gathered, counts

    def join_pairs(
        self,
        rows: "numpy.ndarray",
        left: Sequence[int],
        right: Sequence[int],
        min_count: int,
    ) -> tuple[list[int], "numpy.ndarray"]:
        """One Apriori join batch: AND the row pairs, keep frequent results.

        Returns ``(kept, anded_rows)`` where ``kept`` lists the positions
        (within this batch, ascending) whose intersection meets
        ``min_count`` and ``anded_rows`` holds exactly those intersection
        rows.  Popcount is exact integer counting, so the survivors are
        precisely the candidates the big-int backend would keep.
        """
        anded, counts = self.and_counts(rows, left, right)
        keep = np.flatnonzero(counts >= min_count)
        return keep.tolist(), anded[keep]

    def gather_rows(self, gids: Sequence[int]) -> "numpy.ndarray":
        """A fresh ``(len(gids), n_chunks)`` matrix of the given gsale rows."""
        rows = np.fromiter(
            (self.body_rows[gid] for gid in gids), dtype=np.intp, count=len(gids)
        )
        return self._body_matrix[rows]

    @staticmethod
    def take(matrix: "numpy.ndarray", indices: Sequence[int]) -> "numpy.ndarray":
        """``matrix[indices]`` without the caller importing numpy."""
        return matrix[np.asarray(indices, dtype=np.intp)]

    def stack(self, parts: Sequence["numpy.ndarray"]) -> "numpy.ndarray":
        """Vertically stack row matrices (an empty list stacks to 0 rows)."""
        if not parts:
            return np.empty((0, self.n_chunks), dtype="<u8")
        return np.vstack(parts)

    @staticmethod
    def and_to_int(a: "numpy.ndarray", b: "numpy.ndarray") -> int:
        """``to_int(a & b)`` — one candidate's hit mask, back as a big int."""
        return int.from_bytes(np.bitwise_and(a, b).tobytes(), "little")

    def intersect_to_int(self, gids: Sequence[int]) -> int:
        """Big-int mask of the transactions containing every gsale in ``gids``.

        Mirrors :meth:`TransactionIndex.body_mask` exactly, including the
        unknown-gsale convention (a gsale with no mask matches nothing).
        """
        rows = self.body_rows
        first = rows.get(gids[0])
        if first is None:
            return 0
        acc = self._body_matrix[first].copy()
        for gid in gids[1:]:
            row = rows.get(gid)
            if row is None:
                return 0
            np.bitwise_and(acc, self._body_matrix[row], out=acc)
        return self.to_int(acc)

    def head_hit_counts(
        self,
        body_rows: "numpy.ndarray",
        head_matrix: "numpy.ndarray",
        executor=None,
        n_jobs: int = 1,
    ) -> "numpy.ndarray":
        """Hit counts of every (body, head) pair: ``popcount(body & head)``.

        Returns a ``(n_bodies, n_heads)`` int64 matrix.  This is the
        rule-emission inner product: one vectorized AND + popcount per
        head over the whole body batch replaces a big-int ``&`` +
        ``bit_count()`` per (body, head) candidate.
        """
        n_heads = head_matrix.shape[0]

        def work(start: int, stop: int) -> "numpy.ndarray":
            batch = body_rows[start:stop]
            scratch = np.empty_like(batch)
            out = np.empty((stop - start, n_heads), dtype=np.int64)
            for j in range(n_heads):
                np.bitwise_and(batch, head_matrix[j], out=scratch)
                out[:, j] = _popcount_rows(scratch)
            return out

        parts = run_sliced(
            work, body_rows.shape[0], executor, n_jobs, min_batch=32
        )
        if not parts:
            return np.empty((0, n_heads), dtype=np.int64)
        return np.concatenate(parts, axis=0)

    def masks_for_bodies(
        self, bodies: Sequence[tuple[int, ...]]
    ) -> list[int]:
        """Big-int transaction masks of many bodies, batched by member.

        The accumulator starts from every body's first member row and
        ANDs in the k-th members of all bodies long enough to have one —
        ``max_body_size`` vectorized passes instead of one big-int ``&``
        chain per body.  Used by the FP-growth backend's mask-attachment
        step.
        """
        if not bodies:
            return []
        body_rows = self.body_rows
        order = sorted(range(len(bodies)), key=lambda i: len(bodies[i]))
        first = np.fromiter(
            (body_rows[bodies[i][0]] for i in order),
            dtype=np.intp,
            count=len(bodies),
        )
        acc = self._body_matrix[first]
        max_len = len(bodies[order[-1]])
        for member in range(1, max_len):
            start = next(
                pos
                for pos, i in enumerate(order)
                if len(bodies[i]) > member
            )
            gather = np.fromiter(
                (body_rows[bodies[i][member]] for i in order[start:]),
                dtype=np.intp,
                count=len(order) - start,
            )
            np.bitwise_and(
                acc[start:], self._body_matrix[gather], out=acc[start:]
            )
        masks = [0] * len(bodies)
        for pos, i in enumerate(order):
            masks[i] = self.to_int(acc[pos])
        return masks


def parallel_ranges(
    n_items: int, n_jobs: int, min_batch: int = 32
) -> list[tuple[int, int]]:
    """Deterministic near-even partition of ``range(n_items)``.

    Workers each take one contiguous slice; gathering slice results in
    index order makes the parallel evaluation order-identical to the
    sequential one, which is what lets ``n_jobs`` stay a pure
    performance knob.
    """
    if n_items <= 0:
        return []
    n_slices = max(1, min(n_jobs, (n_items + min_batch - 1) // min_batch))
    base, extra = divmod(n_items, n_slices)
    ranges: list[tuple[int, int]] = []
    start = 0
    for slice_index in range(n_slices):
        stop = start + base + (1 if slice_index < extra else 0)
        if stop > start:
            ranges.append((start, stop))
        start = stop
    return ranges


def run_sliced(
    work: Callable[[int, int], object],
    n_items: int,
    executor,
    n_jobs: int,
    min_batch: int = 32,
) -> list:
    """Run ``work(start, stop)`` over a partition, results in slice order.

    With one job (or no executor) this is a plain loop; otherwise slices
    are submitted to the shared thread pool.  NumPy's AND/popcount loops
    release the GIL, so threads — which share the matrices for free —
    give real parallelism without pickling 100k-bit masks across
    processes.
    """
    ranges = parallel_ranges(n_items, n_jobs, min_batch)
    if executor is None or n_jobs <= 1 or len(ranges) <= 1:
        return [work(start, stop) for start, stop in ranges]
    futures = [executor.submit(work, start, stop) for start, stop in ranges]
    return [future.result() for future in futures]


def map_chunks(
    work: Callable[[int, int], object],
    n_items: int,
    chunk_size: int,
    executor,
    n_jobs: int,
) -> Iterable:
    """Yield ``work(start, stop)`` over fixed-size chunks, in chunk order.

    Unlike :func:`run_sliced` — which partitions by worker count — the
    chunk size here bounds *memory*: a candidate join over millions of
    pairs is evaluated a few thousand rows at a time regardless of
    ``n_jobs``.  With an executor, up to ``n_jobs`` chunks are kept in
    flight; results are still yielded strictly in order, so consumers
    are deterministic at any parallelism.
    """
    bounds = [
        (start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]
    if executor is None or n_jobs <= 1 or len(bounds) <= 1:
        for start, stop in bounds:
            yield work(start, stop)
        return
    from collections import deque
    from itertools import islice

    bounds_iter = iter(bounds)
    pending: deque = deque(
        executor.submit(work, start, stop)
        for start, stop in islice(bounds_iter, n_jobs)
    )
    while pending:
        future = pending.popleft()
        nxt = next(bounds_iter, None)
        if nxt is not None:
            pending.append(executor.submit(work, *nxt))
        yield future.result()
