"""Spillable columnar transaction store: memmapped per-partition masks.

The dense kernel (:mod:`repro.core.engine.kernel`) holds every gsale's
tid-mask row in RAM, which caps mining at what one machine's memory
fits.  :class:`ChunkedTransactionStore` breaks that ceiling: a stream of
transactions is indexed partition by partition — each partition's
extended-sale tid-masks become a little-endian ``uint64`` chunk matrix
persisted to disk, exactly the layout :class:`DenseBitsetKernel` counts
over — so the SON two-pass partitioned miner
(:mod:`repro.core.partition`) reuses the kernel's batched AND + popcount
per partition without ever materializing the full matrix.

Per partition ``pNNNNN`` the store writes four files:

* ``pNNNNN.meta.json`` — partition size, the gsale ids with a mask row,
  the head ids with a hit row and their per-partition hit counts;
* ``pNNNNN.body.u64`` — the ``(n_gids, ceil(n_p/64))`` body chunk matrix;
* ``pNNNNN.heads.u64`` — the head hit-mask matrix, same layout;
* ``pNNNNN.prof.f64`` — credited head profits, concatenated per head in
  ``head_ids`` order, aligned with the *ascending* hit positions of the
  head's mask (the order every profit sum in the miner accumulates in).

``manifest.json`` ties them together and is written atomically (temp +
``os.replace``) *after* all partition files, so a crash mid-build or
mid-append leaves either no manifest or the previous consistent one —
never a manifest pointing at garbage.  Every file's byte size is
recorded in the manifest and checked on load: a truncated memmap is a
loud :class:`~repro.errors.SerializationError`, not silent wrong counts.

Resident memory is bounded: loaded partitions live in an LRU keyed by
their byte size, evicted once the budget (``max_resident_mb``) is
exceeded.  ``repro.obs`` sees loads/evictions as cache events on
``store.partitions`` with a ``resident_bytes`` gauge, and the builder
counts ``store.spilled_bytes``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core.engine.kernel import HAVE_NUMPY, DenseBitsetKernel
from repro.core.engine.symbols import SymbolTable
from repro.core.moa import MOAHierarchy
from repro.core.profit import ProfitModel
from repro.core.sales import Transaction
from repro.errors import MiningError, SerializationError
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the numpy-free CI leg
    np = None  # type: ignore[assignment]

__all__ = [
    "DEFAULT_PARTITION_SIZE",
    "DEFAULT_RESIDENT_MB",
    "ChunkedTransactionStore",
    "StorePartition",
]

_FORMAT = "repro-ooc-store-v1"
_MANIFEST = "manifest.json"

#: Default transactions per partition.  64k transactions make an 8 KB
#: mask row per gsale — big enough to amortize per-partition Python
#: overhead, small enough that a few resident partitions stay in the
#: hundreds of megabytes even on wide symbol universes.
DEFAULT_PARTITION_SIZE = 65_536

#: Default resident budget for loaded partitions (LRU-evicted above it).
DEFAULT_RESIDENT_MB = 256.0


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise MiningError(
            "the out-of-core transaction store requires numpy on a "
            "little-endian host (its partition files are memmapped "
            "uint64 chunk matrices); install the 'dense' extra "
            "(pip install repro[dense]) or mine in-RAM with "
            "backend='auto'/'bigint'"
        )


def _symbols_fingerprint(symbols: SymbolTable) -> str:
    """Stable digest of the symbol universe (order-sensitive).

    Ids persisted in partition metadata are positions in the table's
    ``gsales`` list, so a store is only readable against a world that
    enumerates the identical universe in the identical order.
    """
    digest = hashlib.sha256()
    for gsale in symbols.gsales:
        digest.update(gsale.describe().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _rows_from_positions(
    positions_by_id: dict[int, list[int]], ids: list[int], n: int
) -> bytes:
    """Pack per-id position lists into a contiguous chunk-matrix buffer.

    Bit ``i`` of a row is bit ``i % 64`` of little-endian chunk
    ``i // 64`` — the exact :class:`DenseBitsetKernel` layout.  Rows are
    emitted in the order of ``ids``; pad bits beyond ``n`` stay zero.
    """
    n_chunks = (n + 63) // 64
    row_bytes = n_chunks * 8
    buffer = bytearray(row_bytes * len(ids))
    for row, key in enumerate(ids):
        base = row * row_bytes
        for pos in positions_by_id[key]:
            buffer[base + (pos >> 3)] |= 1 << (pos & 7)
    return bytes(buffer)


class StorePartition:
    """One loaded partition: memmapped matrices plus profit columns.

    ``offset`` is the partition's first transaction's global position;
    local position ``p`` is global position ``offset + p``.  The body
    matrix is exposed as a per-partition :class:`DenseBitsetKernel`
    (zero-copy over the memmap), so the SON passes run the same batched
    primitives the in-RAM dense backend runs.
    """

    __slots__ = (
        "name",
        "n",
        "offset",
        "gids",
        "head_ids",
        "head_counts",
        "nbytes",
        "_body_matrix",
        "_head_matrix",
        "_head_rows",
        "_profits",
        "_prof_starts",
        "_kernel",
    )

    def __init__(
        self,
        name: str,
        n: int,
        offset: int,
        gids: list[int],
        head_ids: list[int],
        head_counts: list[int],
        body_matrix: "numpy.ndarray",
        head_matrix: "numpy.ndarray",
        profits: "numpy.ndarray",
    ) -> None:
        self.name = name
        self.n = n
        self.offset = offset
        self.gids = gids
        self.head_ids = head_ids
        self.head_counts = head_counts
        self._body_matrix = body_matrix
        self._head_matrix = head_matrix
        self._head_rows = {hid: row for row, hid in enumerate(head_ids)}
        self._profits = profits
        starts: dict[int, int] = {}
        cursor = 0
        for hid, count in zip(head_ids, head_counts):
            starts[hid] = cursor
            cursor += count
        self._prof_starts = starts
        self.nbytes = int(
            body_matrix.nbytes + head_matrix.nbytes + profits.nbytes
        )
        self._kernel: DenseBitsetKernel | None = None

    @property
    def n_chunks(self) -> int:
        return (self.n + 63) // 64

    def kernel(self) -> DenseBitsetKernel:
        """This partition's dense kernel (zero-copy over the memmap)."""
        if self._kernel is None:
            self._kernel = DenseBitsetKernel.from_matrix(
                self.n, self.gids, self._body_matrix
            )
        return self._kernel

    def head_row(self, hid: int) -> "numpy.ndarray | None":
        """The head's hit-mask chunk row, or ``None`` if it never hits."""
        row = self._head_rows.get(hid)
        if row is None:
            return None
        return self._head_matrix[row]

    def head_count(self, hid: int) -> int:
        """The head's hit count within this partition."""
        row = self._head_rows.get(hid)
        return 0 if row is None else self.head_counts[row]

    def head_profits(self, hid: int) -> "numpy.ndarray":
        """Credited profits of the head's hits, ascending local position.

        Aligned element-for-element with the ascending set bits of
        :meth:`head_row` — index ``k`` is the credit at the head's
        ``k``-th hit — which is the order every sequential profit sum in
        the miner consumes.
        """
        start = self._prof_starts.get(hid)
        if start is None:
            return np.empty(0, dtype="<f8")
        row = self._head_rows[hid]
        return self._profits[start : start + self.head_counts[row]]


class ChunkedTransactionStore:
    """Columnar out-of-core transaction store under one directory.

    Build one with :meth:`build` (streaming any transaction iterable),
    reopen it with :meth:`open`, extend it with :meth:`append`.  The
    store is bound to one world — (MOA engine, profit model) — recorded
    in the manifest and re-validated on open, because both the mask rows
    (extension under MOA(H)) and the profit columns (credited profit)
    depend on it.
    """

    def __init__(
        self,
        root: str | Path,
        moa: MOAHierarchy,
        profit_model: ProfitModel,
        manifest: dict,
        max_resident_mb: float | None = None,
    ) -> None:
        _require_numpy()
        self.root = Path(root)
        self.moa = moa
        self.profit_model = profit_model
        self.symbols = SymbolTable.of(moa)
        self._manifest = manifest
        budget_mb = (
            DEFAULT_RESIDENT_MB if max_resident_mb is None else max_resident_mb
        )
        if budget_mb <= 0:
            raise MiningError(
                f"max_resident_mb must be positive, got {budget_mb}"
            )
        self.resident_budget = int(budget_mb * 1024 * 1024)
        self._resident: OrderedDict[int, StorePartition] = OrderedDict()
        self._resident_bytes = 0
        # SON pass 1 loads partitions from worker threads; the LRU's
        # OrderedDict mutations must not interleave.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total transactions across all partitions."""
        return int(self._manifest["n"])

    @property
    def n_partitions(self) -> int:
        return len(self._manifest["partitions"])

    @property
    def partition_size(self) -> int:
        return int(self._manifest["partition_size"])

    def partition_meta(self, i: int) -> dict:
        """The manifest record of partition ``i`` (name, n, offset, bytes)."""
        return self._manifest["partitions"][i]

    def global_head_counts(self) -> dict[int, int]:
        """Per-head hit counts over the whole store (from the manifest)."""
        return {int(k): int(v) for k, v in self._manifest["head_counts"].items()}

    def stats(self) -> dict[str, int]:
        """JSON-ready size summary, mirroring ``rule_index.stats()``."""
        spilled = sum(
            sum(record["bytes"].values())
            for record in self._manifest["partitions"]
        )
        return {
            "n_transactions": self.n,
            "n_partitions": self.n_partitions,
            "partition_size": self.partition_size,
            "spilled_bytes": int(spilled),
            "resident_bytes": int(self._resident_bytes),
            "resident_partitions": len(self._resident),
            "resident_budget_bytes": int(self.resident_budget),
        }

    # ------------------------------------------------------------------
    # Build / open / append
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        root: str | Path,
        transactions: Iterable[Transaction],
        moa: MOAHierarchy,
        profit_model: ProfitModel,
        partition_size: int = DEFAULT_PARTITION_SIZE,
        max_resident_mb: float | None = None,
    ) -> "ChunkedTransactionStore":
        """Stream ``transactions`` into a fresh store at ``root``."""
        _require_numpy()
        if partition_size < 1:
            raise MiningError(
                f"partition_size must be >= 1, got {partition_size}"
            )
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        symbols = SymbolTable.of(moa)
        manifest = {
            "format": _FORMAT,
            "n": 0,
            "partition_size": int(partition_size),
            "use_moa": bool(moa.use_moa),
            "profit_model": profit_model.name,
            "symbols_sha256": _symbols_fingerprint(symbols),
            "head_counts": {},
            "partitions": [],
        }
        store = cls(
            root, moa, profit_model, manifest, max_resident_mb=max_resident_mb
        )
        store._ingest(transactions)
        if store.n == 0:
            raise MiningError("cannot build a store from zero transactions")
        return store

    @classmethod
    def open(
        cls,
        root: str | Path,
        moa: MOAHierarchy,
        profit_model: ProfitModel,
        max_resident_mb: float | None = None,
    ) -> "ChunkedTransactionStore":
        """Reopen an existing store, validating it names the same world."""
        _require_numpy()
        root = Path(root)
        manifest_path = root / _MANIFEST
        if not manifest_path.exists():
            raise SerializationError(f"{root}: no store manifest found")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"{manifest_path}: corrupt store manifest: {exc}"
            ) from exc
        if manifest.get("format") != _FORMAT:
            raise SerializationError(
                f"{manifest_path}: unexpected store format "
                f"{manifest.get('format')!r}; expected {_FORMAT!r}"
            )
        if bool(manifest.get("use_moa")) != moa.use_moa:
            raise SerializationError(
                f"{root}: store was built with use_moa="
                f"{manifest.get('use_moa')}, engine has {moa.use_moa}"
            )
        if manifest.get("profit_model") != profit_model.name:
            raise SerializationError(
                f"{root}: store credits profit with "
                f"{manifest.get('profit_model')!r}, not {profit_model.name!r}"
            )
        symbols = SymbolTable.of(moa)
        if manifest.get("symbols_sha256") != _symbols_fingerprint(symbols):
            raise SerializationError(
                f"{root}: store symbol universe does not match this "
                "catalog/hierarchy (was the store built for a different "
                "world?)"
            )
        return cls(
            root, moa, profit_model, manifest, max_resident_mb=max_resident_mb
        )

    def append(self, transactions: Iterable[Transaction]) -> list[int]:
        """Append new transactions as fresh partitions; returns their indexes.

        Existing partition files are never touched; the manifest swap is
        atomic, so a crash mid-append leaves the previous store intact.
        """
        before = self.n_partitions
        self._ingest(transactions)
        return list(range(before, self.n_partitions))

    def _ingest(self, transactions: Iterable[Transaction]) -> None:
        symbols = self.symbols
        sale_ids = symbols.sale_ids
        head_ids_of = symbols.head_ids
        gsales = symbols.gsales
        credited = self.profit_model.credited_profit
        catalog = self.moa.catalog
        partition_size = self.partition_size
        spilled = 0

        body_positions: dict[int, list[int]] = {}
        head_positions: dict[int, list[int]] = {}
        head_profit_lists: dict[int, list[float]] = {}
        local = 0

        def flush() -> None:
            nonlocal body_positions, head_positions, head_profit_lists
            nonlocal local, spilled
            if local == 0:
                return
            spilled += self._write_partition(
                local, body_positions, head_positions, head_profit_lists
            )
            body_positions = {}
            head_positions = {}
            head_profit_lists = {}
            local = 0

        for transaction in transactions:
            ext_ids: set[int] = set()
            for sale in transaction.nontarget_sales:
                ext_ids.update(sale_ids(sale))
            for gid in ext_ids:
                body_positions.setdefault(gid, []).append(local)
            for hid in head_ids_of(transaction.target_sale):
                head_positions.setdefault(hid, []).append(local)
                head_profit_lists.setdefault(hid, []).append(
                    credited(gsales[hid], transaction.target_sale, catalog)
                )
            local += 1
            if local == partition_size:
                flush()
        flush()
        obs.count("store.spilled_bytes", spilled)
        self._write_manifest()

    def _write_partition(
        self,
        n_local: int,
        body_positions: dict[int, list[int]],
        head_positions: dict[int, list[int]],
        head_profit_lists: dict[int, list[float]],
    ) -> int:
        """Write one partition's four files; returns bytes written."""
        index = self.n_partitions
        name = f"p{index:05d}"
        with obs.span("store.write_partition", partition=name):
            gids = sorted(body_positions)
            head_ids = sorted(head_positions)
            head_counts = [len(head_positions[hid]) for hid in head_ids]

            body_buffer = _rows_from_positions(body_positions, gids, n_local)
            head_buffer = _rows_from_positions(head_positions, head_ids, n_local)
            profits = np.empty(sum(head_counts), dtype="<f8")
            cursor = 0
            for hid in head_ids:
                column = head_profit_lists[hid]
                profits[cursor : cursor + len(column)] = column
                cursor += len(column)

            meta = {
                "n": n_local,
                "gids": gids,
                "head_ids": head_ids,
                "head_counts": head_counts,
            }
            meta_bytes = json.dumps(meta).encode("utf-8")
            files = {
                f"{name}.meta.json": meta_bytes,
                f"{name}.body.u64": body_buffer,
                f"{name}.heads.u64": head_buffer,
                f"{name}.prof.f64": profits.tobytes(),
            }
            for filename, payload in files.items():
                with open(self.root / filename, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())

            record = {
                "name": name,
                "n": n_local,
                "offset": self.n,
                "bytes": {
                    filename: len(payload)
                    for filename, payload in files.items()
                },
            }
            self._manifest["partitions"].append(record)
            self._manifest["n"] = self.n + n_local
            counts = self._manifest["head_counts"]
            for hid, count in zip(head_ids, head_counts):
                key = str(hid)
                counts[key] = counts.get(key, 0) + count
        return sum(len(payload) for payload in files.values())

    def _write_manifest(self) -> None:
        """Atomically persist the manifest (temp file + ``os.replace``)."""
        target = self.root / _MANIFEST
        temporary = target.with_suffix(".json.tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(self._manifest, handle, indent=1, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, target)

    # ------------------------------------------------------------------
    # Partition access (LRU-resident memmaps)
    # ------------------------------------------------------------------
    def partition(self, i: int) -> StorePartition:
        """Partition ``i``, loading (and LRU-caching) its memmaps."""
        with self._lock:
            cached = self._resident.get(i)
            if cached is not None:
                self._resident.move_to_end(i)
                obs.cache_event("store.partitions", hits=1)
                return cached
            partition = self._load_partition(i)
            self._resident[i] = partition
            self._resident_bytes += partition.nbytes
            obs.cache_event(
                "store.partitions",
                misses=1,
                loads=1,
                resident_bytes=self._resident_bytes,
            )
            self._evict_over_budget()
            return partition

    def iter_partitions(self) -> Iterator[StorePartition]:
        """Yield every partition in offset order, through the LRU."""
        for i in range(self.n_partitions):
            yield self.partition(i)

    def _evict_over_budget(self) -> None:
        evicted = 0
        while (
            self._resident_bytes > self.resident_budget
            and len(self._resident) > 1
        ):
            _, victim = self._resident.popitem(last=False)
            self._resident_bytes -= victim.nbytes
            evicted += 1
        if evicted:
            obs.cache_event(
                "store.partitions",
                evictions=evicted,
                resident_bytes=self._resident_bytes,
            )

    def _checked_size(self, filename: str, expected: int) -> Path:
        path = self.root / filename
        try:
            actual = path.stat().st_size
        except FileNotFoundError:
            raise SerializationError(
                f"{path}: store partition file is missing"
            ) from None
        if actual != expected:
            raise SerializationError(
                f"{path}: store partition file is {actual} bytes, "
                f"manifest expects {expected} — the store is truncated or "
                "corrupt; rebuild it"
            )
        return path

    def _load_partition(self, i: int) -> StorePartition:
        record = self.partition_meta(i)
        name = record["name"]
        sizes = record["bytes"]
        n_local = int(record["n"])
        n_chunks = (n_local + 63) // 64

        meta_path = self._checked_size(
            f"{name}.meta.json", sizes[f"{name}.meta.json"]
        )
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        if int(meta["n"]) != n_local:
            raise SerializationError(
                f"{meta_path}: partition metadata disagrees with the "
                "manifest on the transaction count"
            )
        gids = [int(g) for g in meta["gids"]]
        head_ids = [int(h) for h in meta["head_ids"]]
        head_counts = [int(c) for c in meta["head_counts"]]

        body_path = self._checked_size(
            f"{name}.body.u64", sizes[f"{name}.body.u64"]
        )
        head_path = self._checked_size(
            f"{name}.heads.u64", sizes[f"{name}.heads.u64"]
        )
        prof_path = self._checked_size(
            f"{name}.prof.f64", sizes[f"{name}.prof.f64"]
        )
        expected_body = len(gids) * n_chunks * 8
        expected_heads = len(head_ids) * n_chunks * 8
        expected_prof = sum(head_counts) * 8
        for path, expected in (
            (body_path, expected_body),
            (head_path, expected_heads),
            (prof_path, expected_prof),
        ):
            if path.stat().st_size != expected:
                raise SerializationError(
                    f"{path}: file size does not match the partition "
                    "metadata — the store is truncated or corrupt"
                )

        def mapped(path: Path, rows: int) -> "numpy.ndarray":
            if rows == 0:
                return np.empty((0, n_chunks), dtype="<u8")
            return np.memmap(path, dtype="<u8", mode="r").reshape(
                rows, n_chunks
            )

        profits = (
            np.empty(0, dtype="<f8")
            if expected_prof == 0
            else np.memmap(prof_path, dtype="<f8", mode="r")
        )
        return StorePartition(
            name=name,
            n=n_local,
            offset=int(record["offset"]),
            gids=gids,
            head_ids=head_ids,
            head_counts=head_counts,
            body_matrix=mapped(body_path, len(gids)),
            head_matrix=mapped(head_path, len(head_ids)),
            profits=profits,
        )
