"""The shared symbol table: dense gsale ↔ id interning for one world.

A :class:`SymbolTable` owns the canonical integer naming of every
generalized sale a (catalog, hierarchy, MOA) triple can produce, plus the
derived tables every pipeline stage needs:

* ``gsales`` / ``ids`` — the dense interning itself, sorted by
  :meth:`~repro.core.generalized.GSale.sort_key` so ids are deterministic;
* ``ancestor_ids`` / ``closure_ids`` — per-gsale subsumption tables in id
  form (built lazily: serving never asks for them);
* ``candidate_head_ids`` — every recommendable head, most-specific-first;
* per-sale expansion caches mapping a concrete ``(item, promotion)`` pair
  to the id tuple of its generalizations (basket extension) or of the
  heads that hit it.

The table spans the *full* universe derivable from the catalog — every
concept, every non-target item and promo form, every candidate head — not
just the gsales observed in one database.  That makes it database-free
(one table serves every fold, sweep level and deployed model of a world)
while preserving the exact outputs of the old per-database interning:
restricting a sort-ordered universe to any subset keeps the subset's
relative order, and every consumer (Apriori's sorted joins, FP-growth's
tie-breaks, covering's ``min(body)`` buckets, the head enumeration) is
either order-isomorphic in the ids or independent of them.

Obtain the canonical instance for a generalization engine through
:meth:`SymbolTable.of`, which caches the table on the
:class:`~repro.core.moa.MOAHierarchy` itself — everything already sharing
an engine (every fold of a sweep under one :class:`~repro.core.index_cache.FitCache`)
then shares the symbols automatically.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.generalized import GSale
from repro.core.moa import MOAHierarchy
from repro.core.sales import Sale

__all__ = ["SymbolTable"]

#: Attribute under which :meth:`SymbolTable.of` caches the canonical table
#: on a ``MOAHierarchy`` instance.
_MOA_ATTR = "_engine_symbol_table"


def _enumerate_universe(moa: MOAHierarchy) -> list[GSale]:
    """Every generalized sale the world can produce, in canonical order.

    Concepts of the hierarchy, bare-item and promo forms of every
    non-target item, and the promo forms of every target item (the
    candidate heads).  This is a superset of anything a transaction
    database over the catalog can mention.
    """
    seen: set[GSale] = set()
    for concept in moa.hierarchy.concepts:
        seen.add(GSale.concept(concept))
    for item in moa.catalog.nontarget_items:
        seen.add(GSale.item(item.item_id))
        for promo in item.promotions:
            seen.add(GSale.promo_form(item.item_id, promo.code))
    for item in moa.catalog.target_items:
        for promo in item.promotions:
            seen.add(GSale.promo_form(item.item_id, promo.code))
    return sorted(seen, key=GSale.sort_key)


class SymbolTable:
    """Dense interning + subsumption tables for one (catalog, H, MOA) world.

    Parameters
    ----------
    moa:
        The generalization engine whose world this table names.
    gsales:
        Optional explicit symbol list (ids are positions in it).  Passed
        when adopting the table persisted in a model artifact, so saved
        ids stay valid verbatim; omitted, the full universe is enumerated
        from the engine's catalog and hierarchy.
    """

    __slots__ = (
        "moa",
        "gsales",
        "ids",
        "_ancestor_ids",
        "_closure_ids",
        "_candidate_head_ids",
        "_sale_cache",
        "_head_cache",
    )

    def __init__(
        self, moa: MOAHierarchy, gsales: Sequence[GSale] | None = None
    ) -> None:
        self.moa = moa
        self.gsales: list[GSale] = (
            list(gsales) if gsales is not None else _enumerate_universe(moa)
        )
        self.ids: dict[GSale, int] = {g: i for i, g in enumerate(self.gsales)}
        self._ancestor_ids: list[frozenset[int]] | None = None
        self._closure_ids: list[frozenset[int]] | None = None
        self._candidate_head_ids: list[int] | None = None
        self._sale_cache: dict[tuple[str, str], tuple[int, ...]] = {}
        self._head_cache: dict[tuple[str, str], tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def of(cls, moa: MOAHierarchy) -> "SymbolTable":
        """The canonical table of ``moa`` (built once, cached on the engine).

        Caching on the engine instance means every structure keyed to the
        same :class:`~repro.core.moa.MOAHierarchy` — all folds of a sweep,
        profit-model twins, serving indexes — shares one table without
        any extra plumbing.
        """
        table = getattr(moa, _MOA_ATTR, None)
        if table is None:
            table = cls(moa)
            setattr(moa, _MOA_ATTR, table)
        return table

    @classmethod
    def adopt(cls, moa: MOAHierarchy, gsales: Sequence[GSale]) -> "SymbolTable":
        """Install an explicit symbol list as ``moa``'s canonical table.

        Used when loading a persisted model: the artifact's ids must stay
        valid verbatim, so its symbol list is adopted as-is instead of
        re-enumerated.  Refuses to replace an existing table (the engine
        is freshly built on the load path, so there never is one).
        """
        existing = getattr(moa, _MOA_ATTR, None)
        if existing is not None:
            return existing
        table = cls(moa, gsales=gsales)
        setattr(moa, _MOA_ATTR, table)
        return table

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gsales)

    def id_of(self, gsale: GSale) -> int:
        """Dense id of ``gsale`` (raises ``KeyError`` for unknown symbols)."""
        return self.ids[gsale]

    def intern_body(self, body: Iterable[GSale]) -> tuple[int, ...]:
        """A rule body as its sorted dense-id tuple (the canonical form)."""
        ids = self.ids
        return tuple(sorted(ids[g] for g in body))

    # ------------------------------------------------------------------
    # Subsumption tables (lazy: only mining and covering need them)
    # ------------------------------------------------------------------
    def _build_subsumption(self) -> None:
        ancestor_ids: list[frozenset[int]] = []
        closure_ids: list[frozenset[int]] = []
        ids = self.ids
        ancestors_of = self.moa.ancestors_of_gsale
        for gid, gsale in enumerate(self.gsales):
            # Restricting to interned ids is sound (and for the canonical
            # universe, vacuous): subsumption queries only ever compare
            # against other interned gsales.
            ancestors = frozenset(
                ids[a] for a in ancestors_of(gsale) if a in ids
            )
            ancestor_ids.append(ancestors)
            closure_ids.append(ancestors | {gid})
        self._ancestor_ids = ancestor_ids
        self._closure_ids = closure_ids

    @property
    def ancestor_ids(self) -> list[frozenset[int]]:
        """Per-gsale proper-ancestor ids (``ancestor_ids[gid]``)."""
        if self._ancestor_ids is None:
            self._build_subsumption()
        assert self._ancestor_ids is not None
        return self._ancestor_ids

    @property
    def closure_ids(self) -> list[frozenset[int]]:
        """Per-gsale reflexive closures: the gsale's id plus its ancestors'."""
        if self._closure_ids is None:
            self._build_subsumption()
        assert self._closure_ids is not None
        return self._closure_ids

    # ------------------------------------------------------------------
    # Candidate heads
    # ------------------------------------------------------------------
    @property
    def candidate_head_ids(self) -> list[int]:
        """Every recommendable head id, most-specific-first.

        Heads are enumerated deepest-in-MOA(H)-first (least favorable
        price first) per target item — the order that realizes the
        paper's "generated before" tie-breaker for default-rule selection
        and head emission (see :func:`repro.core.mining.mine_rules`).
        """
        if self._candidate_head_ids is None:
            catalog = self.moa.catalog

            def head_depth_key(head: GSale) -> tuple[str, float, str]:
                promo = catalog.promotion(head.node, head.promo or "")
                return (head.node, -promo.unit_price, head.promo or "")

            ids = self.ids
            self._candidate_head_ids = [
                ids[h]
                for h in sorted(self.moa.all_candidate_heads(), key=head_depth_key)
            ]
        return self._candidate_head_ids

    # ------------------------------------------------------------------
    # Per-sale expansion caches
    # ------------------------------------------------------------------
    def sale_ids(self, sale: Sale) -> tuple[int, ...]:
        """Ids of a non-target sale's generalizations (Definition 3).

        Cached per distinct ``(item, promotion)`` pair — quantities never
        affect generalization.  Symbols the table does not know (possible
        only for adopted tables from older artifacts) are skipped: an
        unknown symbol occurs in no rule body, so it cannot affect
        matching.
        """
        key = (sale.item_id, sale.promo_code)
        cached = self._sale_cache.get(key)
        if cached is None:
            get = self.ids.get
            cached = tuple(
                gid
                for g in self.moa.generalizations_of_sale(sale)
                if (gid := get(g)) is not None
            )
            self._sale_cache[key] = cached
        return cached

    def head_ids(self, target_sale: Sale) -> tuple[int, ...]:
        """Ids of the heads that hit ``target_sale``, cached per pair."""
        key = (target_sale.item_id, target_sale.promo_code)
        cached = self._head_cache.get(key)
        if cached is None:
            ids = self.ids
            cached = tuple(
                ids[h] for h in self.moa.target_heads_of_sale(target_sale)
            )
            self._head_cache[key] = cached
        return cached
