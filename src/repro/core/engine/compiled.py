"""A fitted recommender compiled to dense-id form.

A :class:`CompiledModel` is the serving- and persistence-ready form of a
ranked rule list: every body a tuple of :class:`SymbolTable` ids, the
inverted postings (symbol id → rank-ascending rule positions) prebuilt,
and the always-matching (empty-body) positions extracted.  It is what
:class:`~repro.core.rule_index.RuleMatchIndex` wraps for serving, what
:class:`~repro.core.miner.ProfitMiner` hands to its recommender straight
out of the pruning pass (reusing the miner's interning, so fitting never
interns the same body twice), and what ``model_io`` format v2 writes to
disk — loading an artifact restores the postings verbatim and the first
recommendation runs without any re-interning.

Matching is exact: the differential property tests
(``tests/property/test_compiled_differential.py``) require the same
:class:`~repro.core.rules.ScoredRule` objects as the naive linear scan
for random rule sets and baskets.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.engine.kernel import HAVE_NUMPY
from repro.core.engine.symbols import SymbolTable
from repro.core.rules import ScoredRule
from repro.core.sales import Sale

try:  # optional "dense" extra; matching falls back to the dict loop.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the numpy-free leg
    np = None  # type: ignore[assignment]

__all__ = ["CompiledModel"]

#: Below this many rules the per-call ``bincount`` allocation costs more
#: than the dict-counting loop it replaces; above it the vectorized
#: gather wins.  Purely a performance threshold — both paths return the
#: same positions.
_DENSE_MATCH_MIN_RULES = 512


class CompiledModel:
    """Ranked rules, default rule and inverted postings in dense-id form.

    Parameters
    ----------
    symbols:
        The symbol table the ids refer to.
    ranked_rules:
        The rule list in MPF rank order (position = rank).
    body_ids:
        Per-rank body id tuples (``()`` for the default rule), aligned
        with ``ranked_rules``.
    postings:
        Symbol id → rank-ascending positions of the rules whose body
        contains it.  Derived from ``body_ids`` when omitted; passed
        explicitly by the v2 artifact loader, which persists it.
    always_match:
        Positions of empty-body rules (match every basket).  Derived when
        omitted.
    name:
        Display name carried into serving and persistence.
    """

    __slots__ = (
        "symbols",
        "ranked_rules",
        "postings",
        "always_match",
        "body_sizes",
        "name",
        "store",
        "_body_ids",
        "_sale_ids",
        "_dense_match",
    )

    def __init__(
        self,
        symbols: SymbolTable,
        ranked_rules: Sequence[ScoredRule],
        body_ids: Sequence[tuple[int, ...]],
        postings: dict[int, list[int]] | None = None,
        always_match: Sequence[int] | None = None,
        name: str = "MPF",
    ) -> None:
        self.symbols = symbols
        self.ranked_rules: Sequence[ScoredRule] = list(ranked_rules)
        self._body_ids: list[tuple[int, ...]] | None = list(body_ids)
        if postings is None:
            postings = {}
            for pos, ids in enumerate(self._body_ids):
                for gid in ids:
                    postings.setdefault(gid, []).append(pos)
        if always_match is None:
            always_match = [
                pos for pos, ids in enumerate(self._body_ids) if not ids
            ]
        self.postings: dict[int, list[int]] = postings
        self.always_match: list[int] = list(always_match)
        self.body_sizes: list[int] = [len(ids) for ids in self._body_ids]
        self.name = name
        # The shape-split columnar twin of this model (built lazily by
        # ``rule_store``; installed at construction by ``from_store``).
        self.store = None
        # Per-model filter of the symbols-level expansion: only ids that
        # occur in some body of *this* model can influence matching.
        self._sale_ids: dict[tuple[str, str], tuple[int, ...]] = {}
        # Lazily built (postings arrays, sizes array) pair for the
        # vectorized all-matches path; None until first use or when the
        # model is too small for it to pay off.
        self._dense_match = None

    @property
    def body_ids(self) -> list[tuple[int, ...]]:
        """Per-rank body id tuples (rebuilt from the store when lazy).

        Models assembled by :meth:`from_store` defer this list — serving
        needs only the postings and body sizes, so a store-backed load
        never materializes per-rule tuples unless a writer (``save_model``
        version 1/2) or the compile path explicitly asks.
        """
        if self._body_ids is None:
            assert self.store is not None
            self._body_ids = self.store.all_body_ids()
        return self._body_ids

    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        ranked_rules: Sequence[ScoredRule],
        symbols: SymbolTable,
        name: str = "MPF",
        body_ids_by_order: Mapping[int, tuple[int, ...]] | None = None,
    ) -> "CompiledModel":
        """Compile a rank-ordered rule list against ``symbols``.

        ``body_ids_by_order`` is the miner's rule-order → body-ids mapping
        (:attr:`~repro.core.mining.MiningResult.body_ids_by_order`); rules
        found in it reuse the mining-time interning instead of re-hashing
        their GSale bodies.
        """
        if body_ids_by_order is None:
            body_ids_by_order = {}
        intern = symbols.intern_body
        body_ids = [
            ids
            if (ids := body_ids_by_order.get(scored.rule.order)) is not None
            else intern(scored.rule.body)
            for scored in ranked_rules
        ]
        return cls(symbols, ranked_rules, body_ids, name=name)

    @classmethod
    def from_store(cls, store, name: str | None = None) -> "CompiledModel":
        """Assemble a serving-ready model over a columnar rule store.

        The ranked rules are the store's lazy
        :class:`~repro.core.rulestore.RankedView` — nothing is
        materialized here; postings, body sizes and the always-match
        positions come straight from the columns, so a format-v3 load
        reaches the first recommendation without building a single
        per-rule Python object beyond the one the probe touches.
        """
        model = cls.__new__(cls)
        model.symbols = store.symbols
        model.ranked_rules = store.view
        model._body_ids = None
        model.postings = store.global_postings()
        model.always_match = store.default_ranks()
        model.body_sizes = store.body_sizes()
        model.name = name or store.name
        model.store = store
        model._sale_ids = {}
        model._dense_match = None
        return model

    @property
    def rule_store(self):
        """The shape-split columnar twin (:class:`~repro.core.rulestore.RuleStore`).

        Built once on demand for models compiled in-process; models loaded
        from a v3 artifact carry theirs from construction.
        """
        if self.store is None:
            from repro.core.rulestore import RuleStore

            self.store = RuleStore.from_compiled(self)
        return self.store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rules(self) -> int:
        """Number of compiled rules (including always-matching ones)."""
        return len(self.ranked_rules)

    @property
    def n_indexed_gsales(self) -> int:
        """Number of distinct symbols across all rule bodies."""
        return len(self.postings)

    @property
    def n_postings(self) -> int:
        """Total inverted-index size: Σ over symbols of |rules containing it|."""
        return sum(len(p) for p in self.postings.values())

    # ------------------------------------------------------------------
    # Basket preparation
    # ------------------------------------------------------------------
    def candidate_ids(self, basket: Sequence[Sale]) -> list[int]:
        """Ids of the basket's generalizations that occur in rule bodies.

        Deduplicated (a generalized sale reachable from two sales counts
        once) but unordered — matching counts per-rule occurrences, so
        candidate order never affects which rule wins.  Symbols occurring
        in no body are dropped at the per-sale cache: they cannot
        influence matching.
        """
        sale_ids = self._sale_ids
        gathered: list[int] = []
        for sale in basket:
            key = (sale.item_id, sale.promo_code)
            ids = sale_ids.get(key)
            if ids is None:
                postings = self.postings
                ids = tuple(
                    gid for gid in self.symbols.sale_ids(sale) if gid in postings
                )
                sale_ids[key] = ids
            gathered.extend(ids)
        if len(gathered) > 1:
            return list(set(gathered))
        return gathered

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def first_match(self, basket: Sequence[Sale]) -> ScoredRule | None:
        """The highest-ranked rule matching ``basket`` (Definition 6).

        Returns ``None`` only when the rule list has no always-matching
        (empty-body) rule and nothing else matches.
        """
        postings = self.postings
        sizes = self.body_sizes
        always = self.always_match
        best = always[0] if always else len(self.ranked_rules)
        counts: dict[int, int] = {}
        for gid in self.candidate_ids(basket):
            for ridx in postings[gid]:
                if ridx >= best:
                    # Postings are rank-ascending: nothing further in this
                    # list can beat the best full match found so far.
                    break
                count = counts.get(ridx, 0) + 1
                counts[ridx] = count
                if count == sizes[ridx]:
                    best = ridx
        if best == len(self.ranked_rules):
            return None
        return self.ranked_rules[best]

    def matching_indices(self, basket: Sequence[Sale]) -> list[int]:
        """Rank positions of every rule matching ``basket``, ascending.

        On models large enough for it to pay off (and with numpy
        available) the per-rule occurrence counting runs as one
        concatenated-postings ``bincount`` instead of a Python dict loop;
        a rule matches iff its occurrence count equals its body size, so
        both paths select exactly the same positions.
        """
        candidates = self.candidate_ids(basket)
        if (
            HAVE_NUMPY
            and candidates
            and len(self.ranked_rules) >= _DENSE_MATCH_MIN_RULES
        ):
            dense = self._dense_match
            if dense is None:
                dense = (
                    {
                        gid: np.asarray(rows, dtype=np.intp)
                        for gid, rows in self.postings.items()
                    },
                    np.asarray(self.body_sizes, dtype=np.intp),
                )
                self._dense_match = dense
            arrays, sizes_row = dense
            occurrences = np.concatenate(
                [arrays[gid] for gid in candidates]
            )
            counts = np.bincount(occurrences, minlength=len(sizes_row))
            # counts > 0 excludes always-match rules (size 0), which are
            # appended separately, mirroring the dict loop.
            full = np.flatnonzero((counts > 0) & (counts == sizes_row))
            matched = list(self.always_match)
            matched.extend(full.tolist())
            matched.sort()
            return matched
        postings = self.postings
        sizes = self.body_sizes
        counts: dict[int, int] = {}
        matched = list(self.always_match)
        for gid in candidates:
            for ridx in postings[gid]:
                count = counts.get(ridx, 0) + 1
                counts[ridx] = count
                if count == sizes[ridx]:
                    matched.append(ridx)
        matched.sort()
        return matched

    def all_matches(self, basket: Sequence[Sale]) -> list[ScoredRule]:
        """Every matching rule in rank order — the naive filter, compiled."""
        rules = self.ranked_rules
        return [rules[i] for i in self.matching_indices(basket)]
