"""The compiled engine layer: one symbol table, one compiled model.

Everything the pipeline computes over — transaction extensions, rule
bodies, candidate heads, inverted postings — is phrased in terms of
generalized sales.  Before this layer existed, three different modules
each built their own ``GSale ↔ dense id`` interning (mining's
:class:`~repro.core.mining.TransactionIndex`, the covering tree's body
pass, and serving's :class:`~repro.core.rule_index.RuleMatchIndex`), and
:func:`~repro.data.model_io.load_model` re-derived all of it from JSON
strings on every deploy.

The engine layer replaces those with two shared structures:

* :class:`SymbolTable` — the dense interning plus ancestor/closure
  subsumption tables for one (catalog, hierarchy, MOA) triple, built once
  and borrowed by mining, covering/pruning and serving alike;
* :class:`CompiledModel` — a fitted recommender's ranked rules, default
  rule and inverted postings entirely in dense-id form, ready to serve
  and to persist (``model_io`` format v2 round-trips it directly).

A third, optional structure accelerates both: the
:mod:`~repro.core.engine.kernel` dense chunked-bitset backend
(:class:`DenseBitsetKernel`) mirrors an index's tid-masks into shared
``uint64`` matrices so support counting runs as batched AND + popcount.
It requires the ``numpy`` extra; everything above falls back to the
big-int masks when it is absent, with bit-identical results.

See ``docs/ARCHITECTURE.md`` for how this layer sits between the data
layer and the algorithms built on top of it.
"""

from repro.core.engine.compiled import CompiledModel
from repro.core.engine.kernel import (
    BACKENDS,
    DENSE_MIN_TRANSACTIONS,
    HAVE_NUMPY,
    DenseBitsetKernel,
    resolve_backend,
    resolve_jobs,
)
from repro.core.engine.store import ChunkedTransactionStore
from repro.core.engine.symbols import SymbolTable

__all__ = [
    "BACKENDS",
    "ChunkedTransactionStore",
    "CompiledModel",
    "DENSE_MIN_TRANSACTIONS",
    "DenseBitsetKernel",
    "HAVE_NUMPY",
    "SymbolTable",
    "resolve_backend",
    "resolve_jobs",
]
