"""The covering tree of a rule set (Section 4.1, Definition 8).

Construction proceeds in three steps, all on the rules of one
:class:`~repro.core.mining.MiningResult`:

1. **Dominated-rule deletion.**  A rule that is more special than *and*
   ranked lower than another rule can never be an MPF recommendation rule —
   the more general, higher-ranked rule matches everything it matches — so
   it is removed up front.  (Two rules with identical bodies mutually
   generalize each other; the lower-ranked one is removed, leaving bodies
   unique.)
2. **Coverage assignment.**  Each training transaction is covered by its MPF
   recommendation rule among the surviving rules: walking the rules in rank
   order, a rule covers every still-uncovered transaction its body matches.
   The default rule covers the remainder.
3. **Parent links.**  The parent of a rule ``r'`` is the highest-ranked rule
   strictly more general than ``r'``.  After step 1 every such rule is
   ranked *lower* than ``r'`` (otherwise ``r'`` would have been deleted), so
   scanning down the rank order from ``r'`` finds the parent first.  The
   default rule — the unique empty-body rule, more general than everything —
   is the root.

Generality of bodies is the subset test ``body(r) ⊆ closure(body(r'))``
(see :meth:`repro.core.moa.MOAHierarchy.closure`), interned to integer-id
frozensets for speed.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.mining import MiningResult, TransactionIndex
from repro.core.rules import ScoredRule, rank_key
from repro.errors import MiningError
from repro.obs import trace as obs

__all__ = ["CoveringNode", "CoveringTree", "build_covering_tree"]


@dataclass
class CoveringNode:
    """One rule in the covering tree with its coverage bitmask."""

    scored: ScoredRule
    cover_mask: int = 0
    parent: "CoveringNode | None" = field(default=None, repr=False)
    children: list["CoveringNode"] = field(default_factory=list, repr=False)

    @property
    def n_covered(self) -> int:
        """Number of training transactions this rule covers."""
        return self.cover_mask.bit_count()

    def subtree(self) -> Iterator["CoveringNode"]:
        """Yield this node and all descendants (preorder)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)


@dataclass
class CoveringTree:
    """The covering tree ``CT`` plus the shared transaction index."""

    root: CoveringNode
    index: TransactionIndex
    n_dominated_removed: int

    def nodes(self) -> list[CoveringNode]:
        """All nodes, preorder from the root."""
        return list(self.root.subtree())

    def __len__(self) -> int:
        return sum(1 for _ in self.root.subtree())

    def postorder(self) -> Iterator[CoveringNode]:
        """Yield nodes children-before-parents (the pruning order)."""

        def visit(node: CoveringNode) -> Iterator[CoveringNode]:
            for child in node.children:
                yield from visit(child)
            yield node

        return visit(self.root)


def build_covering_tree(result: MiningResult) -> CoveringTree:
    """Build ``CT`` from a mining result (Definition 8)."""
    with obs.span("cover"):
        return _build_covering_tree_impl(result)


def _build_covering_tree_impl(result: MiningResult) -> CoveringTree:
    index = result.index
    # Keyed sort: computing rank_key once per rule beats the comparison
    # protocol, which would recompute it on every __lt__ call.  The order
    # is cached on the result — sweep levels derived by filtering inherit
    # theirs from the base run and skip the sort entirely.
    ranked = result.ranked_cache
    if ranked is None:
        ranked = sorted(result.all_rules, key=rank_key)
        result.ranked_cache = ranked
    n_rules = len(ranked)

    # The default rule's empty body generalizes every body, so every rule
    # ranked below it is dominated outright; truncate before the quadratic
    # domination pass.  (MPF could never select those rules: the default
    # matches every basket at a higher rank.)
    default_pos = next(
        pos for pos, scored in enumerate(ranked) if scored.rule.is_default
    )
    ranked = ranked[: default_pos + 1]

    body_ids, closure_ids = _intern_bodies(index, ranked, result.body_ids_by_order)
    survivors = _remove_dominated(
        ranked, body_ids, closure_ids, result.undominated_orders
    )
    n_removed = n_rules - len(survivors)
    # Record the survivors so results filtered from this one (raised
    # support levels of a sweep) can skip their subset tests — a rule
    # undominated here stays undominated in every subset of the rule set.
    result.undominated_orders = frozenset(
        scored.rule.order for scored in survivors
    )

    nodes = _assign_coverage(result, survivors)
    _link_parents(nodes, body_ids, closure_ids)

    roots = [node for node in nodes if node.parent is None]
    if len(roots) != 1:  # pragma: no cover - default rule guarantees one root
        raise MiningError(f"covering tree has {len(roots)} roots, expected 1")
    trace = obs.current_trace()
    if trace is not None:
        trace.count("cover.rules_ranked", n_rules)
        trace.count("cover.dominated_removed", n_removed)
        trace.count("cover.nodes", len(nodes))
    return CoveringTree(root=roots[0], index=index, n_dominated_removed=n_removed)


def _intern_bodies(
    index: TransactionIndex,
    ranked: list[ScoredRule],
    mined_ids: dict[int, tuple[int, ...]] | None = None,
) -> tuple[dict[int, frozenset[int]], dict[int, frozenset[int]]]:
    """Map rule order → interned body ids and interned body closures.

    ``mined_ids`` is the miner's order → body-id mapping
    (:attr:`~repro.core.mining.MiningResult.body_ids_by_order`); when
    present the bodies are never re-interned.  Closures come from the
    index's precomputed per-gsale closure tables (already restricted to
    interned ids), so each body is a few frozenset unions over ints — no
    GSale re-hashing through the MOA engine.
    """
    body_ids: dict[int, frozenset[int]] = {}
    closure_ids: dict[int, frozenset[int]] = {}
    empty: frozenset[int] = frozenset()
    closure_cache = index.closure_cache
    frozen_cache = index.frozen_body_cache
    for scored in ranked:
        rule = scored.rule
        if mined_ids is not None:
            id_tuple = mined_ids[rule.order]
            closure = closure_cache.get(id_tuple)
            if closure is None:
                closure = empty.union(
                    *(index.closure_ids[gid] for gid in id_tuple)
                )
                closure_cache[id_tuple] = closure
            frozen = frozen_cache.get(id_tuple)
            if frozen is None:
                frozen = frozenset(id_tuple)
                frozen_cache[id_tuple] = frozen
            body_ids[rule.order] = frozen
            closure_ids[rule.order] = closure
        else:
            ids = frozenset(index.gsale_id(g) for g in rule.body)
            body_ids[rule.order] = ids
            closure_ids[rule.order] = empty.union(
                *(index.closure_ids[gid] for gid in ids)
            )
    return body_ids, closure_ids


def _remove_dominated(
    ranked: list[ScoredRule],
    body_ids: dict[int, frozenset[int]],
    closure_ids: dict[int, frozenset[int]],
    known_undominated: frozenset[int] | None = None,
) -> list[ScoredRule]:
    """Drop rules more special than and ranked lower than another rule.

    ``ranked`` is in MPF order (best first).  A rule is dominated when some
    earlier (higher-ranked) surviving rule's body generalizes its body.
    Checking only survivors is sound: generality is transitive, so a
    dominated dominator implies an earlier surviving dominator.

    Survivor bodies are indexed by one member id, so a query only runs the
    subset test against bodies whose key id lies in the query's closure —
    near-linear in practice instead of quadratic.  Orders listed in
    ``known_undominated`` (survivor hints carried over from the covering
    pass of the result this rule set was filtered from) skip the test
    outright; their bodies are still indexed so later rules check against
    them.
    """
    survivors: list[ScoredRule] = []
    by_key_id: dict[int, list[frozenset[int]]] = {}
    if known_undominated is None:
        known_undominated = frozenset()
    for scored in ranked:
        order = scored.rule.order
        closure = closure_ids[order]
        dominated = order not in known_undominated and any(
            body <= closure
            for key_id in closure
            for body in by_key_id.get(key_id, ())
        )
        if not dominated:
            survivors.append(scored)
            body = body_ids[order]
            if body:  # the default rule's empty body never dominates here
                by_key_id.setdefault(min(body), []).append(body)
    return survivors


def _assign_coverage(
    result: MiningResult, survivors: list[ScoredRule]
) -> list[CoveringNode]:
    """Cover each transaction with its MPF rule among the survivors."""
    index = result.index
    all_mask = (1 << index.n) - 1
    uncovered = all_mask
    nodes: list[CoveringNode] = []
    for scored in survivors:
        rule = scored.rule
        if rule.is_default:
            matched = all_mask
        else:
            matched = result.body_tid_masks.get(rule.order)
            if matched is None:
                matched = index.body_mask(
                    [index.gsale_id(g) for g in rule.body]
                )
        cover = matched & uncovered
        uncovered &= ~cover
        nodes.append(CoveringNode(scored=scored, cover_mask=cover))
    if uncovered:  # pragma: no cover - the default rule matches everything
        raise MiningError("some transactions left uncovered by the rule set")
    return nodes


def _link_parents(
    nodes: list[CoveringNode],
    body_ids: dict[int, frozenset[int]],
    closure_ids: dict[int, frozenset[int]],
) -> None:
    """Set parent/children links (highest-ranked strictly-more-general rule).

    ``nodes`` is in rank order; every strictly-more-general surviving rule
    sits later in the list, so the first match scanning forward is the
    highest-ranked one.  As in :func:`_remove_dominated`, non-empty bodies
    are indexed by one member id — a parent's body lies inside the child's
    closure, so only lists keyed by a closure member can hold it, and the
    earliest position across those lists is the scan-forward winner.  The
    default rule's empty body generalizes everything and (being ranked
    below every rule it could tie with) sits last, so it serves as the
    fallback parent instead of being indexed.
    """
    if not nodes:
        return
    last = len(nodes) - 1
    by_key_pos: dict[int, list[int]] = {}
    for pos, node in enumerate(nodes):
        body = body_ids[node.scored.rule.order]
        if body:
            by_key_pos.setdefault(min(body), []).append(pos)
    for i, node in enumerate(nodes[:last]):
        order = node.scored.rule.order
        closure = closure_ids[order]
        my_body = body_ids[order]
        best = last
        for key_id in closure:
            positions = by_key_pos.get(key_id)
            if not positions:
                continue
            for pos in positions[bisect_right(positions, i):]:
                if pos >= best:
                    break
                cand_body = body_ids[nodes[pos].scored.rule.order]
                if cand_body != my_body and cand_body <= closure:
                    best = pos
                    break
        parent = nodes[best]
        node.parent = parent
        parent.children.append(node)
