"""Profit models: how much a hit recommendation is credited (Section 3.1).

When a rule's head ``⟨I, P⟩`` captures the intention of a transaction's
target sale ``⟨I, P_t, Q_t⟩`` (a *hit*), the generated profit ``p(r, t)``
depends on how the customer is assumed to react to the more favorable
promotion ``P``:

* **Saving MOA** — the customer keeps the original quantity (in base units)
  and saves money.  Profit: ``unit_profit(P) × units_t``.
* **Buying MOA** — the customer keeps the original spending and buys more.
  Profit: ``profit(P) × (Price(P_t)·Q_t / Price(P))``.
* **Binary profit** — ``p(r, t) = 1`` for any hit; used by the CONF±MOA
  recommenders, which build the model from hit rates alone.

Both MOA assumptions are conservative: the customer never spends more at a
favorable promotion, which caps the evaluation *gain* at 1 for saving MOA.
The more optimistic quantity-increase behaviors of Section 5.3 (settings
``(x=2, y=30%)`` and ``(x=3, y=40%)``) are evaluation-time models and live in
:mod:`repro.eval.behavior`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.core.generalized import GKind, GSale
from repro.core.items import ItemCatalog
from repro.core.sales import Sale
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.moa import MOAHierarchy

__all__ = [
    "ProfitModel",
    "SavingMOA",
    "BuyingMOA",
    "BinaryProfit",
    "profit_model_from_name",
]


class ProfitModel(abc.ABC):
    """Credits the profit ``p(r, t)`` of a hit recommendation.

    Subclasses implement :meth:`credited_profit` for the hit case; the
    public :meth:`profit` additionally runs the hit test, returning 0 for a
    miss exactly as the paper defines ``p(r, t)``.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def credited_profit(
        self, head: GSale, target_sale: Sale, catalog: ItemCatalog
    ) -> float:
        """Profit of ``head`` on ``target_sale`` assuming the hit happened."""

    def profit(
        self,
        head: GSale,
        target_sale: Sale,
        moa: "MOAHierarchy",
    ) -> float:
        """The paper's ``p(r, t)``: credited profit on a hit, else 0."""
        if head.kind is not GKind.PROMO:
            raise ValidationError("recommendation heads must be promo-form")
        if not moa.hits(head, target_sale):
            return 0.0
        return self.credited_profit(head, target_sale, moa.catalog)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SavingMOA(ProfitModel):
    """Customer keeps the purchased units, pays the better price."""

    name = "saving"

    def credited_profit(
        self, head: GSale, target_sale: Sale, catalog: ItemCatalog
    ) -> float:
        """``unit_profit(P) × units_t`` — same units, better price."""
        recommended = catalog.promotion(head.node, head.promo or "")
        units = target_sale.units(catalog)
        return recommended.unit_profit * units


class BuyingMOA(ProfitModel):
    """Customer keeps the original spending, takes home more units."""

    name = "buying"

    def credited_profit(
        self, head: GSale, target_sale: Sale, catalog: ItemCatalog
    ) -> float:
        """``profit(P) × (Price(P_t)·Q_t / Price(P))`` — same spend, more units."""
        recommended = catalog.promotion(head.node, head.promo or "")
        spend = target_sale.recorded_spend(catalog)
        packages = spend / recommended.price
        return recommended.profit * packages


class BinaryProfit(ProfitModel):
    """Hit-rate proxy: every hit is worth exactly 1 (CONF recommenders)."""

    name = "binary"

    def credited_profit(
        self, head: GSale, target_sale: Sale, catalog: ItemCatalog
    ) -> float:
        """Always 1: the CONF variants count hits, not dollars."""
        return 1.0


_MODELS = {
    SavingMOA.name: SavingMOA,
    BuyingMOA.name: BuyingMOA,
    BinaryProfit.name: BinaryProfit,
}


def profit_model_from_name(name: str) -> ProfitModel:
    """Instantiate a profit model by its registry name.

    Accepted names: ``"saving"``, ``"buying"``, ``"binary"``.
    """
    try:
        return _MODELS[name]()
    except KeyError:
        raise ValidationError(
            f"unknown profit model {name!r}; choose from {sorted(_MODELS)}"
        ) from None
