"""Core profit-mining machinery: the paper's primary contribution.

Import the high-level pieces from here::

    from repro.core import ProfitMiner, ProfitMinerConfig, SavingMOA
"""

from repro.core.covering import CoveringNode, CoveringTree, build_covering_tree
from repro.core.engine import CompiledModel, SymbolTable
from repro.core.generalized import GKind, GSale
from repro.core.hierarchy import ROOT_CONCEPT, ConceptHierarchy
from repro.core.index_cache import FitCache
from repro.core.items import Item, ItemCatalog
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import (
    MinerConfig,
    MiningResult,
    TransactionIndex,
    filter_mining_result,
    mine_rules,
)
from repro.core.moa import MOAHierarchy
from repro.core.mpf import MPFRecommender
from repro.core.pessimistic import DEFAULT_CF, pessimistic_hits, pessimistic_miss_rate
from repro.core.profit import (
    BinaryProfit,
    BuyingMOA,
    ProfitModel,
    SavingMOA,
    profit_model_from_name,
)
from repro.core.promotion import (
    PromotionCode,
    favorability_covers,
    is_at_least_as_favorable,
    is_more_favorable,
    maximal_codes,
    sort_by_favorability,
)
from repro.core.pruning import PruneConfig, PruneReport, cut_optimal_prune
from repro.core.recommender import Recommendation, Recommender
from repro.core.rule_index import RuleMatchIndex, basket_key
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.core.rulestore import QueryHit, RankedView, RuleStore
from repro.core.sales import Sale, Transaction, TransactionDB, concat

__all__ = [
    "BinaryProfit",
    "BuyingMOA",
    "CompiledModel",
    "ConceptHierarchy",
    "CoveringNode",
    "CoveringTree",
    "DEFAULT_CF",
    "FitCache",
    "GKind",
    "GSale",
    "Item",
    "ItemCatalog",
    "MinerConfig",
    "MiningResult",
    "MOAHierarchy",
    "MPFRecommender",
    "ProfitMiner",
    "ProfitMinerConfig",
    "ProfitModel",
    "PromotionCode",
    "PruneConfig",
    "PruneReport",
    "QueryHit",
    "RankedView",
    "Recommendation",
    "Recommender",
    "ROOT_CONCEPT",
    "Rule",
    "RuleMatchIndex",
    "RuleStats",
    "RuleStore",
    "Sale",
    "SavingMOA",
    "ScoredRule",
    "SymbolTable",
    "Transaction",
    "TransactionDB",
    "TransactionIndex",
    "basket_key",
    "build_covering_tree",
    "concat",
    "cut_optimal_prune",
    "favorability_covers",
    "filter_mining_result",
    "is_at_least_as_favorable",
    "is_more_favorable",
    "maximal_codes",
    "mine_rules",
    "pessimistic_hits",
    "pessimistic_miss_rate",
    "profit_model_from_name",
    "sort_by_favorability",
]
