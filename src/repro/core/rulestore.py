"""Shape-specialized columnar rule storage with a unified ranked view.

The MPF model is one ranked list, but its rules come in four structurally
distinct *shapes* (the syntactic forms of Definition 4's generalized
sales applied to rule bodies):

* ``default`` — the empty-body rule ``∅ → g`` (Definition 6's fallback);
* ``concept`` — every body member is a concept ``C``;
* ``item`` — at least one bare-item ``I`` member, no promo-form member;
* ``promo`` — at least one ``⟨I, P⟩`` promo-form member.

The taxonomy is total and disjoint, so a ranked rule list splits losslessly
into four **shape tables** (:class:`ShapeTable`): parallel ``array.array``
columns of symbol ids, stats and global rank — no per-rule Python objects.
A :class:`RuleStore` owns the four tables plus the shared
:class:`~repro.core.engine.symbols.SymbolTable`, and three consumers sit
on top:

* :class:`RankedView` — a lazy ``Sequence[ScoredRule]`` reconstituting the
  exact original ranked order (same objects on the fit path, equal objects
  on the load path), so :class:`~repro.core.engine.compiled.CompiledModel`,
  covering/pruning and serving consume the split store unchanged;
* :meth:`RuleStore.query` — the analytics layer: audit queries
  (``head_promo`` / ``head_under`` / ``body_mentions`` / ``shape`` /
  stat thresholds) answered from per-shape inverted postings and the
  symbol table's subsumption tables instead of a linear scan.  The
  original scan survives as ``naive=True``, the differential reference;
* ``model_io`` format v3 — the tables persist column-wise and load with
  no re-interning and no rule materialization.

The split-tables-plus-backward-compatible-view architecture follows the
pattern-detection store sketched in SNIPPETS.md; this module depends only
on the standard library.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence, overload

from repro.core.generalized import GKind, GSale
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine.compiled import CompiledModel
    from repro.core.engine.symbols import SymbolTable

__all__ = [
    "SHAPES",
    "ShapeTable",
    "RuleStore",
    "RankedView",
    "QueryHit",
    "parse_symbol_spec",
    "shape_of_body",
]

#: The four rule shapes, in the canonical order used by the store's
#: rank index and the persisted v3 column groups.
SHAPES: tuple[str, ...] = ("default", "concept", "item", "promo")

_SHAPE_INDEX = {shape: i for i, shape in enumerate(SHAPES)}

#: Column names of one shape table, in persisted order.  The first seven
#: are one-entry-per-rule; ``body_offsets``/``body_ids`` are the CSR
#: encoding of the variable-length bodies.
_INT_COLUMNS = ("ranks", "orders", "heads", "n_matched", "n_hits", "n_total")
_FLOAT_COLUMNS = ("rule_profit",)
_CSR_COLUMNS = ("body_offsets", "body_ids")
COLUMNS: tuple[str, ...] = _INT_COLUMNS + _FLOAT_COLUMNS + _CSR_COLUMNS


def shape_of_body(body: Iterable[GSale]) -> str:
    """The shape label of one rule body (total and disjoint by construction).

    Promo-form membership dominates, then bare items, then concepts; an
    empty body is the ``default`` shape.  This is the object-level twin of
    the id-level classification :meth:`RuleStore.from_compiled` performs,
    used by the naive query path and the differential tests.
    """
    shape = "default"
    for gsale in body:
        if gsale.kind is GKind.PROMO:
            return "promo"
        if gsale.kind is GKind.ITEM:
            shape = "item"
        elif shape == "default":
            shape = "concept"
    return shape


def parse_symbol_spec(spec: "GSale | str") -> GSale:
    """Parse a query symbol spec into a :class:`GSale`.

    Accepts a ready :class:`GSale`, or the textual forms used by the CLI
    and the daemon's ``/query`` endpoint: ``[Concept]`` (bracketed concept),
    ``item@promo`` (promo form) and a bare ``item``.
    """
    if isinstance(spec, GSale):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise ValidationError(f"symbol spec must be a non-empty string, got {spec!r}")
    text = spec.strip()
    if text.startswith("[") and text.endswith("]"):
        return GSale.concept(text[1:-1].strip())
    if "@" in text:
        item, _, promo = text.partition("@")
        return GSale.promo_form(item.strip(), promo.strip())
    return GSale.item(text)


class ShapeTable:
    """Columnar storage for every rule of one shape.

    All columns are parallel arrays indexed by *row* (position within this
    shape, rank-ascending); ``ranks[row]`` maps a row back to its global
    MPF rank.  Bodies are CSR-encoded: row ``r``'s body symbol ids are
    ``body_ids[body_offsets[r]:body_offsets[r + 1]]``.  The two inverted
    indexes (head id → rows, body symbol id → rows) are built lazily —
    the serving path never asks for them.
    """

    __slots__ = (
        "shape",
        "ranks",
        "orders",
        "heads",
        "n_matched",
        "n_hits",
        "n_total",
        "rule_profit",
        "body_offsets",
        "body_ids",
        "_by_head",
        "_by_body",
    )

    def __init__(
        self,
        shape: str,
        ranks: Iterable[int] = (),
        orders: Iterable[int] = (),
        heads: Iterable[int] = (),
        n_matched: Iterable[int] = (),
        n_hits: Iterable[int] = (),
        n_total: Iterable[int] = (),
        rule_profit: Iterable[float] = (),
        body_offsets: Iterable[int] = (0,),
        body_ids: Iterable[int] = (),
    ) -> None:
        if shape not in _SHAPE_INDEX:
            raise ValidationError(f"unknown rule shape {shape!r}")
        self.shape = shape
        self.ranks = array("q", ranks)
        self.orders = array("q", orders)
        self.heads = array("q", heads)
        self.n_matched = array("q", n_matched)
        self.n_hits = array("q", n_hits)
        self.n_total = array("q", n_total)
        self.rule_profit = array("d", rule_profit)
        self.body_offsets = array("q", body_offsets)
        self.body_ids = array("q", body_ids)
        n = len(self.ranks)
        lengths = {
            len(self.orders), len(self.heads), len(self.n_matched),
            len(self.n_hits), len(self.n_total), len(self.rule_profit),
        }
        if lengths != {n} or len(self.body_offsets) != n + 1:
            raise ValidationError(
                f"misaligned columns in {shape!r} shape table ({n} ranks)"
            )
        self._by_head: dict[int, list[int]] | None = None
        self._by_body: dict[int, list[int]] | None = None

    def __len__(self) -> int:
        return len(self.ranks)

    def body_slice(self, row: int) -> array:
        """Row ``row``'s body symbol ids (CSR slice, possibly empty)."""
        return self.body_ids[self.body_offsets[row] : self.body_offsets[row + 1]]

    @property
    def by_head(self) -> dict[int, list[int]]:
        """Head symbol id → row-ascending rows recommending it (lazy)."""
        if self._by_head is None:
            index: dict[int, list[int]] = {}
            for row, head in enumerate(self.heads):
                index.setdefault(head, []).append(row)
            self._by_head = index
        return self._by_head

    @property
    def by_body(self) -> dict[int, list[int]]:
        """Body symbol id → row-ascending rows mentioning it (lazy)."""
        if self._by_body is None:
            index: dict[int, list[int]] = {}
            offsets = self.body_offsets
            ids = self.body_ids
            for row in range(len(self.ranks)):
                for gid in ids[offsets[row] : offsets[row + 1]]:
                    index.setdefault(gid, []).append(row)
            self._by_body = index
        return self._by_body

    def nbytes(self) -> int:
        """Raw byte footprint of the columns (indexes excluded)."""
        return sum(
            column.itemsize * len(column)
            for column in (
                self.ranks, self.orders, self.heads, self.n_matched,
                self.n_hits, self.n_total, self.rule_profit,
                self.body_offsets, self.body_ids,
            )
        )

    def to_columns(self) -> dict[str, list[int] | list[float]]:
        """JSON-ready column dict (the v3 on-disk form of this table)."""
        return {name: list(getattr(self, _COLUMN_ATTRS[name])) for name in COLUMNS}


#: Persisted column name → attribute name (identical except ``ranks``
#: naming the global rank column).
_COLUMN_ATTRS = {name: name for name in COLUMNS}


@dataclass(frozen=True)
class QueryHit:
    """One rule matched by :meth:`RuleStore.query`.

    Carries the global rank and shape immediately; the full
    :class:`~repro.core.rules.ScoredRule` is materialized only when the
    caller asks (``scored`` / ``to_dict``), so a query that merely counts
    or ranks never builds per-rule objects.
    """

    store: "RuleStore"
    rank: int
    shape: str

    @property
    def scored(self) -> ScoredRule:
        """The matched rule with stats (materialized through the view)."""
        return self.store.view[self.rank]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready row (CLI table / daemon ``/query`` response shape)."""
        scored = self.scored
        rule, stats = scored.rule, scored.stats
        return {
            "rank": self.rank + 1,
            "shape": self.shape,
            "body": " & ".join(g.describe() for g in sorted(rule.body)),
            "item": rule.head.node,
            "promo": rule.head.promo,
            "support": stats.support,
            "confidence": stats.confidence,
            "recommendation_profit": stats.recommendation_profit,
            "n_matched": stats.n_matched,
            "n_hits": stats.n_hits,
            "order": rule.order,
        }


class RankedView(Sequence):
    """The unified ranked list over the split shape tables.

    A lazy ``Sequence[ScoredRule]``: ``view[rank]`` materializes (and
    caches) exactly the rule at that global rank, and iteration reproduces
    the legacy ranked list bit-for-bit — same total
    :func:`~repro.core.rules.rank_key` order, ties across shapes included
    (the global rank *is* the stored order, so no re-sort can disturb
    ties).  On the fit path the cache is prefilled with the very
    ``ScoredRule`` objects the miner produced, so downstream identity
    checks keep holding.
    """

    __slots__ = ("_store", "_cache")

    def __init__(
        self, store: "RuleStore", prefilled: Sequence[ScoredRule] | None = None
    ) -> None:
        self._store = store
        if prefilled is not None:
            if len(prefilled) != store.n_rules:
                raise ValidationError(
                    f"prefilled view of {len(prefilled)} rules does not match "
                    f"the store's {store.n_rules}"
                )
            self._cache: list[ScoredRule | None] = list(prefilled)
        else:
            self._cache = [None] * store.n_rules

    def __len__(self) -> int:
        return len(self._cache)

    @overload
    def __getitem__(self, index: int) -> ScoredRule: ...
    @overload
    def __getitem__(self, index: slice) -> list[ScoredRule]: ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._cache)))]
        scored = self._cache[index]
        if scored is None:
            if index < 0:
                index += len(self._cache)
            scored = self._store.materialize(index)
            self._cache[index] = scored
        return scored

    def __iter__(self) -> Iterator[ScoredRule]:
        for rank in range(len(self._cache)):
            yield self[rank]


class RuleStore:
    """Four shape tables + the shared symbol table, queryable and viewable.

    Construct through :meth:`from_compiled` (splitting a live
    :class:`~repro.core.engine.compiled.CompiledModel`) or
    :meth:`from_columns` (adopting persisted v3 columns).  The global
    rank → (shape, row) index built here is what lets :class:`RankedView`
    and :meth:`query` move between the split tables and the unified order
    in O(1) per rule.
    """

    __slots__ = ("symbols", "tables", "name", "_rank_shape", "_rank_row", "_view")

    def __init__(
        self,
        symbols: "SymbolTable",
        tables: dict[str, ShapeTable],
        name: str = "MPF",
        view_cache: Sequence[ScoredRule] | None = None,
    ) -> None:
        self.symbols = symbols
        self.tables = {
            shape: tables.get(shape) or ShapeTable(shape) for shape in SHAPES
        }
        self.name = name
        n_rules = sum(len(table) for table in self.tables.values())
        rank_shape = array("b", bytes(n_rules))
        rank_row = array("q", bytes(8 * n_rules))
        # The ranks must form a permutation of 0..n-1: every global rank
        # claimed by exactly one (shape, row) pair.
        claimed = bytearray(n_rules)
        for shape_idx, shape in enumerate(SHAPES):
            table = self.tables[shape]
            for row, rank in enumerate(table.ranks):
                if not 0 <= rank < n_rules or claimed[rank]:
                    raise ValidationError(
                        f"shape tables do not partition ranks 0..{n_rules - 1}: "
                        f"rank {rank} duplicated or out of range"
                    )
                claimed[rank] = 1
                rank_shape[rank] = shape_idx
                rank_row[rank] = row
        self._rank_shape = rank_shape
        self._rank_row = rank_row
        self._view = RankedView(self, prefilled=view_cache)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_compiled(cls, compiled: "CompiledModel") -> "RuleStore":
        """Split a compiled model's ranked rules into shape tables.

        The view cache is prefilled with the compiled model's own
        :class:`~repro.core.rules.ScoredRule` objects, so a store built on
        the fit path hands back *identical* rules, not merely equal ones.
        """
        symbols = compiled.symbols
        gsales = symbols.gsales
        head_id = symbols.id_of
        columns: dict[str, dict[str, list]] = {
            shape: {name: [] for name in COLUMNS} for shape in SHAPES
        }
        for shape in SHAPES:
            columns[shape]["body_offsets"].append(0)
        ranked = compiled.ranked_rules
        for rank, body_ids in enumerate(compiled.body_ids):
            shape = "default"
            for gid in body_ids:
                kind = gsales[gid].kind
                if kind is GKind.PROMO:
                    shape = "promo"
                    break
                if kind is GKind.ITEM:
                    shape = "item"
                elif shape == "default":
                    shape = "concept"
            scored = ranked[rank]
            cols = columns[shape]
            cols["ranks"].append(rank)
            cols["orders"].append(scored.rule.order)
            cols["heads"].append(head_id(scored.rule.head))
            cols["n_matched"].append(scored.stats.n_matched)
            cols["n_hits"].append(scored.stats.n_hits)
            cols["n_total"].append(scored.stats.n_total)
            cols["rule_profit"].append(scored.stats.rule_profit)
            cols["body_ids"].extend(body_ids)
            cols["body_offsets"].append(len(cols["body_ids"]))
        tables = {
            shape: ShapeTable(shape, **columns[shape]) for shape in SHAPES
        }
        return cls(
            symbols, tables, name=compiled.name,
            view_cache=list(ranked),
        )

    @classmethod
    def from_columns(
        cls,
        symbols: "SymbolTable",
        column_groups: dict[str, dict[str, Sequence[int] | Sequence[float]]],
        name: str = "MPF",
    ) -> "RuleStore":
        """Adopt persisted per-shape columns (the v3 load path).

        Nothing is re-interned and no rule objects are built — the first
        materialization happens when (if) someone indexes the view.
        """
        tables = {
            shape: ShapeTable(shape, **columns)
            for shape, columns in column_groups.items()
        }
        return cls(symbols, tables, name=name)

    # ------------------------------------------------------------------
    # Unified view and compiled-model plumbing
    # ------------------------------------------------------------------
    @property
    def n_rules(self) -> int:
        """Total rules across all shape tables."""
        return len(self._rank_shape)

    @property
    def view(self) -> RankedView:
        """The unified ranked list (lazy ``Sequence[ScoredRule]``)."""
        return self._view

    def location_of(self, rank: int) -> tuple[str, int]:
        """Global rank → ``(shape, row)`` within that shape's table."""
        return SHAPES[self._rank_shape[rank]], self._rank_row[rank]

    def materialize(self, rank: int) -> ScoredRule:
        """Build the :class:`ScoredRule` at ``rank`` from the columns.

        Bodies and heads reuse the interned :class:`GSale` objects, and the
        separation constraint was validated before the rules entered the
        store, so ``Rule.__post_init__`` is skipped (mirroring the v2
        artifact loader).
        """
        shape, row = self.location_of(rank)
        table = self.tables[shape]
        gsales = self.symbols.gsales
        rule = Rule.__new__(Rule)
        object.__setattr__(
            rule, "body", frozenset(gsales[gid] for gid in table.body_slice(row))
        )
        object.__setattr__(rule, "head", gsales[table.heads[row]])
        object.__setattr__(rule, "order", table.orders[row])
        return ScoredRule(
            rule=rule,
            stats=RuleStats(
                n_matched=table.n_matched[row],
                n_hits=table.n_hits[row],
                rule_profit=table.rule_profit[row],
                n_total=table.n_total[row],
            ),
        )

    def body_sizes(self) -> list[int]:
        """Per-rank body sizes, in global rank order."""
        sizes = [0] * self.n_rules
        for table in self.tables.values():
            offsets = table.body_offsets
            for row, rank in enumerate(table.ranks):
                sizes[rank] = offsets[row + 1] - offsets[row]
        return sizes

    def all_body_ids(self) -> list[tuple[int, ...]]:
        """Per-rank body id tuples, in global rank order."""
        bodies: list[tuple[int, ...]] = [()] * self.n_rules
        for table in self.tables.values():
            for row, rank in enumerate(table.ranks):
                bodies[rank] = tuple(table.body_slice(row))
        return bodies

    def global_postings(self) -> dict[int, list[int]]:
        """Symbol id → rank-ascending rule positions, merged across shapes.

        Bit-identical to the postings a
        :class:`~repro.core.engine.compiled.CompiledModel` derives from the
        unsplit body list — the property the serving differential gate
        checks.
        """
        postings: dict[int, list[int]] = {}
        rank_shape, rank_row = self._rank_shape, self._rank_row
        tables = [self.tables[shape] for shape in SHAPES]
        for rank in range(self.n_rules):
            table = tables[rank_shape[rank]]
            for gid in table.body_slice(rank_row[rank]):
                postings.setdefault(gid, []).append(rank)
        return postings

    def default_ranks(self) -> list[int]:
        """Global ranks of the empty-body rules, ascending."""
        return sorted(self.tables["default"].ranks)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def shape_counts(self) -> dict[str, int]:
        """Rules per shape (zeroed entries included)."""
        return {shape: len(self.tables[shape]) for shape in SHAPES}

    def store_bytes(self) -> int:
        """Raw columnar footprint across all shape tables."""
        return (
            sum(table.nbytes() for table in self.tables.values())
            + self._rank_shape.itemsize * len(self._rank_shape)
            + self._rank_row.itemsize * len(self._rank_row)
        )

    def stats(self) -> dict[str, Any]:
        """JSON-ready size summary (shape counts + byte footprint)."""
        return {
            "n_rules": self.n_rules,
            "shapes": self.shape_counts(),
            "store_bytes": self.store_bytes(),
        }

    # ------------------------------------------------------------------
    # The analytics query layer
    # ------------------------------------------------------------------
    def query(
        self,
        head_promo: str | None = None,
        head_item: str | None = None,
        head_under: str | None = None,
        body_mentions: Sequence["GSale | str"] | None = None,
        shape: str | None = None,
        min_conf: float | None = None,
        min_support: float | None = None,
        top: int | None = None,
        naive: bool = False,
    ) -> list[QueryHit]:
        """Audit query over the ranked rules, answered from the shape tables.

        Parameters compose conjunctively:

        ``head_promo`` / ``head_item``
            Exact promotion code / target item of the head.
        ``head_under``
            Concept name; keeps rules whose head falls under it (the
            symbol table's ancestor relation, which under MOA also walks
            more-favorable promo forms).
        ``body_mentions``
            Symbol specs (see :func:`parse_symbol_spec`); a rule qualifies
            when, for *each* mention, some body member equals or
            specializes it (reflexive subsumption closure).
        ``shape``
            One of :data:`SHAPES`.
        ``min_conf`` / ``min_support``
            Stat floors (confidence / support, zero-guarded).
        ``top``
            Truncate to the best-ranked ``top`` hits.
        ``naive``
            Run the reference linear scan over the materialized ranked
            view instead — kept, per the repo's convention, as the
            differential-testing twin of the indexed path.

        Returns hits in global rank order (best first).
        """
        if shape is not None and shape not in _SHAPE_INDEX:
            raise ValidationError(
                f"unknown rule shape {shape!r}; expected one of {SHAPES}"
            )
        if top is not None and top < 0:
            raise ValidationError(f"top must be >= 0, got {top}")
        mentions = [parse_symbol_spec(m) for m in body_mentions or ()]
        if naive:
            hits = self._query_naive(
                head_promo, head_item, head_under, mentions,
                shape, min_conf, min_support,
            )
        else:
            hits = self._query_indexed(
                head_promo, head_item, head_under, mentions,
                shape, min_conf, min_support,
            )
        hits.sort(key=lambda h: h.rank)
        if top is not None:
            del hits[top:]
        return hits

    def _query_indexed(
        self,
        head_promo: str | None,
        head_item: str | None,
        head_under: str | None,
        mentions: list[GSale],
        shape: str | None,
        min_conf: float | None,
        min_support: float | None,
    ) -> list[QueryHit]:
        """The production path: per-shape inverted indexes + id subsumption."""
        symbols = self.symbols
        gsales = symbols.gsales
        under_gid: int | None = None
        if head_under is not None:
            under_gid = symbols.ids.get(GSale.concept(head_under))
            if under_gid is None:
                return []  # unknown concept: nothing can fall under it
        mention_gids: list[int] = []
        for mention in mentions:
            gid = symbols.ids.get(mention)
            if gid is None:
                return []  # unknown symbol: no body can specialize it
            mention_gids.append(gid)
        head_filtered = (
            head_promo is not None or head_item is not None or under_gid is not None
        )
        hits: list[QueryHit] = []
        shapes = (shape,) if shape is not None else SHAPES
        for shape_code in shapes:
            table = self.tables[shape_code]
            if not len(table):
                continue
            rows: list[int] | None = None
            if head_filtered:
                ancestor_ids = symbols.ancestor_ids
                selected: list[int] = []
                for head_gid, head_rows in table.by_head.items():
                    head = gsales[head_gid]
                    if head_promo is not None and head.promo != head_promo:
                        continue
                    if head_item is not None and head.node != head_item:
                        continue
                    if under_gid is not None and under_gid not in ancestor_ids[head_gid]:
                        continue
                    selected.extend(head_rows)
                selected.sort()
                rows = selected
            for mention_gid in mention_gids:
                closure_ids = symbols.closure_ids
                matching: set[int] = set()
                for body_gid, body_rows in table.by_body.items():
                    if mention_gid in closure_ids[body_gid]:
                        matching.update(body_rows)
                if rows is None:
                    rows = sorted(matching)
                else:
                    rows = [row for row in rows if row in matching]
                if not rows:
                    break
            candidates: Iterable[int] = (
                range(len(table)) if rows is None else rows
            )
            ranks = table.ranks
            if min_conf is None and min_support is None:
                hits.extend(
                    QueryHit(self, ranks[row], shape_code) for row in candidates
                )
                continue
            n_matched, n_hits_col, n_total = (
                table.n_matched, table.n_hits, table.n_total,
            )
            for row in candidates:
                hit_count = n_hits_col[row]
                if min_conf is not None:
                    matched = n_matched[row]
                    confidence = hit_count / matched if matched else 0.0
                    if confidence < min_conf:
                        continue
                if min_support is not None and hit_count / n_total[row] < min_support:
                    continue
                hits.append(QueryHit(self, ranks[row], shape_code))
        return hits

    def _query_naive(
        self,
        head_promo: str | None,
        head_item: str | None,
        head_under: str | None,
        mentions: list[GSale],
        shape: str | None,
        min_conf: float | None,
        min_support: float | None,
    ) -> list[QueryHit]:
        """Reference path: materialize the view, linearly scan every rule."""
        moa = self.symbols.moa
        ancestors_of = moa.ancestors_of_gsale
        under = GSale.concept(head_under) if head_under is not None else None
        hits: list[QueryHit] = []
        for rank, scored in enumerate(self.view):
            rule, stats = scored.rule, scored.stats
            rule_shape = shape_of_body(rule.body)
            if shape is not None and rule_shape != shape:
                continue
            head = rule.head
            if head_promo is not None and head.promo != head_promo:
                continue
            if head_item is not None and head.node != head_item:
                continue
            if under is not None and under not in ancestors_of(head):
                continue
            if mentions and not all(
                any(g == m or m in ancestors_of(g) for g in rule.body)
                for m in mentions
            ):
                continue
            if min_conf is not None and stats.confidence < min_conf:
                continue
            if min_support is not None and stats.support < min_support:
                continue
            hits.append(QueryHit(self, rank, rule_shape))
        return hits
