"""The MPF recommender (Definitions 6–7): rules + most-profitable-first.

Given a basket of non-target sales, the recommendation rule is the matching
rule of highest MPF rank.  The same class serves both the *initial*
recommender (all mined rules, Section 3) and the *cut-optimal* recommender
(the rules surviving pruning, Section 4) — they differ only in the rule list
handed to the constructor.

Serving routes through a compiled :class:`~repro.core.rule_index.RuleMatchIndex`
(built lazily on first use): matching touches only rules sharing a
generalized sale with the basket instead of scanning the whole ranked list.
Every matching method keeps the original linear scan behind ``naive=True``
as the reference path for differential testing, and
:meth:`MPFRecommender.recommend_many` adds the batch serving API with a
persistent basket-level memo.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.engine.compiled import CompiledModel
from repro.core.engine.symbols import SymbolTable
from repro.core.moa import MOAHierarchy
from repro.core.recommender import Recommendation, Recommender
from repro.core.rule_index import RuleMatchIndex, basket_key
from repro.core.rules import ScoredRule, rank_key
from repro.core.sales import Sale, TransactionDB
from repro.errors import RecommenderError, ValidationError
from repro.obs import trace as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.rulestore import QueryHit, RuleStore

__all__ = ["MPFRecommender"]


class MPFRecommender(Recommender):
    """A ranked rule list with most-profitable-first selection.

    Parameters
    ----------
    scored_rules:
        The rule set; must contain exactly one default (empty-body) rule so
        every basket has a matching rule.
    moa:
        The generalization engine the rules were mined against; needed to
        test whether a body matches a basket.
    name:
        Display name for experiment tables.
    presorted:
        Promise that ``scored_rules`` is already in MPF rank order, so the
        constructor's sort is skipped.  Covering and pruning both hand
        over rank-sorted lists; re-sorting them per fit is pure overhead.
    compiled:
        The rules' :class:`~repro.core.engine.compiled.CompiledModel`,
        when the caller already has one (the fit pipeline compiles from
        the miner's interning; ``load_model`` restores a persisted one).
        Implies ``presorted`` — a compiled model is rank-ordered by
        construction — and makes the first recommendation free of any
        interning work.
    """

    #: Cap on the basket-level memo shared by :meth:`recommend` and
    #: :meth:`recommend_many`.  The memo is a true LRU: a hit re-inserts
    #: the entry (dicts preserve insertion order) and inserting at the
    #: limit evicts exactly the single least-recently-used entry, so a
    #: long-lived serving process never sees the wholesale cold restart a
    #: ``clear()`` would cause.
    _MEMO_LIMIT = 1 << 18

    def __init__(
        self,
        scored_rules: Sequence[ScoredRule],
        moa: MOAHierarchy,
        name: str = "MPF",
        presorted: bool = False,
        compiled: CompiledModel | None = None,
    ) -> None:
        super().__init__()
        if compiled is not None:
            # Keep the compiled model's sequence as-is: on a store-backed
            # load it is a lazy RankedView, and listing (or scanning) it
            # here would materialize every rule the laziness avoids.  The
            # default-rule invariant is readable from the compiled
            # always-match positions without touching any rule object.
            rules_list: Sequence[ScoredRule] = compiled.ranked_rules
            n_defaults = len(compiled.always_match)
        else:
            # Keyed sort: one rank_key per rule instead of one per comparison.
            rules_list = (
                list(scored_rules)
                if presorted
                else sorted(scored_rules, key=rank_key)
            )
            n_defaults = sum(1 for s in rules_list if s.rule.is_default)
        if n_defaults != 1:
            raise ValidationError(
                f"MPF recommender needs exactly one default rule, got "
                f"{n_defaults}"
            )
        self.name = name
        self.moa = moa
        self.ranked_rules: Sequence[ScoredRule] = rules_list
        self._compiled = compiled
        self._index: RuleMatchIndex | None = None
        self._batch_memo: dict[frozenset[tuple[str, str]], Recommendation] = {}
        self._topk_memo: dict[
            tuple[frozenset[tuple[str, str]], int], tuple[Recommendation, ...]
        ] = {}
        self._fitted = True

    @property
    def compiled(self) -> CompiledModel:
        """The dense-id compiled form of this recommender's rules.

        Compiled lazily against the MOA engine's canonical symbol table
        when the constructor was not handed one; recommenders built by
        the fit pipeline or by ``load_model`` (format v2) carry theirs
        from construction.
        """
        if self._compiled is None:
            self._compiled = CompiledModel.compile(
                self.ranked_rules, SymbolTable.of(self.moa), name=self.name
            )
        return self._compiled

    @property
    def rule_store(self) -> "RuleStore":
        """The shape-split columnar store over this recommender's rules.

        Built once on demand (v3-loaded models carry theirs from the
        artifact); backs :meth:`query_rules` and the serving telemetry's
        per-shape counts.
        """
        return self.compiled.rule_store

    def query_rules(
        self,
        head_promo: str | None = None,
        head_item: str | None = None,
        head_under: str | None = None,
        body_mentions: Sequence[object] | None = None,
        shape: str | None = None,
        min_conf: float | None = None,
        min_support: float | None = None,
        top: int | None = None,
        naive: bool = False,
    ) -> "list[QueryHit]":
        """Audit query over the ranked rules (see :meth:`RuleStore.query`).

        Answers like "every rule recommending promo ``P`` under concept
        ``C``" from the per-shape inverted indexes instead of a linear
        scan; ``naive=True`` keeps the reference scan for differential
        testing.
        """
        return self.rule_store.query(
            head_promo=head_promo,
            head_item=head_item,
            head_under=head_under,
            body_mentions=body_mentions,
            shape=shape,
            min_conf=min_conf,
            min_support=min_support,
            top=top,
            naive=naive,
        )

    @property
    def rule_index(self) -> RuleMatchIndex:
        """The compiled matching index (built lazily on first use)."""
        if self._index is None:
            self._index = RuleMatchIndex(
                self.ranked_rules, self.moa, compiled=self.compiled
            )
        return self._index

    def fit(self, db: TransactionDB) -> "MPFRecommender":
        """No-op: the rules were mined before construction.

        Kept so the class satisfies the :class:`Recommender` protocol; use
        :class:`repro.core.miner.ProfitMiner` to mine and build in one step.
        """
        return self

    def recommend(self, basket: Sequence[Sale]) -> Recommendation:
        """Recommend using the highest-ranked matching rule (Definition 6).

        Routed through :meth:`recommend_many` so single-basket traffic
        shares the batch path's memo and serving telemetry — a daemon
        receiving one basket per request counts ``serve.baskets`` and
        hits the basket memo exactly as if the basket had arrived in a
        batch.
        """
        return self.recommend_many([basket])[0]

    def recommend_many(
        self, baskets: Sequence[Sequence[Sale]]
    ) -> list[Recommendation]:
        """Batch serving: one recommendation per basket, memoized.

        Baskets with the same ``(item, promotion)`` pairs — regardless of
        quantities or sale order — are matched once; the memo persists
        across calls (LRU-bounded at ``_MEMO_LIMIT`` entries, evicting
        only the single least-recently-used one), so repeated traffic is
        answered with a dictionary lookup and sustained traffic never
        pays a wholesale cold restart.
        """
        self._check_fitted()
        memo = self._batch_memo
        first_match = self.rule_index.first_match
        out: list[Recommendation] = []
        memo_hits = 0
        memo_evictions = 0
        with obs.span("serve"):
            for basket in baskets:
                key = basket_key(basket)
                rec = memo.get(key)
                if rec is None:
                    scored = first_match(basket)
                    if scored is None:  # pragma: no cover - default rule matches all
                        raise RecommenderError(
                            "no matching rule found; the default rule is missing"
                        )
                    rec = Recommendation(
                        item_id=scored.rule.head.node,
                        promo_code=scored.rule.head.promo or "",
                        rule=scored,
                    )
                    if len(memo) >= self._MEMO_LIMIT:
                        memo.pop(next(iter(memo)))
                        memo_evictions += 1
                    memo[key] = rec
                else:
                    # LRU: re-insert so the entry moves to the back of the
                    # order and wins over colder ones at eviction time.
                    memo[key] = memo.pop(key)
                    memo_hits += 1
                out.append(rec)
        trace = obs.current_trace()
        if trace is not None:
            trace.count("serve.baskets", len(out))
            trace.cache_event(
                "serve.basket_memo",
                hits=memo_hits,
                misses=len(out) - memo_hits,
                evictions=memo_evictions,
                entries=len(memo),
            )
        return out

    def recommendation_rule(
        self, basket: Sequence[Sale], naive: bool = False
    ) -> ScoredRule:
        """The MPF recommendation rule covering ``basket``.

        ``naive=True`` runs the original linear scan over the ranked rules
        — the reference path the indexed matcher is differentially tested
        against; production serving always uses the index.
        """
        self._check_fitted()
        if naive:
            gsales = self.moa.generalizations_of_basket(basket)
            for scored in self.ranked_rules:
                if scored.rule.body <= gsales:
                    return scored
            raise RecommenderError(  # pragma: no cover - default matches all
                "no matching rule found; the default rule is missing"
            )
        scored = self.rule_index.first_match(basket)
        if scored is None:  # pragma: no cover - default rule matches all
            raise RecommenderError(
                "no matching rule found; the default rule is missing"
            )
        return scored

    def matching_rules(
        self, basket: Sequence[Sale], naive: bool = False
    ) -> list[ScoredRule]:
        """All matching rules in rank order (for multi-rule recommendation).

        Section 2 notes that recommending several pairs per customer simply
        selects several rules; callers can take a prefix of this list.
        ``naive=True`` selects the reference linear filter.
        """
        self._check_fitted()
        if naive:
            gsales = self.moa.generalizations_of_basket(basket)
            return [s for s in self.ranked_rules if s.rule.body <= gsales]
        return self.rule_index.all_matches(basket)

    def _top_k_picks(
        self, basket: Sequence[Sale], k: int, naive: bool = False
    ) -> list[Recommendation]:
        """The top-k matching loop shared by the single and batch paths."""
        picks: list[Recommendation] = []
        seen: set[tuple[str, str]] = set()
        for scored in self.matching_rules(basket, naive=naive):
            pair = (scored.rule.head.node, scored.rule.head.promo or "")
            if pair in seen:
                continue
            seen.add(pair)
            picks.append(
                Recommendation(item_id=pair[0], promo_code=pair[1], rule=scored)
            )
            if len(picks) == k:
                break
        return picks

    def recommend_top_k(
        self, basket: Sequence[Sale], k: int, naive: bool = False
    ) -> list[Recommendation]:
        """Up to ``k`` recommendations with distinct (item, promotion) pairs.

        Ranked best-first: position 0 is exactly :meth:`recommend`'s pair,
        and the top-k list for a larger ``k`` extends the smaller one (a
        prefix property the eval and campaign layers rely on).  The
        indexed path routes through :meth:`recommend_top_k_many` so single
        calls share the batch memo and telemetry; ``naive=True`` keeps the
        direct linear-scan reference for differential testing.
        """
        if k < 1:
            raise ValidationError(f"k must be at least 1, got {k}")
        if naive:
            return self._top_k_picks(basket, k, naive=True)
        return self.recommend_top_k_many([basket], k)[0]

    def recommend_top_k_many(
        self, baskets: Sequence[Sequence[Sale]], k: int, naive: bool = False
    ) -> list[list[Recommendation]]:
        """Batch top-k serving: one ranked offer list per basket, memoized.

        The portfolio twin of :meth:`recommend_many`: results are memoized
        by ``(basket key, k)`` in a true LRU bounded at ``_MEMO_LIMIT``
        entries (shared budget with nothing else — the single-pair memo is
        separate because its values are single recommendations), so
        repeated traffic at the same ``k`` is answered with a dictionary
        lookup.  Entries are stored as tuples and returned as fresh lists,
        keeping memoized offers safe from caller mutation.  ``naive=True``
        bypasses the memo and runs the reference linear scan per basket.
        """
        if k < 1:
            raise ValidationError(f"k must be at least 1, got {k}")
        self._check_fitted()
        if naive:
            return [self._top_k_picks(b, k, naive=True) for b in baskets]
        memo = self._topk_memo
        out: list[list[Recommendation]] = []
        memo_hits = 0
        memo_evictions = 0
        with obs.span("serve", mode=f"top-{k}"):
            for basket in baskets:
                key = (basket_key(basket), k)
                entry = memo.get(key)
                if entry is None:
                    entry = tuple(self._top_k_picks(basket, k))
                    if len(memo) >= self._MEMO_LIMIT:
                        memo.pop(next(iter(memo)))
                        memo_evictions += 1
                    memo[key] = entry
                else:
                    # LRU: re-insert so the entry moves to the back of the
                    # order and wins over colder ones at eviction time.
                    memo[key] = memo.pop(key)
                    memo_hits += 1
                out.append(list(entry))
        trace = obs.current_trace()
        if trace is not None:
            trace.count("serve.topk_baskets", len(out))
            trace.cache_event(
                "serve.topk_memo",
                hits=memo_hits,
                misses=len(out) - memo_hits,
                evictions=memo_evictions,
                entries=len(memo),
            )
        return out

    @property
    def model_size(self) -> int:
        """Number of rules, the quantity Figures 3(f)/4(f) plot."""
        return len(self.ranked_rules)

    def explain(self, basket: Sequence[Sale]) -> str:
        """Multi-line explanation of the recommendation for ``basket``."""
        scored = self.recommendation_rule(basket)
        lines = [
            f"recommender: {self.name} ({self.model_size} rules)",
            f"basket items: {', '.join(sorted({s.item_id for s in basket}))}",
            f"selected rule: {scored.describe()}",
            f"recommendation: {scored.rule.head.describe()}",
        ]
        return "\n".join(lines)
