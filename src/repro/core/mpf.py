"""The MPF recommender (Definitions 6–7): rules + most-profitable-first.

Given a basket of non-target sales, the recommendation rule is the matching
rule of highest MPF rank.  The same class serves both the *initial*
recommender (all mined rules, Section 3) and the *cut-optimal* recommender
(the rules surviving pruning, Section 4) — they differ only in the rule list
handed to the constructor.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.moa import MOAHierarchy
from repro.core.recommender import Recommendation, Recommender
from repro.core.rules import ScoredRule
from repro.core.sales import Sale, TransactionDB
from repro.errors import RecommenderError, ValidationError

__all__ = ["MPFRecommender"]


class MPFRecommender(Recommender):
    """A ranked rule list with most-profitable-first selection.

    Parameters
    ----------
    scored_rules:
        The rule set; must contain exactly one default (empty-body) rule so
        every basket has a matching rule.
    moa:
        The generalization engine the rules were mined against; needed to
        test whether a body matches a basket.
    name:
        Display name for experiment tables.
    """

    def __init__(
        self,
        scored_rules: Sequence[ScoredRule],
        moa: MOAHierarchy,
        name: str = "MPF",
    ) -> None:
        super().__init__()
        defaults = [s for s in scored_rules if s.rule.is_default]
        if len(defaults) != 1:
            raise ValidationError(
                f"MPF recommender needs exactly one default rule, got "
                f"{len(defaults)}"
            )
        self.name = name
        self.moa = moa
        self.ranked_rules: list[ScoredRule] = sorted(scored_rules)
        self._fitted = True

    def fit(self, db: TransactionDB) -> "MPFRecommender":
        """No-op: the rules were mined before construction.

        Kept so the class satisfies the :class:`Recommender` protocol; use
        :class:`repro.core.miner.ProfitMiner` to mine and build in one step.
        """
        return self

    def recommend(self, basket: Sequence[Sale]) -> Recommendation:
        """Recommend using the highest-ranked matching rule (Definition 6)."""
        scored = self.recommendation_rule(basket)
        return Recommendation(
            item_id=scored.rule.head.node,
            promo_code=scored.rule.head.promo or "",
            rule=scored,
        )

    def recommendation_rule(self, basket: Sequence[Sale]) -> ScoredRule:
        """The MPF recommendation rule covering ``basket``."""
        self._check_fitted()
        gsales = self.moa.generalizations_of_basket(basket)
        for scored in self.ranked_rules:
            if scored.rule.body <= gsales:
                return scored
        raise RecommenderError(  # pragma: no cover - default rule matches all
            "no matching rule found; the default rule is missing"
        )

    def matching_rules(self, basket: Sequence[Sale]) -> list[ScoredRule]:
        """All matching rules in rank order (for multi-rule recommendation).

        Section 2 notes that recommending several pairs per customer simply
        selects several rules; callers can take a prefix of this list.
        """
        self._check_fitted()
        gsales = self.moa.generalizations_of_basket(basket)
        return [s for s in self.ranked_rules if s.rule.body <= gsales]

    def recommend_top_k(
        self, basket: Sequence[Sale], k: int
    ) -> list[Recommendation]:
        """Up to ``k`` recommendations with distinct (item, promotion) pairs."""
        if k < 1:
            raise ValidationError(f"k must be at least 1, got {k}")
        picks: list[Recommendation] = []
        seen: set[tuple[str, str]] = set()
        for scored in self.matching_rules(basket):
            pair = (scored.rule.head.node, scored.rule.head.promo or "")
            if pair in seen:
                continue
            seen.add(pair)
            picks.append(
                Recommendation(item_id=pair[0], promo_code=pair[1], rule=scored)
            )
            if len(picks) == k:
                break
        return picks

    @property
    def model_size(self) -> int:
        """Number of rules, the quantity Figures 3(f)/4(f) plot."""
        return len(self.ranked_rules)

    def explain(self, basket: Sequence[Sale]) -> str:
        """Multi-line explanation of the recommendation for ``basket``."""
        scored = self.recommendation_rule(basket)
        lines = [
            f"recommender: {self.name} ({self.model_size} rules)",
            f"basket items: {', '.join(sorted({s.item_id for s in basket}))}",
            f"selected rule: {scored.describe()}",
            f"recommendation: {scored.rule.head.describe()}",
        ]
        return "\n".join(lines)
