"""Rules, their worth measures, and the MPF ranking (Definitions 4–6).

A rule ``{g_1, …, g_k} → ⟨I, P⟩`` pairs an ancestor-free set of generalized
non-target sales with one generalized target sale.  Its *worth* combines:

* ``Supp`` — fraction of transactions matched by body ∪ {head};
* ``Conf`` — ``Supp(body ∪ {head}) / Supp(body)``;
* ``Prof_ru`` — total profit credited over matched transactions;
* ``Prof_re`` — profit per matched transaction (``Prof_ru / N_matched``),
  the quantity the most-profitable-first (MPF) selection maximizes.

MPF ranks rules by recommendation profit, then support (generality), then
body size (simplicity), then generation order (totality); confidence enters
only through ``Prof_re``, exactly as in the paper.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.generalized import GKind, GSale
from repro.errors import ValidationError

__all__ = ["Rule", "RuleStats", "ScoredRule", "rank_key"]


@dataclass(frozen=True)
class Rule:
    """An association rule from generalized non-target sales to a head.

    ``order`` records generation order — the paper's final tie-breaker — and
    must be unique within one mining run so that ranking is a total order.
    """

    body: frozenset[GSale]
    head: GSale
    order: int

    def __post_init__(self) -> None:
        if self.head.kind is not GKind.PROMO:
            raise ValidationError(
                f"rule head must be a ⟨item, promotion⟩ pair, got "
                f"{self.head.describe()}"
            )
        for gsale in self.body:
            if gsale.kind is GKind.PROMO and gsale.node == self.head.node:
                raise ValidationError(
                    "rule body must not mention the head's target item"
                )

    @property
    def body_size(self) -> int:
        """``|body(r)|`` — number of generalized sales in the body."""
        return len(self.body)

    @property
    def is_default(self) -> bool:
        """Whether this is the empty-body default rule ``∅ → g``."""
        return not self.body

    def describe(self) -> str:
        """Human-readable form, e.g. ``{[Meat], Egg} -> <Sunchip @ P2>``."""
        body = ", ".join(g.describe() for g in sorted(self.body))
        return f"{{{body}}} -> {self.head.describe()}"


@dataclass(frozen=True)
class RuleStats:
    """Observed worth of a rule on the training transactions (Definition 5).

    Parameters
    ----------
    n_matched:
        Number of training transactions matched by the body.
    n_hits:
        Of those, the number whose target sale the head generalizes.
    rule_profit:
        ``Prof_ru`` — profit credited over all matched transactions.
    n_total:
        Size of the training database (denominator of ``Supp``).
    """

    n_matched: int
    n_hits: int
    rule_profit: float
    n_total: int

    def __post_init__(self) -> None:
        if self.n_total <= 0:
            raise ValidationError("n_total must be positive")
        if not 0 <= self.n_hits <= self.n_matched <= self.n_total:
            raise ValidationError(
                f"inconsistent counts: hits={self.n_hits}, "
                f"matched={self.n_matched}, total={self.n_total}"
            )

    @property
    def support(self) -> float:
        """``Supp(body ∪ {head})`` — hit transactions over all transactions."""
        return self.n_hits / self.n_total

    @property
    def body_support(self) -> float:
        """``Supp(body)`` — matched transactions over all transactions."""
        return self.n_matched / self.n_total

    @property
    def confidence(self) -> float:
        """``Conf`` — hits over matches (0 when nothing matched)."""
        if self.n_matched == 0:
            return 0.0
        return self.n_hits / self.n_matched

    @property
    def recommendation_profit(self) -> float:
        """``Prof_re`` — profit per matched transaction (0 on no match)."""
        if self.n_matched == 0:
            return 0.0
        return self.rule_profit / self.n_matched

    @property
    def average_profit_per_hit(self) -> float:
        """``Y`` of Section 4.2 — credited profit per hit (0 on no hit)."""
        if self.n_hits == 0:
            return 0.0
        return self.rule_profit / self.n_hits


@functools.total_ordering
@dataclass(frozen=True)
class ScoredRule:
    """A rule together with its training stats, ordered by MPF rank.

    ``a < b`` means ``a`` is ranked *higher* (more preferred) than ``b``, so
    sorting a list of scored rules ascending yields MPF order.
    """

    rule: Rule
    stats: RuleStats

    def rank_key(self) -> tuple[float, float, int, int]:
        """This rule's MPF ordering key (see :func:`rank_key`)."""
        return rank_key(self)

    def __lt__(self, other: "ScoredRule") -> bool:
        if not isinstance(other, ScoredRule):
            return NotImplemented
        return self.rank_key() < other.rank_key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScoredRule):
            return NotImplemented
        return self.rule == other.rule and self.stats == other.stats

    def __hash__(self) -> int:
        return hash((self.rule, self.stats))

    def describe(self) -> str:
        """One-line summary used by ``explain`` and the CLI."""
        return (
            f"{self.rule.describe()}  "
            f"[supp={self.stats.support:.4f} conf={self.stats.confidence:.2f} "
            f"prof_re={self.stats.recommendation_profit:.4f}]"
        )


def rank_key(scored: ScoredRule) -> tuple[float, float, int, int]:
    """The MPF ordering key of Definition 6 (ascending = higher rank).

    Profit per recommendation (descending), then support (descending), then
    body size (ascending), then generation order (ascending).

    The key is cached on the scored rule (both dataclasses are immutable),
    so rules sorted repeatedly — covering, the initial recommender, the
    pruned recommender — pay for the arithmetic once.
    """
    key: tuple[float, float, int, int] | None
    key = getattr(scored, "_rank_key", None)
    if key is None:
        key = (
            -scored.stats.recommendation_profit,
            -scored.stats.support,
            scored.rule.body_size,
            scored.rule.order,
        )
        object.__setattr__(scored, "_rank_key", key)
    return key
