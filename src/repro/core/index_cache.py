"""Shared fit-path state: cached MOA hierarchies and transaction indexes.

Fitting one rule-based system builds, before any mining happens, two
expensive structures: the :class:`~repro.core.moa.MOAHierarchy` (memoized
generalization engine over the catalog) and the
:class:`~repro.core.mining.TransactionIndex` (per-transaction extension
sets, interned gsales and tid bitmasks).  A support sweep rebuilds both for
every (system, support level, fold) cell even though

* the MOA hierarchy depends only on (catalog, hierarchy, ``use_moa``) —
  every fold and every support level shares it;
* the index's *structural* part depends only on (db, ``use_moa``) — the
  PROF and CONF variants over one fold differ solely in the credited-profit
  tables, which :meth:`TransactionIndex.with_profit_model` recomputes in a
  fraction of a full build;
* the full index depends on (db, ``use_moa``, profit model) — every support
  level shares it outright.

:class:`FitCache` memoizes all three layers.  One cache instance is scoped
to a job (a sweep, a cross-validation run); entries hold strong references
to their databases, which both bounds the cache's lifetime to the job's and
keeps the ``id()``-based keys stable (a live referent cannot be recycled).

Thread-safety: a cache is meant to be used from one thread.  The parallel
cross-validation path gives each worker *process* its own cache rather than
sharing one, so no locking is needed — and results are bit-identical either
way because a cache hit returns exactly what a fresh build would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hierarchy import ConceptHierarchy
from repro.core.items import ItemCatalog
from repro.core.mining import TransactionIndex
from repro.core.moa import MOAHierarchy
from repro.core.profit import ProfitModel
from repro.core.sales import TransactionDB
from repro.obs import trace as obs

__all__ = ["FitCache"]


@dataclass
class FitCacheStats:
    """Hit/miss counters, mostly for tests and benchmark reporting."""

    moa_hits: int = 0
    moa_misses: int = 0
    index_hits: int = 0
    index_misses: int = 0
    structural_shares: int = 0  # index misses served by a profit-model twin


@dataclass
class FitCache:
    """Memoizes MOA hierarchies and transaction indexes across fits.

    Keys are object identities (``id()``), which is the right equality for
    the fit path: the sweep/CV drivers build each fold's training subset
    once and hand the *same* objects to every system, and two structurally
    equal databases that are distinct objects would still produce
    identical results — a conservative miss, never a wrong hit.

    **The pinning invariant.**  An ``id()`` is only unique among *live*
    objects: if a key object were garbage-collected, a later, unrelated
    object could be allocated at the same address and silently hit a stale
    entry — returning an index built over a different database.  The cache
    therefore holds a strong reference (a *pin*) to every object whose id
    appears in a key, for as long as the entry lives; :meth:`clear` drops
    entries and pins together.  The invariant is asserted at every
    insertion and can be audited wholesale with
    :meth:`check_pins`; ``tests/unit/test_index_cache.py`` keeps a
    regression test on it.
    """

    _moas: dict[tuple[int, int, bool], MOAHierarchy] = field(
        default_factory=dict, repr=False
    )
    _indexes: dict[tuple[int, bool, str], TransactionIndex] = field(
        default_factory=dict, repr=False
    )
    _structural: dict[tuple[int, bool], TransactionIndex] = field(
        default_factory=dict, repr=False
    )
    _pins: list[object] = field(default_factory=list, repr=False)
    #: ids of the pinned objects — the O(1) membership side of ``_pins``.
    _pinned_ids: set[int] = field(default_factory=set, repr=False)
    stats: FitCacheStats = field(default_factory=FitCacheStats)

    # ------------------------------------------------------------------
    def _pin(self, *objects: object) -> None:
        """Hold strong references to key objects (see the class docstring)."""
        for obj in objects:
            if id(obj) not in self._pinned_ids:
                self._pins.append(obj)
                self._pinned_ids.add(id(obj))

    def check_pins(self) -> None:
        """Assert the pinning invariant over every cached entry.

        Every object id used in a cache key must belong to a pinned (and
        therefore live) object.  Raises ``AssertionError`` on violation —
        which would mean a key id could be recycled and alias a stale
        entry.
        """
        pinned = self._pinned_ids
        for catalog_id, hierarchy_id, _ in self._moas:
            assert catalog_id in pinned and hierarchy_id in pinned, (
                "FitCache invariant violated: MOA key object not pinned"
            )
        for db_id, _, _ in self._indexes:
            assert db_id in pinned, (
                "FitCache invariant violated: index key database not pinned"
            )
        for db_id, _ in self._structural:
            assert db_id in pinned, (
                "FitCache invariant violated: structural key database not pinned"
            )

    # ------------------------------------------------------------------
    def moa_for(
        self,
        catalog: ItemCatalog,
        hierarchy: ConceptHierarchy,
        use_moa: bool,
    ) -> MOAHierarchy:
        """The generalization engine for (catalog, hierarchy, use_moa).

        Shared across folds and support levels: a k-fold sweep needs at
        most two engines (±MOA), not ``2 · k · len(min_supports)``.
        Reusing one engine also concentrates its internal memo tables,
        so later fits start warm.
        """
        key = (id(catalog), id(hierarchy), use_moa)
        cached = self._moas.get(key)
        if cached is not None:
            self.stats.moa_hits += 1
            obs.cache_event("fit_cache.moa", hits=1, entries=len(self._moas))
            return cached
        self.stats.moa_misses += 1
        obs.cache_event("fit_cache.moa", misses=1, entries=len(self._moas) + 1)
        moa = MOAHierarchy(catalog=catalog, hierarchy=hierarchy, use_moa=use_moa)
        self._moas[key] = moa
        self._pin(catalog, hierarchy)
        assert key[0] in self._pinned_ids and key[1] in self._pinned_ids
        return moa

    def index_for(
        self,
        db: TransactionDB,
        moa: MOAHierarchy,
        profit_model: ProfitModel,
    ) -> TransactionIndex:
        """A transaction index for (db, moa.use_moa, profit model name).

        A full hit returns the previously built index.  A *structural*
        hit — same db and MOA setting, different profit model — derives a
        twin via :meth:`TransactionIndex.with_profit_model`, recomputing
        only the credited-profit tables.  Only a cold miss pays for the
        extension/interning/mask pass.
        """
        key = (id(db), moa.use_moa, profit_model.name)
        cached = self._indexes.get(key)
        if cached is not None:
            self.stats.index_hits += 1
            obs.cache_event(
                "fit_cache.index", hits=1, entries=len(self._indexes)
            )
            return cached
        self.stats.index_misses += 1
        obs.cache_event(
            "fit_cache.index", misses=1, entries=len(self._indexes) + 1
        )
        structural_key = (id(db), moa.use_moa)
        base = self._structural.get(structural_key)
        if base is not None:
            index = TransactionIndex.with_profit_model(base, profit_model)
            self.stats.structural_shares += 1
            obs.cache_event("fit_cache.index", structural_shares=1)
        else:
            index = TransactionIndex(db=db, moa=moa, profit_model=profit_model)
            self._structural[structural_key] = index
            self._pin(db)
        self._indexes[key] = index
        assert key[0] in self._pinned_ids
        return index

    def clear(self) -> None:
        """Drop every cached structure (and the object pins with them)."""
        self._moas.clear()
        self._indexes.clear()
        self._structural.clear()
        self._pins.clear()
        self._pinned_ids.clear()
        self.stats = FitCacheStats()
