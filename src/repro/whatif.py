"""What-if analysis: expected profit of every candidate offer for a basket.

The introduction's store manager knows the rules related to Perfume but
"still cannot tell which of Lipstick, Diamond, …, and what price, should be
recommended".  The MPF recommender answers with a single pair; this module
exposes the whole decision surface behind that answer: for one basket,
every candidate ⟨target item, promotion code⟩ with

* the best matching rule the candidate is at least as favorable as (its
  confidence is a conservative acceptance estimate under MOA),
* the candidate's profit per package and the supporting rule's credited
  per-hit quantity, and
* the resulting expected profit per recommendation.

The MPF choice is always the top row — the table *explains* it — and the
runner-up rows show how much margin the recommendation has, which is what a
manager needs before overriding a model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.generalized import GKind, GSale
from repro.core.moa import MOAHierarchy
from repro.core.mpf import MPFRecommender
from repro.core.rules import ScoredRule
from repro.core.sales import Sale
from repro.errors import ValidationError

__all__ = ["OfferOption", "what_if"]

#: Sort sentinel placing unsupported candidates after every real rule;
#: tuples of different lengths compare fine because ``inf`` exceeds any
#: leading rank-key component.
_NO_RULE_RANK = (float("inf"),)


@dataclass(frozen=True)
class OfferOption:
    """One candidate offer with its expected-profit breakdown."""

    item_id: str
    promo_code: str
    profit_per_package: float
    acceptance_estimate: float
    expected_profit: float
    supporting_rule: ScoredRule | None
    quantity_estimate: float = 1.0

    def describe(self) -> str:
        """One-line rendering for reports and the example scripts."""
        rule = (
            self.supporting_rule.rule.describe()
            if self.supporting_rule is not None
            else "(no matching rule)"
        )
        return (
            f"{self.item_id} @ {self.promo_code}: "
            f"E[profit]={self.expected_profit:.4f} "
            f"(accept≈{self.acceptance_estimate:.2f} × "
            f"${self.profit_per_package:.2f} × "
            f"qty≈{self.quantity_estimate:.2f})  via {rule}"
        )


def what_if(
    recommender: MPFRecommender, basket: Sequence[Sale]
) -> list[OfferOption]:
    """Rank every candidate offer for ``basket`` by expected profit.

    For each candidate head, the *supporting rule* is the highest-ranked
    matching rule whose acceptance implies the candidate's (its head is a
    promotion the candidate is at least as favorable as under MOA); its
    confidence is a conservative acceptance estimate, and its credited
    profit per hit fixes the expected *quantity* per acceptance (the
    paper's MOA crediting weights hits by purchased volume, not by one
    package).  The candidate's expectation is therefore::

        E[profit] = acceptance × profit_per_package × quantity

    with ``quantity = per-hit credited profit of the supporting rule ÷
    profit per package of its own head``.  For the candidate equal to a
    rule's head this collapses to the rule's ``Prof_re`` exactly, so the
    top row coincides with :meth:`MPFRecommender.recommend`'s choice
    (ties resolve through the same MPF rank key, and per-package profit
    is non-increasing along MOA favorability for every catalog in this
    repo, so no more-favorable variant can overtake a rule's own head).
    Candidates with no supporting rule get acceptance 0 and sort last.

    Candidate heads must be promotion-form ⟨item, code⟩ pairs; a custom
    MOA engine yielding a promotion-free head raises
    :class:`~repro.errors.ValidationError` instead of silently looking
    up the empty-string promotion code.
    """
    moa: MOAHierarchy = recommender.moa
    matching = recommender.matching_rules(basket)
    options: list[OfferOption] = []
    for head in moa.all_candidate_heads():
        if head.kind is not GKind.PROMO or not head.promo:
            raise ValidationError(
                f"candidate head {head.describe()!r} has no promotion code; "
                "what-if analysis needs promotion-form ⟨item, code⟩ heads "
                "(did a custom MOA engine yield item- or concept-form "
                "candidates?)"
            )
        promo = moa.catalog.promotion(head.node, head.promo)
        supporting = _best_supporting_rule(moa, matching, head)
        acceptance = supporting.stats.confidence if supporting else 0.0
        quantity = 1.0
        if supporting is not None:
            head_promo = moa.catalog.promotion(
                supporting.rule.head.node, supporting.rule.head.promo or ""
            )
            if head_promo.profit != 0:
                quantity = (
                    supporting.stats.average_profit_per_hit
                    / head_promo.profit
                )
        options.append(
            OfferOption(
                item_id=head.node,
                promo_code=head.promo,
                profit_per_package=promo.profit,
                acceptance_estimate=acceptance,
                expected_profit=acceptance * promo.profit * quantity,
                supporting_rule=supporting,
                quantity_estimate=quantity,
            )
        )
    options.sort(
        key=lambda option: (
            -option.expected_profit,
            option.supporting_rule.rank_key()
            if option.supporting_rule is not None
            else _NO_RULE_RANK,
            0
            if option.supporting_rule is not None
            and option.supporting_rule.rule.head
            == GSale.promo_form(option.item_id, option.promo_code)
            else 1,
            option.item_id,
            option.promo_code,
        )
    )
    return options


def _best_supporting_rule(
    moa: MOAHierarchy, matching: list[ScoredRule], head: GSale
) -> ScoredRule | None:
    """The best matching rule conservatively supporting ``head``.

    A rule recommending ``⟨I, P''⟩`` supports the candidate ``⟨I, P⟩`` when
    ``P ⪯ P''`` (the candidate is at least as favorable): every customer the
    rule would convert also accepts the cheaper-or-equal candidate under
    MOA, so the rule's confidence is a *lower bound* on the candidate's
    acceptance.  Among supporting rules the highest-ranked one is used —
    for the candidate equal to a rule's own head this reproduces the hit
    semantics used in evaluation exactly.
    """
    best: ScoredRule | None = None
    for scored in matching:
        if scored.rule.head.node != head.node:
            continue
        if not moa.generalizes_or_equal(head, scored.rule.head):
            continue
        if best is None or scored.rank_key() < best.rank_key():
            best = scored
    return best
