"""What-if analysis: expected profit of every candidate offer for a basket.

The introduction's store manager knows the rules related to Perfume but
"still cannot tell which of Lipstick, Diamond, …, and what price, should be
recommended".  The MPF recommender answers with a single pair; this module
exposes the whole decision surface behind that answer: for one basket,
every candidate ⟨target item, promotion code⟩ with

* the best matching rule the candidate is at least as favorable as (its
  confidence is a conservative acceptance estimate under MOA),
* the candidate's profit per package, and
* the resulting expected profit per recommendation.

The MPF choice is always the top row — the table *explains* it — and the
runner-up rows show how much margin the recommendation has, which is what a
manager needs before overriding a model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.generalized import GSale
from repro.core.moa import MOAHierarchy
from repro.core.mpf import MPFRecommender
from repro.core.rules import ScoredRule
from repro.core.sales import Sale

__all__ = ["OfferOption", "what_if"]


@dataclass(frozen=True)
class OfferOption:
    """One candidate offer with its expected-profit breakdown."""

    item_id: str
    promo_code: str
    profit_per_package: float
    acceptance_estimate: float
    expected_profit: float
    supporting_rule: ScoredRule | None

    def describe(self) -> str:
        """One-line rendering for reports and the example scripts."""
        rule = (
            self.supporting_rule.rule.describe()
            if self.supporting_rule is not None
            else "(no matching rule)"
        )
        return (
            f"{self.item_id} @ {self.promo_code}: "
            f"E[profit]={self.expected_profit:.4f} "
            f"(accept≈{self.acceptance_estimate:.2f} × "
            f"${self.profit_per_package:.2f})  via {rule}"
        )


def what_if(
    recommender: MPFRecommender, basket: Sequence[Sale]
) -> list[OfferOption]:
    """Rank every candidate offer for ``basket`` by expected profit.

    For each candidate head, the *supporting rule* is the highest-ranked
    matching rule whose acceptance implies the candidate's (its head is a
    promotion the candidate is at least as favorable as under MOA); its
    confidence is a conservative acceptance estimate.  Candidates with no
    supporting rule get acceptance 0 and sort last.  With unit quantities
    the top row's (item, promotion) coincides with
    :meth:`MPFRecommender.recommend`'s choice whenever expected profits are
    distinct, because MPF maximizes exactly ``confidence × profit`` per
    matched rule; with heterogeneous quantities the rule profit weights
    hits by volume and small deviations are possible.
    """
    moa: MOAHierarchy = recommender.moa
    matching = recommender.matching_rules(basket)
    options: list[OfferOption] = []
    for head in moa.all_candidate_heads():
        promo = moa.catalog.promotion(head.node, head.promo or "")
        supporting = _best_supporting_rule(moa, matching, head)
        acceptance = supporting.stats.confidence if supporting else 0.0
        options.append(
            OfferOption(
                item_id=head.node,
                promo_code=head.promo or "",
                profit_per_package=promo.profit,
                acceptance_estimate=acceptance,
                expected_profit=acceptance * promo.profit,
                supporting_rule=supporting,
            )
        )
    options.sort(
        key=lambda option: (
            -option.expected_profit,
            -option.acceptance_estimate,
            option.item_id,
            option.promo_code,
        )
    )
    return options


def _best_supporting_rule(
    moa: MOAHierarchy, matching: list[ScoredRule], head: GSale
) -> ScoredRule | None:
    """The best matching rule conservatively supporting ``head``.

    A rule recommending ``⟨I, P''⟩`` supports the candidate ``⟨I, P⟩`` when
    ``P ⪯ P''`` (the candidate is at least as favorable): every customer the
    rule would convert also accepts the cheaper-or-equal candidate under
    MOA, so the rule's confidence is a *lower bound* on the candidate's
    acceptance.  Among supporting rules the highest-ranked one is used —
    for the candidate equal to a rule's own head this reproduces the hit
    semantics used in evaluation exactly.
    """
    best: ScoredRule | None = None
    for scored in matching:
        if scored.rule.head.node != head.node:
            continue
        if not moa.generalizes_or_equal(head, scored.rule.head):
            continue
        if best is None or scored.rank_key() < best.rank_key():
            best = scored
    return best
