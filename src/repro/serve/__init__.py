"""Always-on recommendation serving (`repro serve`).

A dependency-free asyncio HTTP/JSON daemon over a persisted
:class:`~repro.core.mpf.MPFRecommender`: micro-batched ``/recommend``,
client-batched ``/recommend_batch``, zero-downtime model hot-swap
(``/admin/reload`` or artifact mtime polling) and sampled
:mod:`repro.obs` telemetry on ``/stats``.  :mod:`repro.serve.pool`
scales the same daemon across cores as a pre-fork worker pool sharing
one port and one loaded model (`repro serve --workers N`).  See
:mod:`repro.serve.daemon` for the full story and
``docs/ARCHITECTURE.md`` for the serving layer diagram.
"""

from repro.serve.daemon import (
    BackgroundDaemon,
    ModelHandle,
    RecommendDaemon,
    ServeConfig,
    trace_sample_period,
)
from repro.serve.pool import (
    BackgroundPool,
    PoolConfig,
    PoolWorkerDaemon,
    ServePool,
)

__all__ = [
    "BackgroundDaemon",
    "BackgroundPool",
    "ModelHandle",
    "PoolConfig",
    "PoolWorkerDaemon",
    "RecommendDaemon",
    "ServeConfig",
    "ServePool",
    "trace_sample_period",
]
