"""The always-on recommendation daemon: batching, hot-swap, telemetry.

This is the first consumer of the compiled engine that serves *traffic*
rather than scripts: a long-lived asyncio process answering JSON basket
requests from a :class:`~repro.core.mpf.MPFRecommender` restored from a
persisted model artifact.  Three mechanisms make it production-shaped
while staying dependency-free:

* **Micro-batching** — concurrent single-basket ``POST /recommend``
  requests are queued and coalesced into one
  :meth:`~repro.core.mpf.MPFRecommender.recommend_many` call (at most
  ``max_batch_size`` baskets, waiting at most ``max_linger_ms`` for
  company), so a storm of small requests is served at batch cost.
  ``POST /recommend_batch`` bypasses the queue: the client already
  batched.

* **Zero-downtime hot-swap** — :meth:`RecommendDaemon.reload` loads a
  new artifact with :func:`~repro.data.model_io.load_model` in a worker
  thread, validates it with a probe recommendation, then atomically
  replaces the serving reference.  Serving code reads the reference once
  per batch, so every response is computed entirely on one model;
  in-flight requests finish on the model they started with and no
  request ever observes a half-loaded one.  Swaps are triggered by
  ``POST /admin/reload`` or by mtime polling of the artifact
  (``poll_interval_s``), which pairs with ``save_model``'s atomic
  temp-file + ``os.replace`` write: the poller can never read a
  truncated document.

* **Per-request trace sampling** — every ``trace_sample_period``-th
  serve call runs under a fresh :class:`repro.obs.Trace`; its counters
  and cache telemetry are merged into a daemon-lifetime trace that
  ``GET /stats`` exposes alongside the raw request counters, so the
  basket-memo hit rate and postings-scan footprint of live traffic are
  one curl away.

* **Multi-model tenancy** — one daemon serves N resident models, each
  its own generation-stamped slot with a private micro-batching queue.
  Requests route by the JSON ``"model"`` field (the first model is the
  default); every slot loads through one shared
  :class:`~repro.data.model_io.WorldCache`, so models mined over the
  same world share a single interned symbol universe.  ``POST /query``
  answers rule-audit queries from each model's shape-split columnar
  store.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.campaign import plan_campaign
from repro.core.mpf import MPFRecommender
from repro.core.recommender import Recommendation
from repro.core.sales import Sale
from repro.data.model_io import WorldCache, load_model
from repro.errors import CatalogError, ProfitMiningError, ValidationError
from repro.obs import trace as obs
from repro.serve.http import (
    HeadCache,
    HttpError,
    Request,
    json_response,
    read_request,
)

__all__ = [
    "ServeConfig",
    "ModelHandle",
    "RecommendDaemon",
    "BackgroundDaemon",
    "trace_sample_period",
]


def trace_sample_period(rate: float) -> int:
    """Convert a sampling *rate* (fraction of serve calls traced) into the
    deterministic every-Nth period :class:`ServeConfig` carries.

    Deterministic striding instead of coin flips keeps the daemon's
    telemetry reproducible under test traffic; ``rate=0`` disables
    sampling, any rate ≥ 1 traces every call.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValidationError(
            f"trace sample rate must be within [0, 1], got {rate}"
        )
    if rate == 0.0:
        return 0
    return max(1, round(1.0 / rate))


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8321
    #: Largest number of queued single-basket requests coalesced into one
    #: ``recommend_many`` call.
    max_batch_size: int = 64
    #: How long (milliseconds) a queued request waits for company before
    #: its batch is flushed anyway; 0 disables lingering (each flush takes
    #: whatever is already queued).
    max_linger_ms: float = 1.0
    #: Trace every Nth serve call into the daemon-lifetime trace exposed
    #: by ``/stats``; 0 disables sampling.  The CLI converts its
    #: ``--trace-sample-rate`` fraction into this period.
    trace_sample_period: int = 0
    #: Seconds between artifact mtime checks for automatic hot-swap;
    #: 0 disables polling (reloads happen only via ``POST /admin/reload``).
    poll_interval_s: float = 0.0
    #: Largest number of single-basket requests allowed to wait in one
    #: model's micro-batch queue.  Beyond it the daemon answers 503 with
    #: a ``Retry-After`` header instead of letting the queue (and every
    #: queued request's latency) grow without bound under overload.
    #: 0 disables the cap.
    max_queue_depth: int = 1024
    #: Bind the listening socket with ``SO_REUSEPORT`` so several
    #: processes (the pre-fork pool of :mod:`repro.serve.pool`) can
    #: share one port and let the kernel balance connections.
    reuse_port: bool = False

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValidationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_linger_ms < 0:
            raise ValidationError(
                f"max_linger_ms must be >= 0, got {self.max_linger_ms}"
            )
        if self.trace_sample_period < 0:
            raise ValidationError(
                f"trace_sample_period must be >= 0, got "
                f"{self.trace_sample_period}"
            )
        if self.poll_interval_s < 0:
            raise ValidationError(
                f"poll_interval_s must be >= 0, got {self.poll_interval_s}"
            )
        if self.max_queue_depth < 0:
            raise ValidationError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )


@dataclass(frozen=True)
class ModelHandle:
    """One immutable serving generation: a recommender plus provenance.

    The daemon swaps whole handles, never mutates one — that immutability
    is what makes the hot-swap safe: a request that captured a handle
    keeps a consistent (recommender, generation, name) triple for its
    entire lifetime regardless of concurrent swaps.
    """

    recommender: MPFRecommender
    path: str
    generation: int
    mtime_ns: int
    loaded_at: float

    def info(self) -> dict[str, Any]:
        """JSON-ready provenance block used by /healthz, /stats, reload."""
        return {
            "model": self.recommender.name,
            "generation": self.generation,
            "path": self.path,
            **self.recommender.rule_index.stats(),
        }


def _load_handle(
    path: str, generation: int, worlds: WorldCache | None = None
) -> ModelHandle:
    """Load + validate one artifact into a ready-to-serve handle.

    Runs in a worker thread during hot-swap.  The probe recommendation
    both validates the artifact end-to-end (exactly one default rule,
    postings consistent) and forces the lazy serving index, so the swap
    installs a warm model and the first post-swap request pays nothing.
    ``worlds`` is the daemon's shared :class:`WorldCache`: every resident
    model describing the same (catalog, hierarchy, MOA) world shares one
    engine and one interned symbol universe.
    """
    mtime_ns = os.stat(path).st_mtime_ns
    recommender = load_model(path, worlds=worlds)
    probe = recommender.recommend([])
    if not probe.item_id:  # pragma: no cover - defensive, load validates
        raise ValidationError(f"{path}: probe recommendation is empty")
    return ModelHandle(
        recommender=recommender,
        path=str(path),
        generation=generation,
        mtime_ns=mtime_ns,
        loaded_at=time.time(),
    )


class _ModelSlot:
    """One resident model: its current handle plus a private batch queue.

    The slot object itself is stable for the daemon's lifetime — routing
    tables and worker tasks point at slots — while ``handle`` is the
    atomically-swapped serving generation inside it.
    """

    __slots__ = ("name", "handle", "queue", "worker")

    def __init__(self, name: str, handle: ModelHandle) -> None:
        self.name = name
        self.handle = handle
        self.queue: asyncio.Queue | None = None
        self.worker: asyncio.Task | None = None


def _normalize_models(
    models: (
        str
        | Path
        | Mapping[str, str]
        | Sequence[str | Path | tuple[str | None, str]]
    ),
) -> list[tuple[str | None, str]]:
    """Normalize every accepted model spec to ``(name | None, path)`` pairs.

    A bare path (the single-model form every v0 caller uses) gets its
    slot name from the loaded recommender; mappings and explicit pairs
    carry their own names.
    """
    if isinstance(models, (str, Path)):
        return [(None, str(models))]
    if isinstance(models, Mapping):
        pairs = [(str(name), str(path)) for name, path in models.items()]
    else:
        pairs = []
        for entry in models:
            if isinstance(entry, (str, Path)):
                pairs.append((None, str(entry)))
            else:
                name, path = entry
                pairs.append(
                    (None if name is None else str(name), str(path))
                )
    if not pairs:
        raise ValidationError("the daemon needs at least one model")
    return pairs


def _parse_sale(entry: Any) -> Sale:
    """One JSON sale object -> :class:`Sale` (400 on malformed input)."""
    if not isinstance(entry, dict):
        raise HttpError(400, f"sale must be an object, got {type(entry).__name__}")
    item = entry.get("item", entry.get("item_id"))
    promo = entry.get("promo", entry.get("promo_code"))
    quantity = entry.get("quantity", 1.0)
    if not isinstance(item, str) or not isinstance(promo, str):
        raise HttpError(400, f"sale needs string 'item' and 'promo': {entry!r}")
    if not isinstance(quantity, (int, float)) or isinstance(quantity, bool):
        raise HttpError(400, f"sale quantity must be a number: {entry!r}")
    try:
        return Sale(item_id=item, promo_code=promo, quantity=float(quantity))
    except ValidationError as exc:
        raise HttpError(400, str(exc)) from exc


def _parse_basket(payload: Any) -> list[Sale]:
    if not isinstance(payload, list):
        raise HttpError(
            400, f"basket must be a list of sales, got {type(payload).__name__}"
        )
    return [_parse_sale(entry) for entry in payload]


def _rec_to_dict(rec: Recommendation) -> dict[str, Any]:
    return {"item": rec.item_id, "promo": rec.promo_code}


def _parse_k(payload: dict[str, Any]) -> int | None:
    """The optional ``"k"`` field: a positive int, or ``None`` when absent.

    ``None`` keeps the v0 single-offer wire format; any present ``k``
    (including 1) switches the response to the ranked ``"offers"`` form.
    """
    k = payload.get("k")
    if k is None:
        return None
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise HttpError(400, f"'k' must be a positive integer, got {k!r}")
    return k


class RecommendDaemon:
    """Always-on HTTP/JSON serving for persisted profit-mining models.

    Endpoints::

        POST /recommend        {"basket": [...], "k"?: n, "model"?: "name"}
        POST /recommend_batch  {"baskets": [[...], ...], "k"?: n, "model"?}
        POST /query            {"head_promo"?, "head_under"?, ..., "model"?}
        POST /plan             {"baskets": [[...], ...], "max_offers"?,
                                "budget"?, "offer_cost"?, "inventory"?,
                                "method"?, "model"?}
        POST /admin/reload     {"path"?: "other.json", "model"?: "name"}
        GET  /healthz
        GET  /stats

    A ``"k"`` field on the recommend endpoints switches the response to
    ranked top-k ``"offers"`` lists (micro-batching still applies: a
    flush groups waiters by ``k`` and serves each group in one batched
    call).  ``POST /plan`` runs the :mod:`repro.campaign` portfolio
    optimizer over a posted basket workload.

    ``models`` accepts a single artifact path (the v0 form), a mapping of
    ``name -> path``, or a sequence mixing bare paths and ``(name, path)``
    pairs.  The first model is the default: requests without a ``"model"``
    field route to it, and the top-level ``/healthz`` / ``/stats`` keys
    keep describing it so single-model clients never notice tenancy.

    The daemon is single-loop: request handling, batching and the flip of
    a hot-swap all run on the event loop, while artifact loading (the
    slow part of a swap) runs in a worker thread.  ``recommend_many`` is
    synchronous, so a batch is computed without yielding — a swap can
    never interleave with the middle of a batch, and each model's private
    queue means a batch is always served entirely by one model.
    """

    def __init__(
        self,
        models: (
            str
            | Path
            | Mapping[str, str]
            | Sequence[str | Path | tuple[str | None, str]]
            | None
        ) = None,
        config: ServeConfig | None = None,
        *,
        handles: Mapping[str, ModelHandle] | None = None,
        worlds: WorldCache | None = None,
    ):
        self.config = config or ServeConfig()
        # Synchronous first load: the daemon either starts serving or
        # fails loudly before binding a port.  All resident models load
        # through one shared WorldCache.  A pre-fork pool passes already
        # loaded ``handles`` instead (see :meth:`from_handles`): the
        # worker then serves the supervisor's model memory through fork
        # instead of loading its own copy.
        self.worlds = worlds if worlds is not None else WorldCache()
        self._slots: dict[str, _ModelSlot] = {}
        if handles is not None:
            if models is not None:
                raise ValidationError(
                    "pass either model paths or preloaded handles, not both"
                )
            for slot_name, handle in handles.items():
                self._slots[str(slot_name)] = _ModelSlot(
                    str(slot_name), handle
                )
            if not self._slots:
                raise ValidationError("the daemon needs at least one model")
        else:
            if models is None:
                raise ValidationError("the daemon needs at least one model")
            for name, path in _normalize_models(models):
                handle = _load_handle(path, generation=1, worlds=self.worlds)
                slot_name = (
                    name if name is not None else handle.recommender.name
                )
                if slot_name in self._slots:
                    raise ValidationError(
                        f"duplicate model name {slot_name!r}; serve each "
                        f"model under a distinct NAME=PATH"
                    )
                self._slots[slot_name] = _ModelSlot(slot_name, handle)
        self._default_name = next(iter(self._slots))
        self._server: asyncio.base_events.Server | None = None
        self._tasks: list[asyncio.Task] = []
        self._connections: set[asyncio.Task] = set()
        # asyncio.Lock binds to a loop on first acquire (>= 3.10), so it
        # is safe to create here even though serving starts later —
        # which lets pool workers reload (catch-up sync) before start().
        self._reload_lock: asyncio.Lock | None = asyncio.Lock()
        self._trace = obs.Trace("serve-daemon")
        self._serve_calls = 0
        self._started_at = time.time()
        self.counters: dict[str, int] = {
            "requests": 0,
            "recommend_requests": 0,
            "batch_requests": 0,
            "topk_requests": 0,
            "plan_requests": 0,
            "query_requests": 0,
            "baskets_served": 0,
            "batches_flushed": 0,
            "rejected_requests": 0,
            "reloads": 0,
            "reload_failures": 0,
            "errors": 0,
        }

    @classmethod
    def from_handles(
        cls,
        handles: Mapping[str, ModelHandle],
        config: ServeConfig | None = None,
        worlds: WorldCache | None = None,
    ) -> "RecommendDaemon":
        """A daemon over already-loaded serving handles.

        This is the pre-fork pool's constructor: the supervisor loads
        (and probes) every artifact exactly once, forks, and each worker
        wraps the inherited read-only model memory in its own daemon —
        N workers cost one model load, not N.
        """
        return cls(None, config, handles=handles, worlds=worlds)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def handle(self) -> ModelHandle:
        """The default model's serving generation (atomic on swap)."""
        return self._slots[self._default_name].handle

    @property
    def model_names(self) -> list[str]:
        """Resident model names in registration order (default first)."""
        return list(self._slots)

    def _slot(self, name: str | None) -> _ModelSlot:
        """Route a request's ``"model"`` field to its slot (404 unknown)."""
        if name is None:
            return self._slots[self._default_name]
        if not isinstance(name, str):
            raise HttpError(400, "'model' must be a string model name")
        slot = self._slots.get(name)
        if slot is None:
            raise HttpError(
                404,
                f"unknown model {name!r}; resident models: "
                f"{', '.join(self._slots)}",
            )
        return slot

    @property
    def port(self) -> int:
        """The bound port (useful when the config asked for port 0)."""
        if self._server is None or not self._server.sockets:
            raise ProfitMiningError("daemon is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self, sock: socket.socket | None = None) -> None:
        """Bind the socket and start the per-model batchers + poller.

        ``sock`` overrides host/port binding with an already-prepared
        (bound, possibly fork-inherited) listening socket — the pool's
        workers hand one in so every worker serves the same port.  With
        ``config.reuse_port`` the daemon binds its own ``SO_REUSEPORT``
        socket instead, letting sibling processes share the port.
        """
        if self._reload_lock is None:  # pragma: no cover - defensive
            self._reload_lock = asyncio.Lock()
        self._started_at = time.time()
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        elif self.config.reuse_port:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.config.host,
                self.config.port,
                reuse_port=True,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
        self._tasks = []
        for slot in self._slots.values():
            slot.queue = asyncio.Queue()
            slot.worker = asyncio.create_task(self._batch_worker(slot))
            self._tasks.append(slot.worker)
        if self.config.poll_interval_s > 0:
            self._tasks.append(asyncio.create_task(self._mtime_poller()))

    async def stop(self) -> None:
        """Stop accepting, drop open connections, cancel the workers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections are parked in read_request; closing
        # the listener does not close them, so cancel their tasks.
        for task in [*self._connections, *self._tasks]:
            task.cancel()
        for task in [*self._connections, *self._tasks]:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._connections.clear()
        self._tasks = []

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point)."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    async def reload(
        self,
        path: str | None = None,
        model: str | None = None,
        generation: int | None = None,
    ) -> ModelHandle:
        """Load ``path`` (default: the slot's current artifact) and swap.

        ``model`` names the slot to swap (default: the default model).
        The load and validation run in a worker thread; only after the
        new handle is fully built does the event loop flip the serving
        reference.  On any failure the old model keeps serving.

        ``generation`` pins the new handle's generation stamp instead of
        incrementing the slot's own — the pool supervisor assigns one
        number per coordinated swap so every worker stamps responses
        with the same generation regardless of its restart history.
        """
        assert self._reload_lock is not None
        async with self._reload_lock:
            slot = self._slot(model)
            target = str(path or slot.handle.path)
            next_generation = (
                generation
                if generation is not None
                else slot.handle.generation + 1
            )
            try:
                handle = await asyncio.to_thread(
                    _load_handle, target, next_generation, self.worlds
                )
            except (OSError, ProfitMiningError):
                self.counters["reload_failures"] += 1
                raise
            slot.handle = handle  # the atomic flip
            self.counters["reloads"] += 1
            return handle

    async def _mtime_poller(self) -> None:
        """Hot-swap any slot whose artifact file changed on disk."""
        while True:
            await asyncio.sleep(self.config.poll_interval_s)
            for slot in self._slots.values():
                handle = slot.handle
                try:
                    mtime_ns = os.stat(handle.path).st_mtime_ns
                except OSError:
                    continue  # mid-replace or gone; retry next tick
                if mtime_ns != handle.mtime_ns:
                    try:
                        await self.reload(model=slot.name)
                    except (OSError, ProfitMiningError):
                        continue  # keep serving the old model

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _serve(
        self,
        handle: ModelHandle,
        baskets: Sequence[Sequence[Sale]],
        k: int | None = None,
    ) -> list[Recommendation] | list[list[Recommendation]]:
        """One batched serve call, sample-traced into the /stats trace.

        ``k=None`` is the v0 single-offer path (``recommend_many``); a
        positive ``k`` serves ranked offer lists through the memoized
        ``recommend_top_k_many`` instead.
        """
        recommender = handle.recommender
        if k is None:
            compute = lambda: recommender.recommend_many(baskets)  # noqa: E731
        else:
            compute = lambda: recommender.recommend_top_k_many(baskets, k)  # noqa: E731
        self._serve_calls += 1
        self.counters["baskets_served"] += len(baskets)
        period = self.config.trace_sample_period
        if period and self._serve_calls % period == 0:
            started = time.perf_counter()
            with obs.tracing("serve.sample") as sample:
                recommendations = compute()
            elapsed = time.perf_counter() - started
            # Keep only counters/caches: merging span trees per sample
            # would grow the daemon-lifetime trace without bound.
            sampled = sample.to_dict()
            sampled.pop("spans", None)
            self._trace.merge(sampled, label="sample")
            self._trace.count("serve.sampled_calls", 1)
            self._trace.count("serve.sampled_seconds", elapsed)
            return recommendations
        return compute()

    async def _batch_worker(self, slot: _ModelSlot) -> None:
        """Coalesce one slot's queued requests into batch serve calls."""
        assert slot.queue is not None
        queue = slot.queue
        config = self.config
        linger_s = config.max_linger_ms / 1000.0
        loop = asyncio.get_running_loop()
        while True:
            basket, k, future = await queue.get()
            batch = [(basket, k, future)]
            # Greedily take whatever is already waiting, then linger for
            # stragglers only while the batch still has room.
            while len(batch) < config.max_batch_size:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if linger_s > 0:
                deadline = loop.time() + linger_s
                while len(batch) < config.max_batch_size:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(queue.get(), timeout)
                        )
                    except asyncio.TimeoutError:
                        break
            handle = slot.handle  # one generation for the whole batch
            self.counters["batches_flushed"] += 1
            # Micro-batches mix plain and top-k requests: group by k so
            # each group is one batched serve call (k=None rides
            # recommend_many, each distinct k rides recommend_top_k_many)
            # while the whole flush still serves one model generation.
            groups: dict[int | None, list[tuple[Sequence[Sale], asyncio.Future]]]
            groups = {}
            for basket, k, waiter in batch:
                groups.setdefault(k, []).append((basket, waiter))
            for group_k, members in groups.items():
                try:
                    results = self._serve(
                        handle, [basket for basket, _ in members], k=group_k
                    )
                except Exception as exc:  # pragma: no cover - defensive
                    for _, waiter in members:
                        if not waiter.done():
                            waiter.set_exception(exc)
                    continue
                for (_, waiter), result in zip(members, results):
                    if not waiter.done():
                        waiter.set_result((handle, result))

    async def _recommend_single(self, request: Request) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict) or "basket" not in payload:
            raise HttpError(400, "body must be {\"basket\": [...]}")
        slot = self._slot(payload.get("model"))
        basket = _parse_basket(payload["basket"])
        k = _parse_k(payload)
        assert slot.queue is not None
        depth = self.config.max_queue_depth
        if depth and slot.queue.qsize() >= depth:
            # Shed load instead of queueing without bound: a saturated
            # micro-batch queue only adds latency to every waiter.
            self.counters["rejected_requests"] += 1
            raise HttpError(
                503,
                f"model {slot.name!r} micro-batch queue is full "
                f"({depth} waiting); retry shortly",
                retry_after=1,
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await slot.queue.put((basket, k, future))
        handle, result = await future
        self.counters["recommend_requests"] += 1
        if k is None:
            body = _rec_to_dict(result)
        else:
            self.counters["topk_requests"] += 1
            body = {"offers": [_rec_to_dict(rec) for rec in result], "k": k}
        body["model"] = handle.recommender.name
        body["generation"] = handle.generation
        return json_response(200, body, request.keep_alive)

    async def _recommend_batch(self, request: Request) -> bytes:
        payload = request.json()
        if not isinstance(payload, dict) or "baskets" not in payload:
            raise HttpError(400, "body must be {\"baskets\": [[...], ...]}")
        raw = payload["baskets"]
        if not isinstance(raw, list):
            raise HttpError(400, "'baskets' must be a list of baskets")
        slot = self._slot(payload.get("model"))
        baskets = [_parse_basket(entry) for entry in raw]
        k = _parse_k(payload)
        handle = slot.handle  # one generation for the whole batch
        results = self._serve(handle, baskets, k=k)
        self.counters["batch_requests"] += 1
        body: dict[str, Any]
        if k is None:
            body = {
                "recommendations": [_rec_to_dict(r) for r in results],
            }
        else:
            self.counters["topk_requests"] += 1
            body = {
                "offers": [
                    [_rec_to_dict(rec) for rec in ranked] for ranked in results
                ],
                "k": k,
            }
        body["model"] = handle.recommender.name
        body["generation"] = handle.generation
        return json_response(200, body, request.keep_alive)

    _QUERY_FIELDS = (
        "head_promo",
        "head_item",
        "head_under",
        "body_mentions",
        "shape",
        "min_conf",
        "min_support",
        "top",
    )

    async def _query(self, request: Request) -> bytes:
        """Rule-audit queries over a resident model's columnar store."""
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object of query filters")
        unknown = set(payload) - set(self._QUERY_FIELDS) - {"model"}
        if unknown:
            raise HttpError(
                400,
                f"unknown query fields {sorted(unknown)}; "
                f"allowed: {list(self._QUERY_FIELDS)}",
            )
        slot = self._slot(payload.get("model"))
        handle = slot.handle
        filters = {
            field: payload[field]
            for field in self._QUERY_FIELDS
            if payload.get(field) is not None
        }
        try:
            hits = handle.recommender.query_rules(**filters)
        except (TypeError, ValidationError) as exc:
            raise HttpError(400, str(exc)) from exc
        self.counters["query_requests"] += 1
        body = {
            "model": handle.recommender.name,
            "generation": handle.generation,
            "n": len(hits),
            "hits": [hit.to_dict() for hit in hits],
        }
        return json_response(200, body, request.keep_alive)

    _PLAN_FIELDS = (
        "baskets",
        "max_offers",
        "budget",
        "offer_cost",
        "inventory",
        "method",
    )

    async def _plan(self, request: Request) -> bytes:
        """Campaign planning over a posted basket workload.

        Body: ``{"baskets": [[...], ...], "max_offers"?, "budget"?,
        "offer_cost"?, "inventory"?: {item: units}, "method"?, "model"?}``.
        Constraint validation happens inside :func:`plan_campaign`; its
        ``ValidationError`` surfaces as a 400 like any bad basket.
        """
        payload = request.json()
        if not isinstance(payload, dict) or "baskets" not in payload:
            raise HttpError(400, "body must be {\"baskets\": [[...], ...]}")
        unknown = set(payload) - set(self._PLAN_FIELDS) - {"model"}
        if unknown:
            raise HttpError(
                400,
                f"unknown plan fields {sorted(unknown)}; "
                f"allowed: {list(self._PLAN_FIELDS)}",
            )
        raw = payload["baskets"]
        if not isinstance(raw, list):
            raise HttpError(400, "'baskets' must be a list of baskets")
        slot = self._slot(payload.get("model"))
        baskets = [_parse_basket(entry) for entry in raw]
        inventory = payload.get("inventory")
        if inventory is not None and not isinstance(inventory, dict):
            raise HttpError(400, "'inventory' must be an object of item: units")
        handle = slot.handle
        try:
            plan = plan_campaign(
                handle.recommender,
                baskets,
                max_offers=payload.get("max_offers"),
                budget=payload.get("budget"),
                offer_cost=payload.get("offer_cost", 1.0),
                inventory=inventory,
                method=payload.get("method", "auto"),
            )
        except TypeError as exc:
            raise HttpError(400, str(exc)) from exc
        self.counters["plan_requests"] += 1
        body = plan.to_dict()
        body["model"] = handle.recommender.name
        body["generation"] = handle.generation
        return json_response(200, body, request.keep_alive)

    async def _admin_reload(self, request: Request) -> bytes:
        payload = request.json()
        path = model = None
        if isinstance(payload, dict):
            path = payload.get("path")
            model = payload.get("model")
        try:
            handle = await self.reload(path, model=model)
        except (OSError, ProfitMiningError) as exc:
            return json_response(
                500, {"swapped": False, "error": str(exc)}, request.keep_alive
            )
        return json_response(
            200, {"swapped": True, **handle.info()}, request.keep_alive
        )

    def _healthz(self, request: Request) -> bytes:
        handle = self.handle
        body = {
            "status": "ok",
            "model": handle.recommender.name,
            "generation": handle.generation,
            "uptime_s": round(time.time() - self._started_at, 3),
            "models": {
                name: slot.handle.generation
                for name, slot in self._slots.items()
            },
        }
        return json_response(200, body, request.keep_alive)

    def _stats(self, request: Request) -> bytes:
        return json_response(200, self.stats_payload(), request.keep_alive)

    def stats_payload(self) -> dict[str, Any]:
        """The ``/stats`` document as a plain dict.

        Exposed separately from the HTTP wrapper so the pool supervisor
        can collect one per worker over the control channel and merge
        them into the aggregated pool view.
        """
        trace_dict = self._trace.to_dict()
        return {
            # Top-level keys keep describing the default model so v0
            # single-model dashboards never notice tenancy.
            **self.handle.info(),
            "uptime_s": round(time.time() - self._started_at, 3),
            "queue_depth": sum(
                slot.queue.qsize()
                for slot in self._slots.values()
                if slot.queue is not None
            ),
            "worlds": len(self.worlds),
            "models": {
                name: slot.handle.info()
                for name, slot in self._slots.items()
            },
            "counters": dict(self.counters),
            "trace": {
                "counters": trace_dict["counters"],
                "caches": trace_dict["caches"],
            },
            "config": {
                "max_batch_size": self.config.max_batch_size,
                "max_linger_ms": self.config.max_linger_ms,
                "trace_sample_period": self.config.trace_sample_period,
                "poll_interval_s": self.config.poll_interval_s,
                "max_queue_depth": self.config.max_queue_depth,
            },
        }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _route(self, request: Request) -> bytes:
        route = (request.method, request.path)
        if route == ("POST", "/recommend"):
            return await self._recommend_single(request)
        if route == ("POST", "/recommend_batch"):
            return await self._recommend_batch(request)
        if route == ("POST", "/query"):
            return await self._query(request)
        if route == ("POST", "/plan"):
            return await self._plan(request)
        if route == ("POST", "/admin/reload"):
            return await self._admin_reload(request)
        if route == ("GET", "/healthz"):
            return self._healthz(request)
        if route == ("GET", "/stats"):
            return self._stats(request)
        known_paths = {
            "/recommend", "/recommend_batch", "/query", "/plan",
            "/admin/reload", "/healthz", "/stats",
        }
        if request.path in known_paths:
            raise HttpError(405, f"{request.method} not allowed on {request.path}")
        raise HttpError(404, f"unknown path {request.path}")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        head_cache = HeadCache()
        try:
            while True:
                try:
                    request = await read_request(reader, head_cache)
                except HttpError as exc:
                    self.counters["errors"] += 1
                    writer.write(
                        json_response(
                            exc.status, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                self.counters["requests"] += 1
                try:
                    response = await self._route(request)
                except HttpError as exc:
                    self.counters["errors"] += 1
                    response = json_response(
                        exc.status,
                        {"error": str(exc)},
                        request.keep_alive,
                        retry_after=exc.retry_after,
                    )
                except (CatalogError, ValidationError) as exc:
                    # Unknown items / promo codes and other bad basket
                    # content are the client's data, not a server fault.
                    self.counters["errors"] += 1
                    response = json_response(
                        400, {"error": str(exc)}, request.keep_alive
                    )
                except ProfitMiningError as exc:
                    self.counters["errors"] += 1
                    response = json_response(
                        500, {"error": str(exc)}, request.keep_alive
                    )
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to answer
        except asyncio.CancelledError:
            # Daemon shutdown cancels parked keep-alive connections; end
            # the task cleanly so the streams layer has nothing to log.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass


class BackgroundDaemon:
    """A daemon running on a dedicated event-loop thread.

    The embedding used by the benchmark gate and the integration tests
    (and handy for notebooks): start, talk to ``http://host:port`` from
    ordinary blocking clients, stop.  Context-manager form::

        with BackgroundDaemon("model.json") as daemon:
            requests_go_to(f"http://127.0.0.1:{daemon.port}")
    """

    def __init__(
        self,
        models: (
            str
            | Path
            | Mapping[str, str]
            | Sequence[str | Path | tuple[str | None, str]]
        ),
        config: ServeConfig | None = None,
    ):
        self.daemon = RecommendDaemon(models, config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.daemon.port

    def __enter__(self) -> "BackgroundDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self, timeout: float = 10.0) -> None:
        """Spin up the loop thread and block until the socket is bound."""
        self._loop = asyncio.new_event_loop()

        def _run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.daemon.start())
            self._started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=_run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):  # pragma: no cover - defensive
            raise ProfitMiningError("daemon failed to start in time")

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the daemon and join the loop thread."""
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.daemon.stop(), self._loop)
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._loop.close()
        self._loop = None
        self._thread = None

    def reload(
        self,
        path: str | None = None,
        model: str | None = None,
        timeout: float = 30.0,
    ) -> ModelHandle:
        """Trigger a hot-swap from the calling thread (blocks until done)."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.daemon.reload(path, model=model), self._loop
        )
        return future.result(timeout)
