"""Minimal HTTP/1.1 plumbing for the recommendation daemon.

The daemon is dependency-free by design (the serving core must run on a
bare python install), so instead of pulling in an ASGI stack this module
implements the narrow slice of HTTP/1.1 the daemon actually speaks:
request-line + header parsing, ``Content-Length`` bodies, keep-alive
connections and JSON responses.  It is deliberately not a general web
server — no chunked encoding, no multipart, no TLS — just enough for
``POST`` ing JSON baskets and ``GET`` ting health/stats over a loopback
or load-balancer hop.

The parser is transport-agnostic: :func:`read_request` works on any
``asyncio.StreamReader`` and :func:`render_response` returns bytes for
any writer, which is what lets the unit tests drive it with in-memory
streams and the daemon reuse it per connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ValidationError

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "render_response",
    "json_response",
]

#: Upper bound on header block and body sizes; a basket batch of a few
#: thousand sales is well under a megabyte, so anything larger is either
#: a mistake or abuse.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ValidationError):
    """A malformed or unserviceable request, carrying its response status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection stays open after the response."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body decoded as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed input so the connection
    handler can answer with the right status before closing.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, "malformed request line") from exc
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise HttpError(400, f"bad Content-Length {length_text!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, f"unacceptable Content-Length {length}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def render_response(
    status: int, body: bytes, content_type: str, keep_alive: bool
) -> bytes:
    """Serialize one response (status line, headers, body) to bytes."""
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def json_response(
    status: int, payload: Any, keep_alive: bool = True
) -> bytes:
    """A JSON response with separators tuned for the serving hot path."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return render_response(status, body, "application/json", keep_alive)
