"""Minimal HTTP/1.1 plumbing for the recommendation daemon.

The daemon is dependency-free by design (the serving core must run on a
bare python install), so instead of pulling in an ASGI stack this module
implements the narrow slice of HTTP/1.1 the daemon actually speaks:
request-line + header parsing, ``Content-Length`` bodies, keep-alive
connections and JSON responses.  It is deliberately not a general web
server — no chunked encoding, no multipart, no TLS — just enough for
``POST`` ing JSON baskets and ``GET`` ting health/stats over a loopback
or load-balancer hop.

The parser is transport-agnostic: :func:`read_request` works on any
``asyncio.StreamReader`` and :func:`render_response` returns bytes for
any writer, which is what lets the unit tests drive it with in-memory
streams and the daemon reuse it per connection.

Two hot-path properties matter at pool scale (every byte of avoidable
work is multiplied by ~45k baskets/s per worker):

* responses share precomputed head fragments — everything up to the
  ``Content-Length`` value is identical for a given (status,
  content-type, connection, retry-after) combination, so
  :func:`render_response` formats it once and reuses the bytes;
* keep-alive clients resend byte-identical request heads (same method,
  path, headers and body length), so the per-connection
  :class:`HeadCache` lets :func:`read_request` skip the decode / split /
  dict-build entirely on a repeat head.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ValidationError

__all__ = [
    "HeadCache",
    "HttpError",
    "Request",
    "read_request",
    "render_response",
    "json_response",
]

#: Upper bound on header block and body sizes; a basket batch of a few
#: thousand sales is well under a megabyte, so anything larger is either
#: a mistake or abuse.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ValidationError):
    """A malformed or unserviceable request, carrying its response status.

    ``retry_after`` (seconds) is set on backpressure rejections so the
    connection handler can emit a ``Retry-After`` header with the 503.
    """

    def __init__(
        self, status: int, message: str, retry_after: int | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


@dataclass
class Request:
    """One parsed HTTP request.

    ``headers`` may be shared with other requests parsed off the same
    keep-alive connection (see :class:`HeadCache`); treat it as
    read-only.
    """

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection stays open after the response."""
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body decoded as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


class HeadCache:
    """Per-connection memo of parsed request heads.

    Keep-alive clients (benchmark drivers, connection-pooling
    load balancers) send byte-identical head blocks for repeated calls —
    same method, path and headers, with only the body changing when the
    ``Content-Length`` matches.  Keying on the raw head bytes lets
    :func:`read_request` reuse the parsed ``(method, path, headers,
    length)`` tuple instead of re-decoding and rebuilding the header
    dict on every request of the connection.

    The cache is intentionally tiny and per-connection: a connection
    speaks a handful of distinct request shapes, and evicting in
    insertion order keeps a scanning client from growing it.
    """

    __slots__ = ("_entries",)

    #: Distinct head blocks remembered per connection.
    MAX_ENTRIES = 16

    def __init__(self) -> None:
        self._entries: dict[bytes, tuple[str, str, dict[str, str], int]] = {}

    def get(self, head: bytes) -> tuple[str, str, dict[str, str], int] | None:
        """The parsed tuple for a previously-seen head block, else None."""
        return self._entries.get(head)

    def put(
        self, head: bytes, parsed: tuple[str, str, dict[str, str], int]
    ) -> None:
        """Remember one parsed head, evicting the oldest entry at capacity."""
        if len(self._entries) >= self.MAX_ENTRIES:
            self._entries.pop(next(iter(self._entries)))
        self._entries[head] = parsed

    def __len__(self) -> int:
        return len(self._entries)


def _parse_head(head: bytes) -> tuple[str, str, dict[str, str], int]:
    """Decode one head block into ``(method, path, headers, body length)``."""
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, "malformed request line") from exc
    headers: dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise HttpError(400, f"bad Content-Length {length_text!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, f"unacceptable Content-Length {length}")
    return method.upper(), path, headers, length


async def read_request(
    reader: asyncio.StreamReader, head_cache: HeadCache | None = None
) -> Request | None:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed input so the connection
    handler can answer with the right status before closing.  An
    oversized header block answers 431; bytes pipelined after the
    request body (a second request sent before this one's response) are
    rejected with 400 rather than silently buffered — the daemon speaks
    strict request/response keep-alive, and surfacing the protocol
    violation beats misparsing the stray bytes as a later request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(431, "request header block too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, "request header block too large")
    parsed = head_cache.get(head) if head_cache is not None else None
    if parsed is None:
        parsed = _parse_head(head)
        if head_cache is not None:
            head_cache.put(head, parsed)
    method, path, headers, length = parsed
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "truncated request body") from exc
    # Anything already buffered past the body was sent before our
    # response — HTTP pipelining, which the daemon does not speak.
    if getattr(reader, "_buffer", None):
        raise HttpError(
            400,
            "pipelined request bytes are not supported; "
            "send one request per response",
        )
    return Request(method=method, path=path, headers=headers, body=body)


#: Precomputed response heads up to the Content-Length *value*, keyed by
#: (status, content type, keep-alive, retry-after).  The daemon emits a
#: handful of combinations, so this is a few hundred bytes that remove
#: three f-string formats from every response.
_HEAD_FRAGMENTS: dict[tuple[int, str, bool, int | None], bytes] = {}
_HEAD_FRAGMENTS_MAX = 256


def render_response(
    status: int,
    body: bytes,
    content_type: str,
    keep_alive: bool,
    retry_after: int | None = None,
) -> bytes:
    """Serialize one response (status line, headers, body) to bytes."""
    key = (status, content_type, keep_alive, retry_after)
    prefix = _HEAD_FRAGMENTS.get(key)
    if prefix is None:
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Connection: {connection}\r\n"
        )
        if retry_after is not None:
            head += f"Retry-After: {retry_after}\r\n"
        prefix = (head + "Content-Length: ").encode("latin-1")
        if len(_HEAD_FRAGMENTS) < _HEAD_FRAGMENTS_MAX:
            _HEAD_FRAGMENTS[key] = prefix
    return prefix + b"%d\r\n\r\n" % len(body) + body


def json_response(
    status: int,
    payload: Any,
    keep_alive: bool = True,
    retry_after: int | None = None,
) -> bytes:
    """A JSON response with separators tuned for the serving hot path."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return render_response(
        status, body, "application/json", keep_alive, retry_after
    )
