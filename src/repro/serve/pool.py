"""Pre-fork multi-worker serving: one port, N processes, one model in memory.

The single-process daemon saturates one core at ~45k baskets/s; store
traffic does not stop at one core.  :class:`ServePool` scales the same
:class:`~repro.serve.daemon.RecommendDaemon` across cores with the
classic pre-fork architecture, specialised for profit-mining's
read-mostly models:

* **Kernel load balancing, no proxy hop.**  Every worker listens on the
  same port.  Preferred mode: each worker binds its own ``SO_REUSEPORT``
  socket and the kernel spreads incoming connections across them (the
  supervisor holds a bound-but-not-listening placeholder on the port so
  it stays reserved across worker restarts).  Fallback mode (platforms
  without ``SO_REUSEPORT``): the supervisor binds one listening socket
  and workers inherit it through fork, accepting from a shared queue.

* **Shared model memory through fork.**  The supervisor loads (and
  probes) every artifact exactly once through one
  :class:`~repro.data.model_io.WorldCache`, then forks.  Workers serve
  the inherited pages copy-on-write: the columnar v3 rule store, the
  interned symbol universe and the compiled postings are never copied,
  so 4 workers cost one model plus per-worker scratch (memos, buffers) —
  not 4 residents.  The gate in ``benchmarks/test_serve_pool.py`` holds
  the pool to ≤2× one worker's resident memory at 4 workers.

* **Supervised robustness.**  The supervisor ``waitpid``-watches every
  worker and re-forks crashed ones with exponential backoff (reset after
  a stable stretch).  A restarted worker is re-synced to the pool's
  current model generations *before* it starts accepting, so it never
  serves a stale generation.

* **Coordinated hot-swap.**  Workers never swap models unilaterally.
  ``POST /admin/reload`` received by any worker is forwarded up its
  control pipe; the supervisor assigns the next generation number and
  broadcasts the reload to every worker, which load the artifact in
  parallel and flip atomically (the single-daemon machinery).  Artifact
  mtime polling likewise runs in the supervisor only.  Divergence
  between workers is bounded by one load's duration, every response
  still carries the generation that computed it, and two coordinated
  swaps can never interleave (the supervisor serialises them).

* **One pool view.**  ``GET /stats`` answered by any worker aggregates
  the whole pool: the supervisor collects each worker's local stats
  snapshot over the control pipes, sums the request counters, merges the
  sampled :mod:`repro.obs` traces with :func:`repro.obs.merge_traces`,
  and attaches per-worker health (pid, restarts, uptime, generations).
  ``GET /stats/local`` keeps the per-worker document reachable.

The control plane is line-delimited JSON over two pipes per worker
(supervisor→worker commands, worker→supervisor events/replies), with the
supervisor running a plain ``selectors`` loop — no asyncio in the parent,
so forking is always safe.  ``profit-mining serve --workers N`` is the
CLI surface; ``--workers 1`` bypasses this module entirely and runs the
unmodified single-process daemon.
"""

from __future__ import annotations

import asyncio
import dataclasses
import gc
import json
import os
import selectors
import signal
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.data.model_io import WorldCache
from repro.errors import ProfitMiningError, ValidationError
from repro.obs.trace import merge_traces
from repro.serve.daemon import (
    ModelHandle,
    RecommendDaemon,
    ServeConfig,
    _load_handle,
    _normalize_models,
)
from repro.serve.http import HttpError, Request, json_response

__all__ = [
    "PoolConfig",
    "PoolWorkerDaemon",
    "ServePool",
    "BackgroundPool",
]

_LISTENER_MODES = ("auto", "reuse_port", "inherit")


@dataclass(frozen=True)
class PoolConfig:
    """Tunables of the supervisor (the data plane lives in ServeConfig)."""

    #: Number of pre-forked serving processes.
    workers: int = 2
    #: How workers share the port: ``reuse_port`` (per-worker
    #: ``SO_REUSEPORT`` sockets, kernel balancing), ``inherit`` (one
    #: supervisor-owned listener inherited through fork) or ``auto``
    #: (reuse_port where the platform supports it, else inherit).
    listener: str = "auto"
    #: First restart delay after a worker death; doubles per rapid death.
    restart_backoff_s: float = 0.1
    #: Ceiling for the doubling backoff.
    restart_backoff_max_s: float = 5.0
    #: A worker that stayed up at least this long resets its backoff.
    restart_reset_s: float = 5.0
    #: How long the supervisor waits on control-channel round trips
    #: (worker ready announcements, reload fan-outs, stats collection).
    control_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValidationError(f"workers must be >= 1, got {self.workers}")
        if self.listener not in _LISTENER_MODES:
            raise ValidationError(
                f"listener must be one of {_LISTENER_MODES}, "
                f"got {self.listener!r}"
            )
        if self.restart_backoff_s <= 0:
            raise ValidationError(
                f"restart_backoff_s must be > 0, got {self.restart_backoff_s}"
            )
        if self.restart_backoff_max_s < self.restart_backoff_s:
            raise ValidationError(
                "restart_backoff_max_s must be >= restart_backoff_s, got "
                f"{self.restart_backoff_max_s} < {self.restart_backoff_s}"
            )
        if self.restart_reset_s < 0:
            raise ValidationError(
                f"restart_reset_s must be >= 0, got {self.restart_reset_s}"
            )
        if self.control_timeout_s <= 0:
            raise ValidationError(
                f"control_timeout_s must be > 0, got {self.control_timeout_s}"
            )


def _encode_message(message: dict[str, Any]) -> bytes:
    """One control-channel frame: compact JSON, newline-delimited."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def _decode_lines(buffer: bytearray) -> list[dict[str, Any]]:
    """Split complete frames off ``buffer`` (partial tail stays put)."""
    messages: list[dict[str, Any]] = []
    while True:
        newline = buffer.find(b"\n")
        if newline < 0:
            return messages
        line = bytes(buffer[:newline])
        del buffer[: newline + 1]
        if line:
            messages.append(json.loads(line))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _WorkerChannel:
    """The worker end of the control pipes, living on the worker's loop.

    Reads supervisor commands off the command pipe, answers them
    (reload / worker_stats / ping) as independent tasks so a slow model
    load never blocks the channel, and lets the daemon's HTTP handlers
    make requests *to* the supervisor (admin-reload fan-out, stats
    aggregation) with correlated replies.
    """

    def __init__(self, daemon: "PoolWorkerDaemon", timeout_s: float) -> None:
        self.daemon = daemon
        self.timeout_s = timeout_s
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self._next_id = 0

    async def connect(self, cmd_read_fd: int, evt_write_fd: int) -> None:
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=2**24)
        protocol = asyncio.StreamReaderProtocol(reader)
        await loop.connect_read_pipe(
            lambda: protocol, os.fdopen(cmd_read_fd, "rb", buffering=0)
        )
        transport, flow = await loop.connect_write_pipe(
            lambda: asyncio.streams.FlowControlMixin(loop),
            os.fdopen(evt_write_fd, "wb", buffering=0),
        )
        self._reader = reader
        self._writer = asyncio.StreamWriter(transport, flow, None, loop)

    async def send(self, message: dict[str, Any]) -> None:
        assert self._writer is not None
        self._writer.write(_encode_message(message))
        await self._writer.drain()

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send a worker-initiated request and await the correlated reply."""
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            await self.send({**message, "id": request_id})
            return await asyncio.wait_for(future, self.timeout_s)
        except asyncio.TimeoutError as exc:
            raise HttpError(
                500, f"pool supervisor did not answer {message.get('op')!r}"
            ) from exc
        finally:
            self._pending.pop(request_id, None)

    async def run(self) -> None:
        """Serve the command pipe until shutdown or supervisor EOF."""
        assert self._reader is not None
        while True:
            line = await self._reader.readline()
            if not line:
                return  # supervisor went away; the worker must exit
            message = json.loads(line)
            op = message.get("op")
            if op == "reply":
                future = self._pending.get(message.get("id"))
                if future is not None and not future.done():
                    future.set_result(message)
            elif op == "shutdown":
                return
            else:
                task = asyncio.create_task(self._handle(message))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    async def _handle(self, message: dict[str, Any]) -> None:
        """Answer one supervisor-initiated command."""
        op = message.get("op")
        request_id = message.get("id")
        try:
            if op == "reload":
                handle = await self.daemon.reload(
                    message.get("path"),
                    model=message.get("model"),
                    generation=message.get("generation"),
                )
                reply = {"ok": True, "info": handle.info()}
            elif op == "worker_stats":
                reply = {"ok": True, "stats": self.daemon.stats_payload()}
            elif op == "ping":
                reply = {"ok": True}
            else:
                reply = {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # answer, never kill the channel
            reply = {"ok": False, "error": str(exc)}
        await self.send({"op": "reply", "id": request_id, **reply})


class PoolWorkerDaemon(RecommendDaemon):
    """A :class:`RecommendDaemon` serving as one worker of a pool.

    The data plane (recommend / batch / query / healthz) is the parent
    class, untouched.  The control plane differs: hot-swap and ``/stats``
    are pool-wide concerns, so both are forwarded to the supervisor over
    the worker's control channel instead of being answered locally.
    """

    worker_index: int = 0
    channel: _WorkerChannel | None = None

    async def _route(self, request: Request) -> bytes:
        route = (request.method, request.path)
        if route == ("POST", "/admin/reload"):
            return await self._pool_admin_reload(request)
        if route == ("GET", "/stats"):
            return await self._pool_stats(request)
        if route == ("GET", "/stats/local"):
            return json_response(
                200,
                {"worker": self.worker_index, **self.stats_payload()},
                request.keep_alive,
            )
        return await super()._route(request)

    async def _pool_admin_reload(self, request: Request) -> bytes:
        payload = request.json()
        path = model = None
        if isinstance(payload, dict):
            path = payload.get("path")
            model = payload.get("model")
        self._slot(model)  # local 400/404 before bothering the pool
        assert self.channel is not None
        reply = await self.channel.request(
            {"op": "admin_reload", "path": path, "model": model}
        )
        if not reply.get("ok"):
            return json_response(
                500,
                {"swapped": False, "error": reply.get("error", "reload failed")},
                request.keep_alive,
            )
        return json_response(
            200, {"swapped": True, **reply["result"]}, request.keep_alive
        )

    async def _pool_stats(self, request: Request) -> bytes:
        assert self.channel is not None
        reply = await self.channel.request({"op": "stats"})
        if not reply.get("ok"):
            raise HttpError(
                500, reply.get("error", "pool stats aggregation failed")
            )
        return json_response(200, reply["result"], request.keep_alive)

    def _healthz(self, request: Request) -> bytes:
        handle = self.handle
        body = {
            "status": "ok",
            "worker": self.worker_index,
            "model": handle.recommender.name,
            "generation": handle.generation,
            "uptime_s": round(time.time() - self._started_at, 3),
            "models": {
                name: slot.handle.generation
                for name, slot in self._slots.items()
            },
        }
        return json_response(200, body, request.keep_alive)


async def _worker_async_main(
    *,
    index: int,
    handles: Mapping[str, ModelHandle],
    worlds: WorldCache,
    config: ServeConfig,
    mode: str,
    host: str,
    port: int,
    listener: socket.socket | None,
    sync: Mapping[str, Mapping[str, Any]],
    cmd_read_fd: int,
    evt_write_fd: int,
    control_timeout_s: float,
) -> None:
    daemon = PoolWorkerDaemon.from_handles(handles, config=config, worlds=worlds)
    daemon.worker_index = index
    channel = _WorkerChannel(daemon, control_timeout_s)
    daemon.channel = channel
    await channel.connect(cmd_read_fd, evt_write_fd)
    # Catch-up sync: a restarted worker forks from the supervisor's
    # original generation-1 image, so replay any coordinated swaps that
    # happened since — *before* accepting the first connection.
    for name, state in sync.items():
        if state["generation"] != daemon._slots[name].handle.generation:
            await daemon.reload(
                state["path"], model=name, generation=state["generation"]
            )
    if mode == "reuse_port":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    else:
        assert listener is not None
        sock = listener
    await daemon.start(sock=sock)
    await channel.send({"op": "ready", "port": daemon.port, "pid": os.getpid()})
    try:
        await channel.run()
    finally:
        await daemon.stop()


def _worker_main(**kwargs: Any) -> None:
    """Child-process entry: run the worker loop, then hard-exit.

    ``os._exit`` (never ``sys.exit``) so the forked child cannot run the
    parent's atexit hooks or flush duplicated stdio buffers.
    """
    exit_code = 1
    try:
        asyncio.run(_worker_async_main(**kwargs))
        exit_code = 0
    except BaseException:  # noqa: BLE001 - last stop before _exit
        import traceback

        os.write(2, traceback.format_exc().encode("utf-8", "replace"))
    finally:
        os._exit(exit_code)


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------

class _WorkerProc:
    """Supervisor-side record of one worker slot across its restarts."""

    __slots__ = (
        "index",
        "pid",
        "cmd_write_fd",
        "evt_read_fd",
        "buffer",
        "alive",
        "ready",
        "port",
        "started_at",
        "restarts",
        "restart_at",
        "backoff_s",
        "next_request_id",
        "replies",
    )

    def __init__(self, index: int, backoff_s: float) -> None:
        self.index = index
        self.pid = 0
        self.cmd_write_fd = -1
        self.evt_read_fd = -1
        self.buffer = bytearray()
        self.alive = False
        self.ready = False
        self.port: int | None = None
        self.started_at = 0.0
        self.restarts = 0
        self.restart_at: float | None = None
        self.backoff_s = backoff_s
        self.next_request_id = 0
        self.replies: dict[int, dict[str, Any]] = {}


class ServePool:
    """Supervisor of a pre-fork worker pool (see the module docstring).

    Lifecycle::

        pool = ServePool("model.json", ServeConfig(port=8321),
                         PoolConfig(workers=4))
        pool.start()        # loads once, forks N ready workers
        pool.run_forever()  # supervise until stopped
        pool.stop()

    The supervisor thread/process runs a synchronous ``selectors`` loop:
    it never holds an asyncio loop, so forking workers (including
    restarts at arbitrary times) is always safe.
    """

    def __init__(
        self,
        models: (
            str
            | Path
            | Mapping[str, str]
            | Sequence[str | Path | tuple[str | None, str]]
        ),
        config: ServeConfig | None = None,
        pool: PoolConfig | None = None,
    ) -> None:
        if not hasattr(os, "fork"):  # pragma: no cover - platform guard
            raise ProfitMiningError(
                "multi-worker serving needs a fork-capable platform; "
                "use --workers 1 here"
            )
        self.config = config or ServeConfig()
        self.pool = pool or PoolConfig()
        self.worlds = WorldCache()
        # Load every artifact exactly once, pre-fork: these handles (and
        # the shared world behind them) become the read-only pages all
        # workers serve from.
        self._handles: dict[str, ModelHandle] = {}
        for name, path in _normalize_models(models):
            handle = _load_handle(path, generation=1, worlds=self.worlds)
            slot_name = name if name is not None else handle.recommender.name
            if slot_name in self._handles:
                raise ValidationError(
                    f"duplicate model name {slot_name!r}; serve each model "
                    f"under a distinct NAME=PATH"
                )
            self._handles[slot_name] = handle
        self._default_name = next(iter(self._handles))
        #: Pool-wide model truth: slot -> current path/generation/mtime.
        self._state: dict[str, dict[str, Any]] = {
            name: {
                "path": handle.path,
                "generation": handle.generation,
                "mtime_ns": handle.mtime_ns,
            }
            for name, handle in self._handles.items()
        }
        self._workers: list[_WorkerProc] = []
        self._selector: selectors.BaseSelector | None = None
        self._placeholder: socket.socket | None = None
        self._listener: socket.socket | None = None
        self._mode = ""
        self._port: int | None = None
        self._started_at = 0.0
        self._restarts_total = 0
        self._swaps_total = 0
        self._stop_requested = False
        self._stopped = False
        #: Worker-initiated requests queued for serialized handling.
        self._inbox: list[tuple[_WorkerProc, dict[str, Any]]] = []
        self._last_poll = 0.0

    # -- properties ----------------------------------------------------
    @property
    def port(self) -> int:
        if self._port is None:
            raise ProfitMiningError("pool is not started")
        return self._port

    @property
    def mode(self) -> str:
        """``reuse_port`` or ``inherit`` once started."""
        if not self._mode:
            raise ProfitMiningError("pool is not started")
        return self._mode

    @property
    def pids(self) -> list[int]:
        """Live worker pids, by worker index."""
        return [worker.pid for worker in self._workers if worker.alive]

    @property
    def model_names(self) -> list[str]:
        return list(self._handles)

    # -- socket strategy ----------------------------------------------
    def _bind(self) -> None:
        mode = self.pool.listener
        if mode == "auto":
            mode = (
                "reuse_port"
                if hasattr(socket, "SO_REUSEPORT")
                else "inherit"
            )
        if mode == "reuse_port" and not hasattr(socket, "SO_REUSEPORT"):
            raise ProfitMiningError(
                "SO_REUSEPORT is not available on this platform; use "
                "listener='inherit'"
            )
        if mode == "reuse_port":
            # Bound but never listening: reserves the port (also across
            # worker restarts) without ever being offered connections —
            # the kernel balances only among *listening* group members.
            placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            placeholder.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            placeholder.bind((self.config.host, self.config.port))
            self._placeholder = placeholder
            self._port = placeholder.getsockname()[1]
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            listener.listen(256)
            self._listener = listener
            self._port = listener.getsockname()[1]
        self._mode = mode

    def _worker_config(self) -> ServeConfig:
        # Workers never poll artifacts (the supervisor owns hot-swap
        # coordination) and never self-bind beyond the socket handed in.
        return dataclasses.replace(
            self.config, poll_interval_s=0.0, reuse_port=False
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Bind, fork every worker, and wait until all announce ready."""
        if self._workers:
            raise ProfitMiningError("pool already started")
        self._bind()
        self._selector = selectors.DefaultSelector()
        self._started_at = time.time()
        self._last_poll = time.time()
        for index in range(self.pool.workers):
            self._workers.append(
                _WorkerProc(index, self.pool.restart_backoff_s)
            )
            self._spawn(index)
        deadline = time.time() + self.pool.control_timeout_s
        while time.time() < deadline:
            if all(w.ready for w in self._workers):
                return
            self._tick(0.05)
        not_ready = [w.index for w in self._workers if not w.ready]
        self.stop()
        raise ProfitMiningError(
            f"pool workers {not_ready} failed to become ready in "
            f"{self.pool.control_timeout_s:.0f}s"
        )

    def _spawn(self, index: int) -> None:
        worker = self._workers[index]
        cmd_read_fd, cmd_write_fd = os.pipe()
        evt_read_fd, evt_write_fd = os.pipe()
        # Snapshot the pool truth pre-fork: the child replays it before
        # accepting, so a worker restarted after swaps starts current.
        sync = {name: dict(state) for name, state in self._state.items()}
        # Move everything allocated so far (the loaded models above all)
        # into the GC's permanent generation: collections in the workers
        # then never traverse those objects, so their copy-on-write pages
        # stay physically shared instead of being dirtied by the first
        # post-fork garbage collection.  This is what keeps N workers at
        # ~one model's footprint.
        gc.collect()
        gc.freeze()
        pid = os.fork()
        if pid == 0:
            # ---- child ----
            try:
                os.close(cmd_write_fd)
                os.close(evt_read_fd)
                self._close_supervisor_fds_in_child()
                _worker_main(
                    index=index,
                    handles=self._handles,
                    worlds=self.worlds,
                    config=self._worker_config(),
                    mode=self._mode,
                    host=self.config.host,
                    port=self._port,
                    listener=self._listener,
                    sync=sync,
                    cmd_read_fd=cmd_read_fd,
                    evt_write_fd=evt_write_fd,
                    control_timeout_s=self.pool.control_timeout_s,
                )
            finally:  # pragma: no cover - _worker_main never returns
                os._exit(1)
        # ---- parent ----
        os.close(cmd_read_fd)
        os.close(evt_write_fd)
        os.set_blocking(evt_read_fd, False)
        worker.pid = pid
        worker.cmd_write_fd = cmd_write_fd
        worker.evt_read_fd = evt_read_fd
        worker.buffer = bytearray()
        worker.alive = True
        worker.ready = False
        worker.port = None
        worker.started_at = time.time()
        worker.restart_at = None
        worker.replies = {}
        assert self._selector is not None
        self._selector.register(
            evt_read_fd, selectors.EVENT_READ, data=worker
        )

    def _close_supervisor_fds_in_child(self) -> None:
        """Drop every parent-side fd the child must not hold open."""
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if self._placeholder is not None:
            self._placeholder.close()
        for other in self._workers:
            for fd in (other.cmd_write_fd, other.evt_read_fd):
                if fd >= 0:
                    try:
                        os.close(fd)
                    except OSError:
                        pass

    def request_stop(self) -> None:
        """Ask the supervising loop to exit (thread-safe flag flip)."""
        self._stop_requested = True

    def run_forever(self, tick_s: float = 0.05) -> None:
        """Supervise until :meth:`request_stop` (or KeyboardInterrupt)."""
        try:
            while not self._stop_requested:
                self._tick(tick_s)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self, grace_s: float = 3.0) -> None:
        """Shut every worker down and release the port."""
        if self._stopped:
            return
        self._stopped = True
        self._stop_requested = True
        for worker in self._workers:
            if worker.alive:
                self._send(worker, {"op": "shutdown"})
        deadline = time.time() + grace_s
        while time.time() < deadline and any(
            w.alive for w in self._workers
        ):
            self._reap(restart=False)
            time.sleep(0.02)
        for sig in (signal.SIGTERM, signal.SIGKILL):
            stragglers = [w for w in self._workers if w.alive]
            if not stragglers:
                break
            for worker in stragglers:
                try:
                    os.kill(worker.pid, sig)
                except ProcessLookupError:
                    pass
            deadline = time.time() + grace_s
            while time.time() < deadline and any(
                w.alive for w in self._workers
            ):
                self._reap(restart=False)
                time.sleep(0.02)
        for worker in self._workers:
            self._release_worker_fds(worker)
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        self._workers = []

    # -- supervision loop ----------------------------------------------
    def _tick(self, timeout_s: float) -> None:
        """One supervisor quantum: drain pipes, reap, restart, poll."""
        assert self._selector is not None
        for key, _ in self._selector.select(timeout_s):
            self._drain(key.data)
        self._reap(restart=True)
        self._dispatch_inbox()
        self._poll_mtimes()

    def _drain(self, worker: _WorkerProc) -> None:
        """Read everything currently in one worker's event pipe."""
        while True:
            try:
                chunk = os.read(worker.evt_read_fd, 65536)
            except BlockingIOError:
                break
            except OSError:
                chunk = b""
            if not chunk:
                break  # EOF — reaping will notice the death
            worker.buffer.extend(chunk)
        for message in _decode_lines(worker.buffer):
            op = message.get("op")
            if op == "ready":
                worker.ready = True
                worker.port = message.get("port")
            elif op == "reply":
                worker.replies[message.get("id")] = message
            else:
                self._inbox.append((worker, message))

    def _reap(self, restart: bool) -> None:
        now = time.time()
        for worker in self._workers:
            if worker.alive:
                try:
                    pid, _status = os.waitpid(worker.pid, os.WNOHANG)
                except ChildProcessError:
                    pid = worker.pid
                if pid:
                    self._on_death(worker, now)
            elif (
                restart
                and not self._stop_requested
                and worker.restart_at is not None
                and now >= worker.restart_at
            ):
                worker.restart_at = None
                worker.restarts += 1
                self._restarts_total += 1
                self._spawn(worker.index)

    def _on_death(self, worker: _WorkerProc, now: float) -> None:
        uptime = now - worker.started_at
        self._release_worker_fds(worker)
        worker.alive = False
        worker.ready = False
        if uptime >= self.pool.restart_reset_s:
            worker.backoff_s = self.pool.restart_backoff_s
        delay = worker.backoff_s
        worker.backoff_s = min(
            worker.backoff_s * 2, self.pool.restart_backoff_max_s
        )
        worker.restart_at = now + delay

    def _release_worker_fds(self, worker: _WorkerProc) -> None:
        if worker.evt_read_fd >= 0:
            if self._selector is not None:
                try:
                    self._selector.unregister(worker.evt_read_fd)
                except (KeyError, ValueError):
                    pass
            try:
                os.close(worker.evt_read_fd)
            except OSError:
                pass
            worker.evt_read_fd = -1
        if worker.cmd_write_fd >= 0:
            try:
                os.close(worker.cmd_write_fd)
            except OSError:
                pass
            worker.cmd_write_fd = -1

    def _send(self, worker: _WorkerProc, message: dict[str, Any]) -> bool:
        if not worker.alive or worker.cmd_write_fd < 0:
            return False
        try:
            os.write(worker.cmd_write_fd, _encode_message(message))
            return True
        except (BrokenPipeError, OSError):
            return False

    # -- coordinated operations ---------------------------------------
    def _broadcast(
        self, message: dict[str, Any]
    ) -> dict[int, dict[str, Any] | None]:
        """Send to every ready worker; collect correlated replies.

        Returns ``{worker index: reply or None}`` (None = died or timed
        out).  Runs its own mini select loop so replies arriving while
        we wait are routed exactly like in :meth:`_tick`; worker-
        initiated requests that land meanwhile queue up in the inbox.
        """
        assert self._selector is not None
        waiting: dict[int, int] = {}
        replies: dict[int, dict[str, Any] | None] = {}
        for worker in self._workers:
            if not (worker.alive and worker.ready):
                continue
            worker.next_request_id += 1
            request_id = worker.next_request_id
            if self._send(worker, {**message, "id": request_id}):
                waiting[worker.index] = request_id
            else:
                replies[worker.index] = None
        deadline = time.time() + self.pool.control_timeout_s
        while waiting and time.time() < deadline:
            for key, _ in self._selector.select(0.02):
                self._drain(key.data)
            self._reap(restart=False)
            for index, request_id in list(waiting.items()):
                worker = self._workers[index]
                if request_id in worker.replies:
                    replies[index] = worker.replies.pop(request_id)
                    del waiting[index]
                elif not worker.alive:
                    replies[index] = None
                    del waiting[index]
        for index in waiting:
            replies[index] = None
        return replies

    def _coordinated_reload(
        self, path: str | None, model: str | None
    ) -> dict[str, Any]:
        """Assign the next generation and fan the swap out to all workers."""
        name = model if model is not None else self._default_name
        state = self._state.get(name)
        if state is None:
            return {
                "ok": False,
                "error": f"unknown model {name!r}; resident models: "
                f"{', '.join(self._state)}",
            }
        target = str(path) if path else state["path"]
        generation = state["generation"] + 1
        replies = self._broadcast(
            {"op": "reload", "model": model, "path": target,
             "generation": generation}
        )
        succeeded = {
            index: reply
            for index, reply in replies.items()
            if reply is not None and reply.get("ok")
        }
        failed = {
            index: (
                reply.get("error", "reload failed")
                if reply is not None
                else "worker died or timed out"
            )
            for index, reply in replies.items()
            if index not in succeeded
        }
        if not succeeded:
            detail = "; ".join(
                f"worker {index}: {error}" for index, error in failed.items()
            ) or "no ready workers"
            return {"ok": False, "error": detail}
        # At least one worker serves the new generation: that is the pool
        # truth now.  Failed workers keep the old model until the next
        # poll/reload (or their restart re-sync) catches them up.
        try:
            mtime_ns = os.stat(target).st_mtime_ns
        except OSError:
            mtime_ns = state["mtime_ns"]
        self._state[name] = {
            "path": target,
            "generation": generation,
            "mtime_ns": mtime_ns,
        }
        self._swaps_total += 1
        representative = next(iter(succeeded.values()))["info"]
        result = {
            **representative,
            "workers": {
                str(index): reply["info"]
                for index, reply in succeeded.items()
            },
        }
        if failed:
            result["failed_workers"] = {
                str(index): error for index, error in failed.items()
            }
            return {
                "ok": False,
                "error": "partial swap: "
                + "; ".join(
                    f"worker {index}: {error}"
                    for index, error in failed.items()
                ),
                "result": result,
            }
        return {"ok": True, "result": result}

    def _aggregate_stats(
        self, requester: _WorkerProc
    ) -> dict[str, Any]:
        """Collect every worker's local stats and merge one pool view."""
        replies = self._broadcast({"op": "worker_stats"})
        snapshots = {
            index: reply["stats"]
            for index, reply in replies.items()
            if reply is not None and reply.get("ok")
        }
        base = snapshots.get(requester.index)
        if base is None:
            return {
                "ok": False,
                "error": "stats collection failed on the requesting worker",
            }
        counters: dict[str, float] = {}
        queue_depth = 0
        for snapshot in snapshots.values():
            for key, value in snapshot["counters"].items():
                counters[key] = counters.get(key, 0) + value
            queue_depth += snapshot.get("queue_depth", 0)
        trace = merge_traces(
            (snapshot["trace"] for snapshot in snapshots.values()),
            name="pool",
        )
        now = time.time()
        workers_detail = []
        for worker in self._workers:
            snapshot = snapshots.get(worker.index)
            detail: dict[str, Any] = {
                "worker": worker.index,
                "pid": worker.pid,
                "alive": worker.alive,
                "ready": worker.ready,
                "restarts": worker.restarts,
                "uptime_s": (
                    round(now - worker.started_at, 3) if worker.alive else 0.0
                ),
            }
            if snapshot is not None:
                detail["requests"] = snapshot["counters"]["requests"]
                detail["baskets_served"] = snapshot["counters"][
                    "baskets_served"
                ]
                detail["generations"] = {
                    model_name: info["generation"]
                    for model_name, info in snapshot["models"].items()
                }
            workers_detail.append(detail)
        result = dict(base)
        result["uptime_s"] = round(now - self._started_at, 3)
        result["queue_depth"] = queue_depth
        result["counters"] = counters
        result["trace"] = {
            "counters": trace.counters,
            "caches": trace.caches,
        }
        result["pool"] = {
            "workers": self.pool.workers,
            "alive": sum(1 for w in self._workers if w.alive),
            "mode": self._mode,
            "restarts": self._restarts_total,
            "swaps": self._swaps_total,
            "generations": {
                model_name: state["generation"]
                for model_name, state in self._state.items()
            },
            "workers_detail": workers_detail,
        }
        return {"ok": True, "result": result}

    def _dispatch_inbox(self) -> None:
        """Serve queued worker-initiated requests, strictly serialized.

        Serialization is the coherence guarantee: two concurrent admin
        reloads can never interleave their generation assignments.
        """
        while self._inbox:
            worker, message = self._inbox.pop(0)
            op = message.get("op")
            request_id = message.get("id")
            if op == "admin_reload":
                outcome = self._coordinated_reload(
                    message.get("path"), message.get("model")
                )
            elif op == "stats":
                outcome = self._aggregate_stats(worker)
            else:
                outcome = {"ok": False, "error": f"unknown op {op!r}"}
            self._send(worker, {"op": "reply", "id": request_id, **outcome})

    def _poll_mtimes(self) -> None:
        """Supervisor-side artifact watching (replaces worker pollers)."""
        interval = self.config.poll_interval_s
        if interval <= 0:
            return
        now = time.time()
        if now - self._last_poll < interval:
            return
        self._last_poll = now
        for name, state in self._state.items():
            try:
                mtime_ns = os.stat(state["path"]).st_mtime_ns
            except OSError:
                continue  # mid-replace or gone; retry next tick
            if mtime_ns != state["mtime_ns"]:
                self._coordinated_reload(None, name)


class BackgroundPool:
    """A :class:`ServePool` supervised from a dedicated thread.

    The embedding used by the pool benchmark and the integration tests::

        with BackgroundPool("model.json", ServeConfig(port=0),
                            PoolConfig(workers=4)) as pool:
            requests_go_to(f"http://127.0.0.1:{pool.port}")

    Model loading and forking happen on the supervisor thread so the
    caller's thread never blocks on a fork and every supervisor-side fd
    is owned by one thread.
    """

    def __init__(
        self,
        models: (
            str
            | Path
            | Mapping[str, str]
            | Sequence[str | Path | tuple[str | None, str]]
        ),
        config: ServeConfig | None = None,
        pool: PoolConfig | None = None,
    ) -> None:
        self.pool = ServePool(models, config, pool)
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.pool.port

    @property
    def pids(self) -> list[int]:
        return self.pool.pids

    def __enter__(self) -> "BackgroundPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self, timeout: float = 120.0) -> None:
        """Start the supervisor thread; block until every worker is ready."""

        def _run() -> None:
            try:
                self.pool.start()
            except BaseException as exc:  # surface on the caller thread
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            self.pool.run_forever()

        self._thread = threading.Thread(
            target=_run, name="repro-serve-pool", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):  # pragma: no cover - defensive
            raise ProfitMiningError("pool failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error

    def stop(self, timeout: float = 30.0) -> None:
        """Shut the pool down and join the supervisor thread."""
        if self._thread is None:
            return
        self.pool.request_stop()
        self._thread.join(timeout)
        self._thread = None
