"""Shared fixtures: a small hand-built retail world and tiny datasets."""

from __future__ import annotations

import pytest

from repro.core import (
    ConceptHierarchy,
    Item,
    ItemCatalog,
    MOAHierarchy,
    PromotionCode,
    Sale,
    Transaction,
    TransactionDB,
)
from repro.data import build_dataset, dataset_i_config, dataset_ii_config


def promo(code: str, price: float, cost: float, packing: int = 1) -> PromotionCode:
    """Shorthand promotion-code constructor used across the test suite."""
    return PromotionCode(code=code, price=price, cost=cost, packing=packing)


@pytest.fixture
def milk_codes() -> tuple[PromotionCode, ...]:
    """The paper's 2%-Milk example codes (Example 1)."""
    return (
        promo("4pack-hi", 3.2, 2.0, packing=4),
        promo("4pack-lo", 3.0, 1.8, packing=4),
        promo("pack-hi", 1.2, 0.5),
        promo("pack-lo", 1.0, 0.5),
    )


@pytest.fixture
def small_catalog() -> ItemCatalog:
    """Two non-target items, two target items, multi-price ladders."""
    return ItemCatalog.from_items(
        [
            Item("Perfume", (promo("P1", 10.0, 6.0),)),
            Item("Bread", (promo("P1", 2.0, 1.0), promo("P2", 2.4, 1.0))),
            Item(
                "Sunchip",
                (
                    promo("L", 3.8, 2.0),
                    promo("M", 4.5, 2.0),
                    promo("H", 5.0, 2.0),
                ),
                is_target=True,
            ),
            Item("Diamond", (promo("D", 100.0, 60.0),), is_target=True),
        ]
    )


@pytest.fixture
def small_hierarchy(small_catalog: ItemCatalog) -> ConceptHierarchy:
    return ConceptHierarchy.for_catalog(
        small_catalog, {"Grocery": ["Bread"], "Beauty": ["Perfume"]}
    )


@pytest.fixture
def small_moa(
    small_catalog: ItemCatalog, small_hierarchy: ConceptHierarchy
) -> MOAHierarchy:
    return MOAHierarchy(catalog=small_catalog, hierarchy=small_hierarchy)


@pytest.fixture
def small_db(small_catalog: ItemCatalog) -> TransactionDB:
    """60 transactions with clear structure: perfume buyers pay more."""
    transactions = []
    tid = 0
    for i in range(30):
        transactions.append(
            Transaction(
                tid,
                (Sale("Perfume", "P1"),),
                Sale("Sunchip", "H" if i % 2 else "M"),
            )
        )
        tid += 1
    for _ in range(29):
        transactions.append(
            Transaction(tid, (Sale("Bread", "P1"),), Sale("Sunchip", "L"))
        )
        tid += 1
    transactions.append(
        Transaction(
            tid,
            (Sale("Perfume", "P1"), Sale("Bread", "P2")),
            Sale("Diamond", "D"),
        )
    )
    return TransactionDB(catalog=small_catalog, transactions=transactions)


@pytest.fixture(scope="session")
def tiny_dataset_i():
    """Dataset I at smoke-test scale (shared across the whole session)."""
    return build_dataset(
        dataset_i_config(n_transactions=600, n_items=80, n_patterns=24, seed=3)
    )


@pytest.fixture(scope="session")
def tiny_dataset_ii():
    """Dataset II at smoke-test scale (shared across the whole session)."""
    return build_dataset(
        dataset_ii_config(n_transactions=600, n_items=80, n_patterns=24, seed=3)
    )
