"""Brute-force verification of the cut-optimal theorems (Section 4.2).

Theorem 1: a covering tree has exactly one optimal cut (maximum projected
profit; smallest among maxima).  Theorem 2: the bottom-up traversal finds
it.  These tests enumerate *every* cut of small covering trees and check
the implementation's result against the exhaustive optimum.
"""

from __future__ import annotations

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covering import CoveringNode, CoveringTree, build_covering_tree
from repro.core.mining import MinerConfig, mine_rules
from repro.core.pessimistic import DEFAULT_CF
from repro.core.profit import SavingMOA
from repro.core.pruning import PruneConfig, cut_optimal_prune, projected_profit

from tests.property.test_mining_properties import mining_problems


def all_cuts(node: CoveringNode) -> list[list[CoveringNode]]:
    """Every cut of the subtree at ``node`` (Definition 9)."""
    cuts: list[list[CoveringNode]] = [[node]]
    if node.children:
        per_child = [all_cuts(child) for child in node.children]
        for combo in product(*per_child):
            cuts.append([n for child_cut in combo for n in child_cut])
    return cuts


def cut_profit(tree: CoveringTree, cut: list[CoveringNode], cf: float) -> float:
    """Projected profit of ``CT_C``: cut nodes as leaves, ancestors as-is."""
    index = tree.index
    in_cut = {id(n) for n in cut}

    def head_id(node: CoveringNode) -> int:
        return index.gsale_id(node.scored.rule.head)

    total = 0.0
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if id(node) in in_cut:
            merged = 0
            for member in node.subtree():
                merged |= member.cover_mask
            total += projected_profit(head_id(node), merged, index, cf)
        else:
            total += projected_profit(head_id(node), node.cover_mask, index, cf)
            stack.extend(node.children)
    return total


def assert_bottom_up_matches_brute_force(problem) -> None:
    db, moa, config = problem
    result = mine_rules(db, moa, SavingMOA(), config)
    tree = build_covering_tree(result)
    if len(tree) > 14:
        pytest.skip("tree too large for exhaustive cut enumeration")
    cuts = all_cuts(tree.root)
    profits = [cut_profit(tree, cut, DEFAULT_CF) for cut in cuts]
    best_profit = max(profits)
    best_sizes = [
        len(cut)
        for cut, profit in zip(cuts, profits)
        if profit >= best_profit - 1e-9
    ]

    cut_optimal_prune(tree, PruneConfig())
    achieved = [node for node in tree.root.subtree() if not node.children]
    achieved_profit = cut_profit(tree, achieved, DEFAULT_CF)

    assert achieved_profit == pytest.approx(best_profit)
    assert len(achieved) == min(best_sizes)


class TestCutOptimality:
    @given(mining_problems())
    @settings(max_examples=30, deadline=None)
    def test_bottom_up_finds_the_optimal_cut(self, problem):
        assert_bottom_up_matches_brute_force(problem)

    def test_on_the_small_fixture(self, small_db, small_moa):
        assert_bottom_up_matches_brute_force(
            (small_db, small_moa, MinerConfig(min_support=0.05, max_body_size=2))
        )

    @given(mining_problems())
    @settings(max_examples=10, deadline=None)
    def test_pruning_is_deterministic(self, problem):
        db, moa, config = problem

        def run() -> list[str]:
            result = mine_rules(db, moa, SavingMOA(), config)
            tree = build_covering_tree(result)
            report = cut_optimal_prune(tree, PruneConfig())
            return [s.rule.describe() for s in report.kept_rules]

        assert run() == run()
