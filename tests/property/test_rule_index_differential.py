"""Differential properties: the indexed matcher vs the naive linear scan.

The compiled :class:`~repro.core.rule_index.RuleMatchIndex` is only an
optimization — Definition 6's recommendation rule must be *identical* to
the reference linear scan on every basket, down to object identity of the
selected :class:`~repro.core.rules.ScoredRule`.  These properties drive
both paths over random mining problems and random baskets.

A second group stresses the miner's (body, head) separation guard: a
generalization engine that leaks target promo-forms into basket
extensions must never make :func:`~repro.core.mining.mine_rules` raise.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generalized import GKind, GSale
from repro.core.mining import MinerConfig, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.mpf import MPFRecommender
from repro.core.profit import SavingMOA
from repro.core.sales import Sale

from tests.property.test_mining_properties import mining_problems


def _random_basket(draw, catalog):
    """A basket of 0–4 non-target sales, possibly with repeated items."""
    nontargets = catalog.nontarget_items
    k = draw(st.integers(0, 4))
    return [
        Sale(
            item.item_id,
            draw(st.sampled_from(item.promotions)).code,
        )
        for item in (
            draw(st.sampled_from(nontargets)) for _ in range(k)
        )
    ]


class TestIndexNaiveParity:
    @given(mining_problems(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_recommendation_rule_identical(self, problem, data):
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        recommender = MPFRecommender(result.all_rules, moa)
        baskets = [t.nontarget_sales for t in db]
        baskets += [
            _random_basket(data.draw, db.catalog) for _ in range(3)
        ]
        for basket in baskets:
            indexed = recommender.recommendation_rule(basket)
            naive = recommender.recommendation_rule(basket, naive=True)
            assert indexed is naive

    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_matching_rules_identical(self, problem):
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        recommender = MPFRecommender(result.all_rules, moa)
        for t in db:
            basket = t.nontarget_sales
            indexed = recommender.matching_rules(basket)
            naive = recommender.matching_rules(basket, naive=True)
            assert len(indexed) == len(naive)
            assert all(a is b for a, b in zip(indexed, naive))

    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_recommend_many_matches_naive_scan(self, problem):
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        recommender = MPFRecommender(result.all_rules, moa)
        baskets = [t.nontarget_sales for t in db]
        batch = recommender.recommend_many(baskets)
        for basket, rec in zip(baskets, batch):
            naive = recommender.recommendation_rule(basket, naive=True)
            assert rec.rule is naive
            assert rec.item_id == naive.rule.head.node
            assert rec.promo_code == (naive.rule.head.promo or "")


class _LeakyMOA(MOAHierarchy):
    """Lifts every candidate head into every basket's generalizations."""

    def generalizations_of_sale(self, sale):
        """The real generalizations plus every target promo-form."""
        return super().generalizations_of_sale(sale) | frozenset(
            self.all_candidate_heads()
        )


class TestLeakedTargetFormsNeverCrashMining:
    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_mining_never_raises(self, problem):
        db, moa, config = problem
        leaky = _LeakyMOA(db.catalog, moa.hierarchy, use_moa=moa.use_moa)
        result = mine_rules(db, leaky, SavingMOA(), config)
        # Every emitted rule still honors the body/head separation.
        for scored in result.all_rules:
            for g in scored.rule.body:
                assert not (
                    g.kind is GKind.PROMO and g.node == scored.rule.head.node
                )

    @given(mining_problems())
    @settings(max_examples=15, deadline=None)
    def test_index_parity_survives_leaky_moa(self, problem):
        db, moa, config = problem
        leaky = _LeakyMOA(db.catalog, moa.hierarchy, use_moa=moa.use_moa)
        result = mine_rules(db, leaky, SavingMOA(), config)
        recommender = MPFRecommender(result.all_rules, leaky)
        for t in db:
            basket = t.nontarget_sales
            assert recommender.recommendation_rule(
                basket
            ) is recommender.recommendation_rule(basket, naive=True)
