"""Property tests: generated datasets are always valid and well-shaped."""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import (
    build_dataset,
    dataset_i_config,
    dataset_ii_config,
)
from repro.data.pricing import price_code_name


@st.composite
def dataset_configs(draw):
    which = draw(st.sampled_from([dataset_i_config, dataset_ii_config]))
    config = which(
        n_transactions=draw(st.integers(20, 120)),
        n_items=draw(st.sampled_from([40, 60, 80])),
        signal_strength=draw(st.floats(0.0, 1.0)),
        seed=draw(st.integers(0, 10_000)),
    )
    return dataclasses.replace(config)


class TestGeneratedDatasets:
    @given(dataset_configs())
    @settings(max_examples=25, deadline=None)
    def test_always_valid_and_complete(self, config):
        dataset = build_dataset(config)
        db = dataset.db
        assert len(db) == config.n_transactions
        dataset.hierarchy.validate_against_catalog(db.catalog)
        target_ids = set(db.catalog.target_ids())
        for t in db:
            assert t.target_sale.item_id in target_ids
            assert t.nontarget_sales
            # every promotion code resolves (TransactionDB validated it,
            # but assert the price-step naming convention holds too)
            step = int(t.target_sale.promo_code.removeprefix("P"))
            assert 1 <= step <= config.pricing.m

    @given(dataset_configs())
    @settings(max_examples=15, deadline=None)
    def test_profit_histogram_consistent(self, config):
        dataset = build_dataset(config)
        histogram = dataset.target_profit_distribution()
        assert sum(histogram.values()) == len(dataset.db)
        assert all(profit > 0 for profit in histogram)

    @given(dataset_configs())
    @settings(max_examples=10, deadline=None)
    def test_stratified_windows_cover_every_target(self, config):
        """With enough windows, every target item appears as a preferred
        pair somewhere (stratification guarantees ≥ proportional shares)."""
        dataset = build_dataset(
            dataclasses.replace(config, n_transactions=300, signal_strength=1.0)
        )
        observed = {t.target_sale.item_id for t in dataset.db}
        weights = {spec.item_id: spec.weight for spec in config.targets}
        total = sum(weights.values())
        n_windows = config.quest.n_windows
        for item_id, weight in weights.items():
            if round(weight / total * n_windows) >= 1 and weight / total > 0.1:
                assert item_id in observed

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_price_code_convention(self, seed):
        config = dataset_i_config(n_transactions=30, n_items=40, seed=seed)
        dataset = build_dataset(config)
        for t in dataset.db:
            for sale in t.nontarget_sales:
                assert sale.promo_code in {
                    price_code_name(j) for j in range(1, config.pricing.m + 1)
                }
