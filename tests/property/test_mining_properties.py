"""Property tests: miner invariants over random transaction databases."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covering import build_covering_tree
from repro.core.hierarchy import ConceptHierarchy
from repro.core.items import Item, ItemCatalog
from repro.core.mining import MinerConfig, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.profit import SavingMOA
from repro.core.promotion import PromotionCode
from repro.core.pruning import PruneConfig, cut_optimal_prune
from repro.core.sales import Sale, Transaction, TransactionDB


@st.composite
def mining_problems(draw):
    """Small random world: catalog, hierarchy, transactions, config."""
    n_nontargets = draw(st.integers(2, 5))
    items = []
    for i in range(n_nontargets):
        promos = tuple(
            PromotionCode(code=f"P{j}", price=1.0 + 0.5 * j, cost=0.5)
            for j in range(draw(st.integers(1, 3)))
        )
        items.append(Item(f"N{i}", promos))
    n_targets = draw(st.integers(1, 2))
    for i in range(n_targets):
        promos = tuple(
            PromotionCode(code=f"P{j}", price=2.0 + j, cost=1.0)
            for j in range(draw(st.integers(1, 3)))
        )
        items.append(Item(f"T{i}", promos, is_target=True))
    catalog = ItemCatalog.from_items(items)
    hierarchy = ConceptHierarchy.for_catalog(
        catalog, {"G": [f"N{i}" for i in range(min(2, n_nontargets))]}
    )

    nontargets = catalog.nontarget_items
    targets = catalog.target_items
    transactions = []
    for tid in range(draw(st.integers(5, 25))):
        k = draw(st.integers(1, len(nontargets)))
        picked = draw(
            st.permutations(range(len(nontargets))).map(lambda p: p[:k])
        )
        basket = tuple(
            Sale(
                nontargets[idx].item_id,
                draw(st.sampled_from(nontargets[idx].promotions)).code,
            )
            for idx in picked
        )
        target_item = draw(st.sampled_from(targets))
        target = Sale(
            target_item.item_id,
            draw(st.sampled_from(target_item.promotions)).code,
        )
        transactions.append(Transaction(tid, basket, target))
    db = TransactionDB(catalog, transactions)
    moa = MOAHierarchy(catalog, hierarchy, use_moa=draw(st.booleans()))
    config = MinerConfig(
        min_support=draw(st.sampled_from([0.05, 0.1, 0.3])),
        max_body_size=draw(st.integers(1, 3)),
    )
    return db, moa, config


class TestMinerInvariants:
    @given(mining_problems())
    @settings(max_examples=40, deadline=None)
    def test_rule_worth_invariants(self, problem):
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        minsup_count = max(1, math.ceil(config.min_support * len(db)))
        for scored in result.scored_rules:
            stats = scored.stats
            assert stats.n_hits >= minsup_count
            assert stats.n_hits <= stats.n_matched <= len(db)
            assert 0 <= stats.confidence <= 1
            assert stats.rule_profit >= 0
            assert scored.rule.body_size <= config.max_body_size
            assert moa.is_ancestor_free(scored.rule.body)

    @given(mining_problems())
    @settings(max_examples=30, deadline=None)
    def test_full_pipeline_invariants(self, problem):
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        tree = build_covering_tree(result)

        # Coverage partitions the database both before and after pruning.
        def assert_partition():
            union = 0
            for node in tree.nodes():
                assert union & node.cover_mask == 0
                union |= node.cover_mask
            assert union == (1 << len(db)) - 1

        assert_partition()
        report = cut_optimal_prune(tree, PruneConfig())
        assert_partition()
        assert report.tree_profit_after >= report.tree_profit_before - 1e-9
        assert any(s.rule.is_default for s in report.kept_rules)

    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_every_basket_gets_a_recommendation(self, problem):
        from repro.core.mpf import MPFRecommender

        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        recommender = MPFRecommender(result.all_rules, moa)
        for t in db:
            rec = recommender.recommend(t.nontarget_sales)
            assert db.catalog.get(rec.item_id).is_target
            assert db.catalog.get(rec.item_id).has_promotion(rec.promo_code)
