"""Differential properties: out-of-core SON backend vs dense and big-int.

``MinerConfig(backend="ooc")`` is purely an out-of-core execution
strategy — the SON two-pass mine over the partitioned store must produce
a :class:`~repro.core.mining.MiningResult` identical to the in-RAM
backends down to every rule, stat float, tid-mask and the default rule.
These properties drive it over random mining problems and over the
shapes where partitioning can diverge: partition counts 1/2/7,
partitions smaller than one 64-bit chunk, databases whose size sits on a
chunk seam (n ≡ 0/±1 mod 64), partitions with zero locally frequent
bodies, the LeakyMOA promo-leak fixture, thread-parallel pass 1, and the
incremental refresh path versus a from-scratch re-mine.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine.kernel import HAVE_NUMPY
from repro.core.engine.store import ChunkedTransactionStore
from repro.core.mining import MinerConfig, filter_mining_result, mine_rules
from repro.core.partition import mine_store, refresh_store
from repro.core.profit import SavingMOA
from repro.core.sales import Sale, Transaction, TransactionDB

from tests.property.test_kernel_differential import _replicated_db, _signature
from tests.property.test_mining_properties import mining_problems
from tests.unit.test_mining import LeakyMOA

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the out-of-core backend needs numpy"
)


def _mine_ooc(db, moa, config, partition_size=16, n_jobs=None):
    return mine_rules(
        db,
        moa,
        SavingMOA(),
        replace(
            config,
            backend="ooc",
            partition_size=partition_size,
            n_jobs=n_jobs,
        ),
    )


def _mine_ram(db, moa, config, backend):
    return mine_rules(db, moa, SavingMOA(), replace(config, backend=backend))


class TestRandomProblems:
    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_ooc_identical_to_both_ram_backends(self, problem):
        db, moa, config = problem
        ooc = _signature(_mine_ooc(db, moa, config))
        assert ooc == _signature(_mine_ram(db, moa, config, "dense"))
        assert ooc == _signature(_mine_ram(db, moa, config, "bigint"))

    @given(mining_problems(), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_parallel_pass1_identical(self, problem, n_jobs):
        db, moa, config = problem
        threaded = _mine_ooc(db, moa, config, n_jobs=n_jobs)
        sequential = _mine_ooc(db, moa, config, n_jobs=1)
        assert _signature(threaded) == _signature(sequential)

    @given(mining_problems())
    @settings(max_examples=10, deadline=None)
    def test_filter_of_ooc_equals_filter_of_dense(self, problem):
        db, moa, config = problem
        low = replace(config, min_support=0.05)
        ooc = _mine_ooc(db, moa, low)
        dense = _mine_ram(db, moa, low, "dense")
        for min_support in (0.1, 0.3):
            assert _signature(
                filter_mining_result(ooc, min_support)
            ) == _signature(filter_mining_result(dense, min_support))


class TestPartitionShapes:
    """Partition counts and sizes where SON bookkeeping could diverge."""

    @pytest.mark.parametrize("n_partitions", [1, 2, 7])
    def test_partition_counts(self, small_db, small_moa, n_partitions):
        db = _replicated_db(small_db, 70)
        config = MinerConfig(min_support=0.05, max_body_size=2)
        size = -(-len(db) // n_partitions)
        ooc = _mine_ooc(db, small_moa, config, partition_size=size)
        assert _signature(ooc) == _signature(
            _mine_ram(db, small_moa, config, "dense")
        )

    @pytest.mark.parametrize("partition_size", [63, 64, 65])
    def test_chunk_seam_partitions(self, small_db, small_moa, partition_size):
        db = _replicated_db(small_db, 130)
        config = MinerConfig(min_support=0.05, max_body_size=2)
        ooc = _mine_ooc(db, small_moa, config, partition_size=partition_size)
        assert _signature(ooc) == _signature(
            _mine_ram(db, small_moa, config, "dense")
        )

    def test_single_transaction_partitions(self, small_db, small_moa):
        # Partitions far smaller than one 64-bit chunk: every local
        # threshold degenerates to 1 and the union is the full level-1 set.
        db = _replicated_db(small_db, 40)
        config = MinerConfig(min_support=0.1, max_body_size=2)
        ooc = _mine_ooc(db, small_moa, config, partition_size=1)
        assert _signature(ooc) == _signature(
            _mine_ram(db, small_moa, config, "dense")
        )

    def test_zero_locally_frequent_partition(self, small_catalog, small_moa):
        # The final partition holds only a Perfume outlier whose support
        # can never reach the local threshold: pass 1 contributes nothing
        # from it, pass 2 must still count it into every global support.
        transactions = [
            Transaction(tid, (Sale("Bread", "P1"),), Sale("Sunchip", "H"))
            for tid in range(32)
        ]
        transactions += [
            Transaction(32 + i, (Sale("Perfume", "P1"),), Sale("Sunchip", "L"))
            for i in range(2)
        ]
        db = TransactionDB(catalog=small_catalog, transactions=transactions)
        config = MinerConfig(min_support=0.5, max_body_size=2)
        ooc = _mine_ooc(db, small_moa, config, partition_size=32)
        dense = _mine_ram(db, small_moa, config, "dense")
        assert _signature(ooc) == _signature(dense)
        assert ooc.all_rules


class TestLeakyMOA:
    def test_promo_leak_identical(self, small_db, small_catalog, small_hierarchy):
        leaky = LeakyMOA(small_catalog, small_hierarchy, use_moa=True)
        config = MinerConfig(min_support=0.05, max_body_size=2)
        ooc = _mine_ooc(small_db, leaky, config)
        assert _signature(ooc) == _signature(
            _mine_ram(small_db, leaky, config, "dense")
        )


class TestRefreshEquivalence:
    @given(mining_problems(), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_refresh_equals_remine(self, tmp_path_factory, problem, splits):
        # Feed the database in 1+splits increments through refresh_store;
        # the final result must equal mining the whole database at once.
        db, moa, config = problem
        transactions = list(db)
        if len(transactions) < splits + 1:
            return
        config = replace(config, backend="ooc", partition_size=16)
        step = len(transactions) // (splits + 1)
        root = tmp_path_factory.mktemp("grow")
        store = ChunkedTransactionStore.build(
            root, transactions[:step], moa, SavingMOA(), partition_size=16
        )
        mine_store(store, config)
        result = None
        for k in range(1, splits + 1):
            chunk = (
                transactions[k * step :]
                if k == splits
                else transactions[k * step : (k + 1) * step]
            )
            result = refresh_store(store, chunk, config)
        full = _mine_ram(db, moa, config, "dense")
        assert _signature(result) == _signature(full)
