"""Property tests: favorability is a strict partial order (Section 2)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.promotion import (
    PromotionCode,
    favorability_covers,
    is_at_least_as_favorable,
    is_more_favorable,
    maximal_codes,
    sort_by_favorability,
)

prices = st.floats(min_value=0.01, max_value=1000, allow_nan=False)
costs = st.floats(min_value=0.0, max_value=1000, allow_nan=False)
packings = st.integers(min_value=1, max_value=12)


@st.composite
def codes(draw, code_id: str | None = None) -> PromotionCode:
    return PromotionCode(
        code=code_id or draw(st.text(min_size=1, max_size=4)),
        price=draw(prices),
        cost=draw(costs),
        packing=draw(packings),
    )


@st.composite
def code_lists(draw, max_size: int = 6) -> list[PromotionCode]:
    n = draw(st.integers(min_value=1, max_value=max_size))
    return [draw(codes(code_id=f"c{i}")) for i in range(n)]


class TestStrictPartialOrder:
    @given(codes())
    def test_irreflexive(self, p):
        assert not is_more_favorable(p, p)

    @given(codes(), codes())
    def test_asymmetric(self, p, q):
        if is_more_favorable(p, q):
            assert not is_more_favorable(q, p)

    @given(codes(), codes(), codes())
    def test_transitive(self, p, q, r):
        if is_more_favorable(p, q) and is_more_favorable(q, r):
            assert is_more_favorable(p, r)

    @given(codes(), codes())
    def test_strict_implies_reflexive_closure(self, p, q):
        if is_more_favorable(p, q):
            assert is_at_least_as_favorable(p, q)

    @given(codes())
    def test_reflexive_closure_is_reflexive(self, p):
        assert is_at_least_as_favorable(p, p)


class TestOrderHelpers:
    @given(code_lists())
    @settings(max_examples=60)
    def test_maximal_codes_are_undominated(self, code_list):
        roots = maximal_codes(code_list)
        assert roots  # a finite strict partial order has maximal elements
        for root in roots:
            assert not any(
                other is not root and is_more_favorable(other, root)
                for other in code_list
            )

    @given(code_lists())
    @settings(max_examples=60)
    def test_topological_sort_respects_order(self, code_list):
        ordered = sort_by_favorability(code_list)
        assert sorted(c.code for c in ordered) == sorted(
            c.code for c in code_list
        )
        position = {c.code: i for i, c in enumerate(ordered)}
        for p in code_list:
            for q in code_list:
                if is_more_favorable(p, q):
                    assert position[p.code] < position[q.code]

    @given(code_lists(max_size=5))
    @settings(max_examples=40)
    def test_cover_edges_have_no_intermediate(self, code_list):
        for parent, child in favorability_covers(code_list):
            assert is_more_favorable(parent, child)
            for mid in code_list:
                if mid is parent or mid is child:
                    continue
                assert not (
                    is_more_favorable(parent, mid)
                    and is_more_favorable(mid, child)
                )
