"""Differential properties: dense chunked-bitset backend vs big-int.

The dense kernel (:mod:`repro.core.engine.kernel`) is purely an
optimization — ``MinerConfig(backend="dense")`` must produce a
:class:`~repro.core.mining.MiningResult` identical to
``backend="bigint"`` down to every rule, stat float, tid-mask and the
default rule.  These properties drive both backends over random mining
problems and over the shapes where a chunked ``uint64`` representation
can diverge from arbitrary-width integers: databases whose size sits on
a 64-transaction chunk boundary (n ≡ 0/1 mod 64), single-transaction
databases, transactions with empty baskets, the LeakyMOA promo-leak
fixture, and ``filter_mining_result`` derivations computed from a
dense-backed mine.

Each backend mines through a *fresh* internal index: a shared
:class:`~repro.core.mining.TransactionIndex` would let the second
backend replay the first one's body/emit caches and mask real
divergence.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine.kernel import HAVE_NUMPY
from repro.core.mining import MinerConfig, filter_mining_result, mine_rules
from repro.core.moa import MOAHierarchy
from repro.core.profit import SavingMOA
from repro.core.sales import Sale, Transaction, TransactionDB

from tests.property.test_mining_properties import mining_problems
from tests.unit.test_mining import LeakyMOA

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="dense kernel needs numpy"
)


def _signature(result):
    """Everything a MiningResult asserts equality on, bit-for-bit."""
    return (
        [
            (
                scored.rule.order,
                tuple(sorted(g.describe() for g in scored.rule.body)),
                scored.rule.head.describe(),
                scored.stats.n_matched,
                scored.stats.n_hits,
                scored.stats.rule_profit,
            )
            for scored in result.all_rules
        ],
        None
        if result.default_rule is None
        else (
            result.default_rule.rule.head.describe(),
            result.default_rule.stats.rule_profit,
        ),
        result.body_tid_masks,
        result.body_ids_by_order,
        result.frequent_body_count,
        result.minsup_count,
    )


def _mine_both(db, moa, config):
    """One mine per backend, each through a fresh internal index."""
    dense = mine_rules(
        db, moa, SavingMOA(), replace(config, backend="dense")
    )
    bigint = mine_rules(
        db, moa, SavingMOA(), replace(config, backend="bigint")
    )
    return dense, bigint


class TestRandomProblems:
    @given(mining_problems())
    @settings(max_examples=40, deadline=None)
    def test_backends_identical_on_random_problems(self, problem):
        db, moa, config = problem
        dense, bigint = _mine_both(db, moa, config)
        assert _signature(dense) == _signature(bigint)

    @given(mining_problems(), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_parallel_dense_identical(self, problem, n_jobs):
        db, moa, config = problem
        threaded = mine_rules(
            db,
            moa,
            SavingMOA(),
            replace(config, backend="dense", n_jobs=n_jobs),
        )
        sequential = mine_rules(
            db, moa, SavingMOA(), replace(config, backend="dense", n_jobs=1)
        )
        assert _signature(threaded) == _signature(sequential)

    @given(mining_problems())
    @settings(max_examples=15, deadline=None)
    def test_fpgrowth_backends_identical(self, problem):
        db, moa, config = problem
        dense, bigint = _mine_both(
            db, moa, replace(config, algorithm="fpgrowth")
        )
        assert _signature(dense) == _signature(bigint)


def _replicated_db(small_db, n: int) -> TransactionDB:
    """``small_db``'s transactions cycled out to exactly ``n``."""
    base = list(small_db)
    transactions = [
        Transaction(tid, base[tid % len(base)].nontarget_sales, base[tid % len(base)].target_sale)
        for tid in range(n)
    ]
    return TransactionDB(catalog=small_db.catalog, transactions=transactions)


class TestChunkBoundaries:
    """n ≡ 0/1 mod 64: the seams of the chunked uint64 representation."""

    @pytest.mark.parametrize("n", [63, 64, 65, 127, 128, 129])
    def test_boundary_sizes_identical(self, small_db, small_moa, n):
        db = _replicated_db(small_db, n)
        config = MinerConfig(min_support=0.05, max_body_size=2)
        dense, bigint = _mine_both(db, small_moa, config)
        assert _signature(dense) == _signature(bigint)

    def test_single_transaction_db(self, small_db, small_moa):
        db = _replicated_db(small_db, 1)
        config = MinerConfig(min_support=0.5, max_body_size=2)
        dense, bigint = _mine_both(db, small_moa, config)
        assert _signature(dense) == _signature(bigint)

    def test_effectively_empty_baskets(self, small_catalog, small_moa):
        # A lone Perfume transaction among 64 Bread ones: none of its
        # extensions (item, category or promo-form) reaches the support
        # floor, so its kernel row carries a zero bit for *every* frequent
        # body — the dense analogue of an empty basket.
        transactions = [
            Transaction(tid, (Sale("Bread", "P1"),), Sale("Sunchip", "H"))
            for tid in range(64)
        ]
        transactions.append(
            Transaction(64, (Sale("Perfume", "P1"),), Sale("Sunchip", "L"))
        )
        db = TransactionDB(catalog=small_catalog, transactions=transactions)
        config = MinerConfig(min_support=0.5, max_body_size=2)
        dense, bigint = _mine_both(db, small_moa, config)
        assert _signature(dense) == _signature(bigint)
        assert dense.all_rules  # the Bread rows must still surface rules


class TestLeakyMOA:
    def test_promo_leak_identical(self, small_db, small_catalog, small_hierarchy):
        # The leaked <Sunchip @ L> body exercises the miner's (body, head)
        # skip-guard on both backends; they must skip identically.
        leaky = LeakyMOA(small_catalog, small_hierarchy, use_moa=True)
        config = MinerConfig(min_support=0.05, max_body_size=2)
        dense, bigint = _mine_both(small_db, leaky, config)
        assert _signature(dense) == _signature(bigint)


class TestFilterDerivations:
    @given(mining_problems())
    @settings(max_examples=20, deadline=None)
    def test_filtered_dense_equals_filtered_bigint(self, problem):
        db, moa, config = problem
        low = replace(config, min_support=0.05)
        dense, bigint = _mine_both(db, moa, low)
        for min_support in (0.1, 0.3):
            assert _signature(
                filter_mining_result(dense, min_support)
            ) == _signature(filter_mining_result(bigint, min_support))

    def test_filtered_dense_equals_direct_mine(self, small_db, small_moa):
        config = MinerConfig(min_support=0.05, max_body_size=2)
        dense = mine_rules(
            small_db,
            small_moa,
            SavingMOA(),
            replace(config, backend="dense"),
        )
        filtered = filter_mining_result(dense, 0.2)
        direct = mine_rules(
            small_db,
            small_moa,
            SavingMOA(),
            replace(config, min_support=0.2, backend="bigint"),
        )
        assert _signature(filtered) == _signature(direct)
