"""Property test: serialization round-trips arbitrary valid databases."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.items import Item, ItemCatalog
from repro.core.promotion import PromotionCode
from repro.core.sales import Sale, Transaction, TransactionDB
from repro.data.io import (
    catalog_from_dict,
    catalog_to_dict,
    transaction_from_dict,
    transaction_to_dict,
)

item_ids = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N")),
    min_size=1,
    max_size=8,
)


@st.composite
def databases(draw):
    n_nontargets = draw(st.integers(1, 4))
    n_targets = draw(st.integers(1, 2))
    items = []
    for i in range(n_nontargets + n_targets):
        promos = tuple(
            PromotionCode(
                code=f"P{j}",
                price=round(draw(st.floats(0.01, 100.0)), 4),
                cost=round(draw(st.floats(0.0, 50.0)), 4),
                packing=draw(st.integers(1, 6)),
            )
            for j in range(draw(st.integers(1, 3)))
        )
        items.append(Item(f"X{i}", promos, is_target=i >= n_nontargets))
    catalog = ItemCatalog.from_items(items)
    nontargets = catalog.nontarget_items
    targets = catalog.target_items

    transactions = []
    for tid in range(draw(st.integers(1, 6))):
        k = draw(st.integers(1, len(nontargets)))
        basket = tuple(
            Sale(
                item.item_id,
                item.promotions[
                    draw(st.integers(0, len(item.promotions) - 1))
                ].code,
                float(draw(st.integers(1, 5))),
            )
            for item in nontargets[:k]
        )
        target_item = targets[draw(st.integers(0, len(targets) - 1))]
        target = Sale(
            target_item.item_id,
            target_item.promotions[
                draw(st.integers(0, len(target_item.promotions) - 1))
            ].code,
            float(draw(st.integers(1, 5))),
        )
        transactions.append(Transaction(tid, basket, target))
    return TransactionDB(catalog, transactions)


class TestRoundTrip:
    @given(databases())
    @settings(max_examples=50, deadline=None)
    def test_catalog_round_trip(self, db):
        restored = catalog_from_dict(catalog_to_dict(db.catalog))
        assert {i.item_id for i in restored} == {i.item_id for i in db.catalog}
        for item in db.catalog:
            twin = restored.get(item.item_id)
            assert twin.is_target == item.is_target
            assert twin.promotions == item.promotions

    @given(databases())
    @settings(max_examples=50, deadline=None)
    def test_transactions_round_trip(self, db):
        for t in db:
            assert transaction_from_dict(transaction_to_dict(t)) == t

    @given(db=databases())
    @settings(max_examples=30, deadline=None)
    def test_file_round_trip(self, tmp_path_factory, db):
        from repro.data.io import load_transactions, save_transactions

        path = tmp_path_factory.mktemp("io") / "db.jsonl"
        save_transactions(db, path)
        restored = load_transactions(path)
        assert restored.transactions == db.transactions
