"""Differential properties of the compiled engine vs the naive reference.

The :class:`~repro.core.engine.compiled.CompiledModel` behind every
serving path — whether compiled out of the fit pipeline, lazily from a
rule list, or restored from a format-v2 artifact — is only an
optimization: ``recommendation_rule``, ``matching_rules`` and
``recommend_top_k`` must agree with their ``naive=True`` linear-scan
references on every basket, down to object identity of the selected
:class:`~repro.core.rules.ScoredRule`.  These properties drive all three
over random mining problems and random baskets, including the empty
basket and recommenders holding only the default rule.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mining import mine_rules
from repro.core.mpf import MPFRecommender
from repro.core.profit import SavingMOA
from repro.data.model_io import load_model, save_model

from tests.property.test_mining_properties import mining_problems
from tests.property.test_rule_index_differential import _random_basket


def _baskets_for(db, data):
    """Training baskets plus random ones, always including the empty basket."""
    baskets = [t.nontarget_sales for t in db]
    baskets.append([])
    baskets += [_random_basket(data.draw, db.catalog) for _ in range(3)]
    return baskets


class TestCompiledNaiveParity:
    @given(mining_problems(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_recommendation_rule_identical(self, problem, data):
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        recommender = MPFRecommender(result.all_rules, moa)
        for basket in _baskets_for(db, data):
            assert recommender.recommendation_rule(
                basket
            ) is recommender.recommendation_rule(basket, naive=True)

    @given(mining_problems(), st.data())
    @settings(max_examples=20, deadline=None)
    def test_matching_rules_identical(self, problem, data):
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        recommender = MPFRecommender(result.all_rules, moa)
        for basket in _baskets_for(db, data):
            indexed = recommender.matching_rules(basket)
            naive = recommender.matching_rules(basket, naive=True)
            assert len(indexed) == len(naive)
            assert all(a is b for a, b in zip(indexed, naive))

    @given(mining_problems(), st.data(), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_recommend_top_k_identical(self, problem, data, k):
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        recommender = MPFRecommender(result.all_rules, moa)
        for basket in _baskets_for(db, data):
            indexed = recommender.recommend_top_k(basket, k)
            naive = recommender.recommend_top_k(basket, k, naive=True)
            assert [(p.item_id, p.promo_code, id(p.rule)) for p in indexed] == [
                (p.item_id, p.promo_code, id(p.rule)) for p in naive
            ]

    @given(mining_problems(), st.data())
    @settings(max_examples=15, deadline=None)
    def test_default_rule_only_recommender(self, problem, data):
        """A recommender holding just the default rule serves every basket."""
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        recommender = MPFRecommender([result.default_rule], moa)
        for basket in _baskets_for(db, data):
            scored = recommender.recommendation_rule(basket)
            assert scored is recommender.recommendation_rule(basket, naive=True)
            assert scored.rule.is_default
            assert recommender.matching_rules(basket) == [result.default_rule]
            top = recommender.recommend_top_k(basket, 3)
            assert len(top) == 1 and top[0].rule is result.default_rule


class TestPersistedCompiledParity:
    """A v2-restored compiled model matches its own naive scan too."""

    @given(problem=mining_problems(), data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_v2_round_trip_serves_identically(self, tmp_path_factory, problem, data):
        db, moa, config = problem
        result = mine_rules(db, moa, SavingMOA(), config)
        recommender = MPFRecommender(result.all_rules, moa)
        path = tmp_path_factory.mktemp("models") / "model.json"
        save_model(recommender, path, version=2)
        restored = load_model(path)
        for basket in _baskets_for(db, data):
            indexed = restored.recommendation_rule(basket)
            naive = restored.recommendation_rule(basket, naive=True)
            assert indexed is naive
            original = recommender.recommendation_rule(basket)
            assert (
                indexed.rule.head == original.rule.head
                and indexed.rule.body == original.rule.body
                and indexed.stats == original.stats
            )
