"""Property tests on MOA(H) generalization over random catalogs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generalized import GSale
from repro.core.hierarchy import ConceptHierarchy
from repro.core.items import Item, ItemCatalog
from repro.core.moa import MOAHierarchy
from repro.core.promotion import PromotionCode
from repro.core.sales import Sale


@st.composite
def worlds(draw):
    """A random catalog (2–4 non-targets, 1–2 targets) plus MOA hierarchy."""
    n_nontargets = draw(st.integers(2, 4))
    n_targets = draw(st.integers(1, 2))
    items = []
    for i in range(n_nontargets + n_targets):
        n_codes = draw(st.integers(1, 4))
        promos = tuple(
            PromotionCode(
                code=f"P{j}",
                price=round(draw(st.floats(0.5, 20.0)), 2),
                cost=round(draw(st.floats(0.0, 10.0)), 2),
                packing=draw(st.integers(1, 3)),
            )
            for j in range(n_codes)
        )
        items.append(
            Item(f"X{i}", promos, is_target=i >= n_nontargets)
        )
    catalog = ItemCatalog.from_items(items)
    # group the first two non-targets under a concept
    hierarchy = ConceptHierarchy.for_catalog(
        catalog, {"G": [items[0].item_id, items[1].item_id]}
    )
    use_moa = draw(st.booleans())
    return MOAHierarchy(catalog, hierarchy, use_moa=use_moa)


@st.composite
def worlds_and_sales(draw):
    moa = draw(worlds())
    nontargets = moa.catalog.nontarget_items
    item = nontargets[draw(st.integers(0, len(nontargets) - 1))]
    promo = item.promotions[draw(st.integers(0, len(item.promotions) - 1))]
    quantity = draw(st.integers(1, 5))
    return moa, Sale(item.item_id, promo.code, quantity)


class TestGeneralizationProperties:
    @given(worlds_and_sales())
    @settings(max_examples=60)
    def test_exact_form_always_included(self, world_sale):
        moa, sale = world_sale
        gsales = moa.generalizations_of_sale(sale)
        assert GSale.promo_form(sale.item_id, sale.promo_code) in gsales
        assert GSale.item(sale.item_id) in gsales

    @given(worlds_and_sales())
    @settings(max_examples=60)
    def test_generalization_set_is_upward_closed(self, world_sale):
        """Ancestors of any generalization are themselves generalizations."""
        moa, sale = world_sale
        gsales = moa.generalizations_of_sale(sale)
        for g in gsales:
            assert moa.ancestors_of_gsale(g) <= gsales

    @given(worlds_and_sales())
    @settings(max_examples=60)
    def test_subsumption_matches_membership(self, world_sale):
        moa, sale = world_sale
        gsales = moa.generalizations_of_sale(sale)
        exact = GSale.promo_form(sale.item_id, sale.promo_code)
        for g in gsales:
            assert moa.generalizes_or_equal(g, exact)

    @given(worlds())
    @settings(max_examples=40)
    def test_target_heads_consistent_with_hits(self, moa):
        for item in moa.catalog.target_items:
            for promo in item.promotions:
                sale = Sale(item.item_id, promo.code)
                heads = moa.target_heads_of_sale(sale)
                for head in moa.all_candidate_heads():
                    assert moa.hits(head, sale) == (head in heads)

    @given(worlds())
    @settings(max_examples=40)
    def test_subsumption_is_transitive(self, moa):
        gsales = set()
        for item in moa.catalog.nontarget_items:
            for promo in item.promotions:
                gsales |= moa.generalizations_of_sale(
                    Sale(item.item_id, promo.code)
                )
        gsales = sorted(gsales, key=GSale.sort_key)[:12]
        for a in gsales:
            for b in gsales:
                for c in gsales:
                    if moa.strictly_generalizes(a, b) and moa.strictly_generalizes(
                        b, c
                    ):
                        assert moa.strictly_generalizes(a, c)

    @given(worlds_and_sales())
    @settings(max_examples=40)
    def test_closure_idempotent(self, world_sale):
        moa, sale = world_sale
        body = {GSale.promo_form(sale.item_id, sale.promo_code)}
        once = moa.closure(body)
        assert moa.closure(once) == once
