"""Differential testing: FP-growth backend vs Apriori backend.

Both backends must produce identical rule lists — same rules, same
statistics, same generation order (the paper's last tie-breaker) — on
random databases and on the benchmark-scale fixtures.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings

from repro.core.mining import MinerConfig, mine_rules
from repro.core.profit import SavingMOA

from tests.property.test_mining_properties import mining_problems


def run_both(db, moa, config):
    apriori = mine_rules(db, moa, SavingMOA(), replace(config, algorithm="apriori"))
    fpgrowth = mine_rules(db, moa, SavingMOA(), replace(config, algorithm="fpgrowth"))
    return apriori, fpgrowth


class TestFPGrowthDifferential:
    @given(mining_problems())
    @settings(max_examples=40, deadline=None)
    def test_identical_rules_and_order(self, problem):
        db, moa, config = problem
        apriori, fpgrowth = run_both(db, moa, config)
        assert apriori.scored_rules == fpgrowth.scored_rules
        assert apriori.default_rule == fpgrowth.default_rule

    def test_on_a_generated_dataset(self, tiny_dataset_i):
        db = tiny_dataset_i.db
        from repro.core.moa import MOAHierarchy

        moa = MOAHierarchy(db.catalog, tiny_dataset_i.hierarchy)
        config = MinerConfig(min_support=0.02, max_body_size=2)
        apriori, fpgrowth = run_both(db, moa, config)
        assert apriori.scored_rules == fpgrowth.scored_rules
        assert len(apriori.scored_rules) > 20  # the comparison has teeth

    def test_masks_match_too(self, small_db, small_moa):
        config = MinerConfig(min_support=0.05, max_body_size=2)
        apriori, fpgrowth = run_both(small_db, small_moa, config)
        assert apriori.body_tid_masks == fpgrowth.body_tid_masks
