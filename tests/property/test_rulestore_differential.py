"""Differential properties of the shape-split rule store vs the ranked list.

The :class:`~repro.core.rulestore.RuleStore` splits a ranked rule list
into four per-shape columnar tables; its :class:`RankedView` must
reconstitute the *exact* legacy ranked order — same rules, same stats,
same rank positions — for arbitrary mined rule sets, and its indexed
``query`` path must agree with the ``naive=True`` linear scan on every
filter combination.  These properties drive both over random mining
problems, including rule sets holding only the default rule, plus a
save/load round trip so the view restored from a v3 artifact reproduces
the same ranked list value-identically.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mining import mine_rules
from repro.core.mpf import MPFRecommender
from repro.core.profit import SavingMOA
from repro.core.rulestore import SHAPES, RuleStore, shape_of_body
from repro.data.model_io import load_model, save_model

from tests.property.test_mining_properties import mining_problems


def _fitted(problem):
    db, moa, config = problem
    result = mine_rules(db, moa, SavingMOA(), config)
    return MPFRecommender(result.all_rules, moa), result


class TestRankedViewReconstruction:
    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_view_reproduces_the_ranked_list_exactly(self, problem):
        recommender, _ = _fitted(problem)
        store = RuleStore.from_compiled(recommender.compiled)
        legacy = list(recommender.ranked_rules)
        assert len(store.view) == len(legacy)
        # Same objects at every rank: the fit path prefills the view's
        # cache with the miner's own ScoredRule instances.
        assert all(store.view[i] is legacy[i] for i in range(len(legacy)))
        assert list(store.view) == legacy

    @given(mining_problems())
    @settings(max_examples=15, deadline=None)
    def test_loaded_view_is_value_identical(self, problem):
        import tempfile
        from pathlib import Path

        recommender, _ = _fitted(problem)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "model.json"
            save_model(recommender, path)  # v3: store-backed artifact
            restored = load_model(path)
        legacy = list(recommender.ranked_rules)
        view = restored.ranked_rules  # the lazy RankedView
        assert len(view) == len(legacy)
        for rank, scored in enumerate(legacy):
            assert view[rank].rule == scored.rule
            assert view[rank].stats == scored.stats
        assert list(view) == legacy

    @given(mining_problems())
    @settings(max_examples=15, deadline=None)
    def test_shape_split_is_a_partition(self, problem):
        recommender, _ = _fitted(problem)
        store = recommender.rule_store
        counts = store.shape_counts()
        assert set(counts) == set(SHAPES)
        assert sum(counts.values()) == len(recommender.ranked_rules)
        for rank, scored in enumerate(recommender.ranked_rules):
            shape, _row = store.location_of(rank)
            assert shape == shape_of_body(scored.rule.body)


class TestQueryDifferential:
    @given(mining_problems(), st.data())
    @settings(max_examples=20, deadline=None)
    def test_indexed_query_equals_naive_scan(self, problem, data):
        recommender, _ = _fitted(problem)
        heads = [s.rule.head for s in recommender.ranked_rules]
        filters = [
            {},
            {"shape": data.draw(st.sampled_from(SHAPES))},
            {"min_conf": data.draw(st.floats(0.0, 1.0))},
            {"min_support": data.draw(st.floats(0.0, 0.5))},
            {"top": data.draw(st.integers(1, 5))},
        ]
        head = data.draw(st.sampled_from(heads))
        if head.promo is not None:
            filters.append({"head_promo": head.promo})
            filters.append({"head_item": head.node, "head_promo": head.promo})
        bodies = [s.rule.body for s in recommender.ranked_rules if s.rule.body]
        if bodies:
            member = next(iter(data.draw(st.sampled_from(bodies))))
            filters.append({"body_mentions": [member]})
        for kwargs in filters:
            indexed = recommender.query_rules(**kwargs)
            naive = recommender.query_rules(naive=True, **kwargs)
            assert [hit.rank for hit in indexed] == [hit.rank for hit in naive]
            assert [hit.to_dict() for hit in indexed] == [
                hit.to_dict() for hit in naive
            ]
