"""Differential testing: fast bitmask miner vs the exhaustive reference.

On random small databases, the production miner
(:mod:`repro.core.mining`) must produce exactly the rule set and exactly
the statistics of the brute-force reference implementation
(:mod:`repro.core.mining_reference`).
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.mining import mine_rules
from repro.core.mining_reference import ReferenceRule, mine_rules_reference
from repro.core.profit import SavingMOA

from tests.property.test_mining_properties import mining_problems


def as_reference(result) -> set[ReferenceRule]:
    return {
        ReferenceRule(
            body=s.rule.body,
            head=s.rule.head,
            n_matched=s.stats.n_matched,
            n_hits=s.stats.n_hits,
            rule_profit=round(s.stats.rule_profit, 9),
        )
        for s in result.scored_rules
    }


class TestDifferential:
    @given(mining_problems())
    @settings(max_examples=40, deadline=None)
    def test_fast_miner_matches_reference(self, problem):
        db, moa, config = problem
        fast = as_reference(mine_rules(db, moa, SavingMOA(), config))
        reference = mine_rules_reference(db, moa, SavingMOA(), config)
        assert fast == reference

    def test_on_the_small_fixture(self, small_db, small_moa):
        from repro.core.mining import MinerConfig

        config = MinerConfig(min_support=0.05, max_body_size=2)
        fast = as_reference(mine_rules(small_db, small_moa, SavingMOA(), config))
        reference = mine_rules_reference(small_db, small_moa, SavingMOA(), config)
        assert fast == reference
        assert len(fast) > 5  # the comparison is not vacuous
