"""Property tests for the pessimistic estimator."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core.pessimistic import pessimistic_hits, pessimistic_miss_rate


@st.composite
def n_and_e(draw):
    n = draw(st.integers(1, 500))
    e = draw(st.integers(0, n))
    return n, e


class TestMissRateProperties:
    @given(n_and_e(), st.floats(0.01, 0.99))
    @settings(max_examples=120)
    def test_in_unit_interval(self, ne, cf):
        n, e = ne
        assert 0.0 <= pessimistic_miss_rate(n, e, cf) <= 1.0

    @given(n_and_e(), st.floats(0.01, 0.5))
    @settings(max_examples=120)
    def test_pessimistic_above_observed_rate(self, ne, cf):
        """For CF ≤ 0.5 (the pessimistic regime C4.5 operates in), the
        limit sits at or above the observed miss rate."""
        n, e = ne
        assert pessimistic_miss_rate(n, e, cf) >= e / n - 1e-12

    @given(n_and_e(), st.floats(0.01, 0.99))
    @settings(max_examples=80)
    def test_is_valid_upper_confidence_limit(self, ne, cf):
        """P[Binomial(n, U) ≤ e] ≤ CF for e < n — the Clopper–Pearson bound
        (at e = n the limit saturates at 1 and the bound is vacuous)."""
        n, e = ne
        if e == n:
            assert pessimistic_miss_rate(n, e, cf) == 1.0
            return
        u = pessimistic_miss_rate(n, e, cf)
        assert stats.binom.cdf(e, n, u) <= cf + 1e-6

    @given(st.integers(1, 300), st.floats(0.05, 0.95))
    @settings(max_examples=60)
    def test_monotone_in_errors(self, n, cf):
        rates = [pessimistic_miss_rate(n, e, cf) for e in range(n + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))

    @given(n_and_e())
    @settings(max_examples=60)
    def test_more_confidence_means_higher_limit(self, ne):
        n, e = ne
        assert pessimistic_miss_rate(n, e, cf=0.05) >= pessimistic_miss_rate(
            n, e, cf=0.5
        )


class TestHitsProperties:
    @given(n_and_e())
    @settings(max_examples=100)
    def test_hits_within_bounds(self, ne):
        n, e = ne
        hits = n - e
        x = pessimistic_hits(n, hits)
        assert 0.0 <= x <= hits + 1e-12

    @given(st.integers(1, 200))
    @settings(max_examples=50)
    def test_perfect_record_discounted_but_positive(self, n):
        x = pessimistic_hits(n, n)
        assert 0 < x < n
