"""Property tests: top-k serving and evaluation over random worlds.

Three families of invariants the portfolio layer leans on:

* **Top-1 consistency** — ``recommend_top_k(b, 1)`` is bit-exactly
  ``[recommend(b)]`` on every basket: the ranked list is anchored at the
  single-pair recommendation.
* **Differential parity** — the indexed top-k path (compiled matching +
  memo) and the naive linear-scan reference produce identical offer
  lists, and :func:`~repro.eval.metrics.evaluate_top_k` produces
  identical outcomes through either, at every ``k``.
* **Monotonicity in k** — a larger ``k`` extends the offer list (prefix
  property), so the evaluated hit rate and credited profit never
  decrease as ``k`` grows.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchy import ConceptHierarchy
from repro.core.mining import mine_rules
from repro.core.mpf import MPFRecommender
from repro.core.profit import SavingMOA
from repro.eval.metrics import evaluate_top_k

from .test_mining_properties import mining_problems


def _fit(problem) -> tuple[MPFRecommender, object]:
    db, moa, config = problem
    result = mine_rules(db, moa, SavingMOA(), config)
    return MPFRecommender(result.all_rules, moa), db


def _pairs(picks):
    return [(p.item_id, p.promo_code) for p in picks]


class TestTopKServingProperties:
    @given(mining_problems())
    @settings(max_examples=30, deadline=None)
    def test_top1_is_exactly_the_single_recommendation(self, problem):
        recommender, db = _fit(problem)
        for t in db:
            basket = t.nontarget_sales
            single = recommender.recommend(basket)
            (top,) = recommender.recommend_top_k(basket, 1)
            assert (top.item_id, top.promo_code) == (
                single.item_id,
                single.promo_code,
            )

    @given(mining_problems(), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_indexed_matches_naive_offer_lists(self, problem, k):
        recommender, db = _fit(problem)
        baskets = [t.nontarget_sales for t in db]
        batched = recommender.recommend_top_k_many(baskets, k)
        for basket, indexed in zip(baskets, batched):
            naive = recommender.recommend_top_k(basket, k, naive=True)
            assert _pairs(indexed) == _pairs(naive)

    @given(mining_problems(), st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_prefix_property_in_k(self, problem, k):
        recommender, db = _fit(problem)
        for t in db:
            basket = t.nontarget_sales
            smaller = recommender.recommend_top_k(basket, k)
            larger = recommender.recommend_top_k(basket, k + 2)
            assert _pairs(larger)[: len(smaller)] == _pairs(smaller)


class TestTopKEvalProperties:
    @given(mining_problems(), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_eval_indexed_matches_naive_outcomes(self, problem, k):
        recommender, db = _fit(problem)
        hierarchy = ConceptHierarchy.for_catalog(db.catalog, {})
        indexed = evaluate_top_k(recommender, db, hierarchy, k=k)
        naive = evaluate_top_k(recommender, db, hierarchy, k=k, naive=True)
        assert [
            (
                o.tid,
                o.hit,
                o.achieved_profit,
                o.recommendation.item_id,
                o.recommendation.promo_code,
            )
            for o in indexed.outcomes
        ] == [
            (
                o.tid,
                o.hit,
                o.achieved_profit,
                o.recommendation.item_id,
                o.recommendation.promo_code,
            )
            for o in naive.outcomes
        ]

    @given(mining_problems())
    @settings(max_examples=20, deadline=None)
    def test_hit_rate_and_credit_monotone_in_k(self, problem):
        recommender, db = _fit(problem)
        hierarchy = ConceptHierarchy.for_catalog(db.catalog, {})
        results = [
            evaluate_top_k(recommender, db, hierarchy, k=k)
            for k in (1, 2, 4)
        ]
        hit_rates = [r.hit_rate for r in results]
        credits = [
            sum(o.achieved_profit for o in r.outcomes) for r in results
        ]
        assert hit_rates == sorted(hit_rates)
        assert credits == sorted(credits)
