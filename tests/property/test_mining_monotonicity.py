"""Monotonicity properties of the miner under threshold changes."""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings

from repro.core.mining import mine_rules
from repro.core.profit import SavingMOA

from tests.property.test_mining_properties import mining_problems


def rule_keys(result) -> set:
    return {(s.rule.body, s.rule.head) for s in result.scored_rules}


class TestThresholdMonotonicity:
    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_higher_support_yields_subset(self, problem):
        """Raising min_support can only remove rules, never add or alter."""
        db, moa, config = problem
        loose = mine_rules(db, moa, SavingMOA(), config)
        strict_config = replace(
            config, min_support=min(1.0, config.min_support * 2.5)
        )
        strict = mine_rules(db, moa, SavingMOA(), strict_config)
        assert rule_keys(strict) <= rule_keys(loose)

    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_higher_confidence_yields_subset(self, problem):
        db, moa, config = problem
        loose = mine_rules(db, moa, SavingMOA(), config)
        strict = mine_rules(
            db, moa, SavingMOA(), replace(config, min_confidence=0.7)
        )
        assert rule_keys(strict) <= rule_keys(loose)
        assert all(s.stats.confidence >= 0.7 for s in strict.scored_rules)

    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_larger_bodies_extend_smaller(self, problem):
        """Raising max_body_size only adds rules with bigger bodies."""
        db, moa, config = problem
        if config.max_body_size < 2:
            return
        shallow = mine_rules(
            db, moa, SavingMOA(), replace(config, max_body_size=1)
        )
        deep = mine_rules(db, moa, SavingMOA(), config)
        assert rule_keys(shallow) <= rule_keys(deep)

    @given(mining_problems())
    @settings(max_examples=25, deadline=None)
    def test_stats_independent_of_thresholds(self, problem):
        """A rule surviving both runs carries identical statistics."""
        db, moa, config = problem
        loose = mine_rules(db, moa, SavingMOA(), config)
        strict = mine_rules(
            db, moa, SavingMOA(), replace(config, min_support=min(1.0, config.min_support * 2))
        )
        loose_stats = {
            (s.rule.body, s.rule.head): (
                s.stats.n_matched,
                s.stats.n_hits,
                round(s.stats.rule_profit, 9),
            )
            for s in loose.scored_rules
        }
        for s in strict.scored_rules:
            key = (s.rule.body, s.rule.head)
            assert loose_stats[key] == (
                s.stats.n_matched,
                s.stats.n_hits,
                round(s.stats.rule_profit, 9),
            )
