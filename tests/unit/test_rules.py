"""Unit tests for rules, worth measures and MPF ranking (Definitions 4–6)."""

from __future__ import annotations

import pytest

from repro.core.generalized import GSale
from repro.core.rules import Rule, RuleStats, ScoredRule
from repro.errors import ValidationError


def rule(body_items=(), head=("T", "P1"), order=0) -> Rule:
    return Rule(
        body=frozenset(GSale.item(i) for i in body_items),
        head=GSale.promo_form(*head),
        order=order,
    )


def scored(prof_re=1.0, supp=0.1, body_size=1, order=0, n_total=100) -> ScoredRule:
    """Build a scored rule with the given rank ingredients."""
    n_hits = max(1, round(supp * n_total))
    n_matched = min(n_total, n_hits * 2)
    body = frozenset(GSale.item(f"i{k}") for k in range(body_size))
    return ScoredRule(
        rule=Rule(body=body, head=GSale.promo_form("T", "P1"), order=order),
        stats=RuleStats(
            n_matched=n_matched,
            n_hits=n_hits,
            rule_profit=prof_re * n_matched,
            n_total=n_total,
        ),
    )


class TestRule:
    def test_head_must_be_promo_form(self):
        with pytest.raises(ValidationError, match="item, promotion"):
            Rule(body=frozenset(), head=GSale.item("T"), order=0)

    def test_body_must_not_mention_head_item(self):
        with pytest.raises(ValidationError, match="target item"):
            Rule(
                body=frozenset({GSale.promo_form("T", "P2")}),
                head=GSale.promo_form("T", "P1"),
                order=0,
            )

    def test_default_rule_detection(self):
        assert rule().is_default
        assert not rule(body_items=["a"]).is_default

    def test_describe(self):
        r = rule(body_items=["Egg"], head=("Sunchip", "P2"))
        assert r.describe() == "{Egg} -> <Sunchip @ P2>"


class TestRuleStats:
    def test_measures(self):
        stats = RuleStats(n_matched=40, n_hits=30, rule_profit=90.0, n_total=200)
        assert stats.support == pytest.approx(30 / 200)
        assert stats.body_support == pytest.approx(40 / 200)
        assert stats.confidence == pytest.approx(0.75)
        assert stats.recommendation_profit == pytest.approx(90 / 40)
        assert stats.average_profit_per_hit == pytest.approx(3.0)

    def test_zero_division_guards(self):
        stats = RuleStats(n_matched=0, n_hits=0, rule_profit=0.0, n_total=10)
        assert stats.confidence == 0.0
        assert stats.recommendation_profit == 0.0
        assert stats.average_profit_per_hit == 0.0

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(ValidationError, match="inconsistent"):
            RuleStats(n_matched=5, n_hits=6, rule_profit=0.0, n_total=10)
        with pytest.raises(ValidationError, match="inconsistent"):
            RuleStats(n_matched=11, n_hits=5, rule_profit=0.0, n_total=10)
        with pytest.raises(ValidationError, match="positive"):
            RuleStats(n_matched=0, n_hits=0, rule_profit=0.0, n_total=0)


class TestMPFRanking:
    def test_profit_per_recommendation_first(self):
        hi = scored(prof_re=2.0, supp=0.01)
        lo = scored(prof_re=1.0, supp=0.99)
        assert sorted([lo, hi])[0] == hi

    def test_support_breaks_profit_ties(self):
        wide = scored(prof_re=1.0, supp=0.50, order=1)
        narrow = scored(prof_re=1.0, supp=0.10, order=0)
        assert sorted([narrow, wide])[0] == wide

    def test_body_size_breaks_support_ties(self):
        simple = scored(prof_re=1.0, supp=0.10, body_size=1, order=1)
        complex_ = scored(prof_re=1.0, supp=0.10, body_size=3, order=0)
        assert sorted([complex_, simple])[0] == simple

    def test_generation_order_is_total(self):
        first = scored(order=0)
        second = scored(order=1)
        assert sorted([second, first])[0] == first

    def test_rank_key_shape(self):
        s = scored(prof_re=2.0, supp=0.2, body_size=2, order=7)
        key = s.rank_key()
        assert key[0] == pytest.approx(-2.0)
        assert key[2] == 2
        assert key[3] == 7

    def test_describe_contains_stats(self):
        text = scored().describe()
        assert "supp=" in text and "conf=" in text and "prof_re=" in text
