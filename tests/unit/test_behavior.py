"""Unit tests for the quantity-increase behavior models (Section 5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.eval.behavior import (
    BehaviorClause,
    QuantityBehavior,
    behavior_paper_combined,
    behavior_x2_y30,
    behavior_x3_y40,
    price_step_gap,
)


class TestBehaviorClause:
    def test_validation(self):
        with pytest.raises(ValidationError, match="multiplier"):
            BehaviorClause(multiplier=0.5, probability=0.3)
        with pytest.raises(ValidationError, match="probability"):
            BehaviorClause(multiplier=2, probability=1.5)
        with pytest.raises(ValidationError, match="gaps"):
            BehaviorClause(multiplier=2, probability=0.3, gaps=(0,))

    def test_applies_to(self):
        any_gap = BehaviorClause(multiplier=2, probability=0.3)
        assert any_gap.applies_to(1) and any_gap.applies_to(4)
        assert not any_gap.applies_to(0)
        narrow = BehaviorClause(multiplier=2, probability=0.3, gaps=(1, 2))
        assert narrow.applies_to(2) and not narrow.applies_to(3)


class TestQuantityBehavior:
    def test_expected_multiplier(self):
        b = behavior_x2_y30()
        assert b.expected_multiplier(1) == pytest.approx(1.3)
        assert b.expected_multiplier(0) == 1.0
        b3 = behavior_x3_y40()
        assert b3.expected_multiplier(2) == pytest.approx(1.8)

    def test_combined_profile(self):
        b = behavior_paper_combined()
        assert b.expected_multiplier(1) == pytest.approx(1.3)
        assert b.expected_multiplier(2) == pytest.approx(1.3)
        assert b.expected_multiplier(3) == pytest.approx(1.8)
        assert b.expected_multiplier(4) == pytest.approx(1.8)
        assert b.expected_multiplier(5) == 1.0  # no clause covers gap 5

    def test_multiplier_sampling_matches_probability(self):
        b = behavior_x2_y30()
        rng = np.random.default_rng(0)
        draws = [b.multiplier(1, rng) for _ in range(4000)]
        doubled = sum(1 for d in draws if d == 2.0)
        assert set(draws) <= {1.0, 2.0}
        assert 0.25 < doubled / 4000 < 0.35

    def test_no_gap_no_multiplier(self):
        b = behavior_x3_y40()
        rng = np.random.default_rng(0)
        assert all(b.multiplier(0, rng) == 1.0 for _ in range(100))

    def test_first_matching_clause_wins(self):
        b = QuantityBehavior(
            label="layered",
            clauses=(
                BehaviorClause(multiplier=2, probability=1.0, gaps=(1,)),
                BehaviorClause(multiplier=3, probability=1.0),
            ),
        )
        rng = np.random.default_rng(0)
        assert b.multiplier(1, rng) == 2.0
        assert b.multiplier(2, rng) == 3.0


class TestPriceStepGap:
    def test_gap_on_ladder(self, small_catalog):
        assert price_step_gap(small_catalog, "Sunchip", "H", "L") == 2
        assert price_step_gap(small_catalog, "Sunchip", "M", "L") == 1
        assert price_step_gap(small_catalog, "Sunchip", "L", "H") == -2
        assert price_step_gap(small_catalog, "Sunchip", "M", "M") == 0

    def test_unknown_code_raises(self, small_catalog):
        with pytest.raises(ValidationError, match="ladder"):
            price_step_gap(small_catalog, "Sunchip", "H", "nope")
