"""Unit tests for the ``repro.obs`` tracing subsystem.

Covers the recording primitives (span nesting, counters, cache events),
the disabled no-op path, serialization round-trips, worker-trace merging
and the human-readable summary — plus differential tests asserting that
tracing never changes fit, serve or sweep results.
"""

from __future__ import annotations

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.sales import Sale
from repro.eval.harness import run_support_sweep
from repro.obs import trace as obs
from repro.obs.trace import Span, Trace, run_traced, tracing


class TestSpans:
    def test_nesting_builds_a_tree(self):
        with tracing("t") as trace:
            with obs.span("outer", stage="one"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        assert [s.name for s in trace.spans] == ["outer"]
        outer = trace.spans[0]
        assert outer.meta == {"stage": "one"}
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert outer.elapsed_s >= sum(c.elapsed_s for c in outer.children)

    def test_annotate_targets_innermost_open_span(self):
        with tracing("t") as trace:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.annotate(backend="dense")
            obs.annotate(top="yes")
        assert trace.spans[0].children[0].meta == {"backend": "dense"}
        assert trace.meta == {"top": "yes"}

    def test_sibling_spans_stay_top_level(self):
        with tracing("t") as trace:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        assert [s.name for s in trace.spans] == ["a", "b"]


class TestDisabledPath:
    def test_no_trace_installed_by_default(self):
        assert obs.current_trace() is None

    def test_primitives_are_noops_without_a_trace(self):
        with obs.span("ignored", meta="x"):
            obs.count("ignored")
            obs.cache_event("ignored", hits=1)
            obs.annotate(ignored="y")
        assert obs.current_trace() is None

    def test_tracing_restores_previous_state(self):
        with tracing("outer") as outer:
            with tracing("inner") as inner:
                assert obs.current_trace() is inner
            assert obs.current_trace() is outer
        assert obs.current_trace() is None


class TestCountersAndCaches:
    def test_counters_accumulate(self):
        with tracing("t") as trace:
            obs.count("x")
            obs.count("x", 4)
            obs.count("y", 2.5)
        assert trace.counters == {"x": 5, "y": 2.5}

    def test_cache_stats_sum_but_gauges_take_max(self):
        with tracing("t") as trace:
            obs.cache_event("c", hits=2, entries=10)
            obs.cache_event("c", hits=3, misses=1, entries=4)
        assert trace.caches["c"] == {"hits": 5, "misses": 1, "entries": 10}

    def test_resident_bytes_is_a_gauge(self):
        # The store reports its resident set after every load/eviction; the
        # trace must keep the peak, not the meaningless sum of snapshots.
        with tracing("t") as trace:
            obs.cache_event("store.partitions", loads=1, resident_bytes=100)
            obs.cache_event("store.partitions", loads=1, resident_bytes=250)
            obs.cache_event("store.partitions", evictions=1, resident_bytes=80)
        assert trace.caches["store.partitions"] == {
            "loads": 2,
            "evictions": 1,
            "resident_bytes": 250,
        }

    def test_events_count_every_recording_call(self):
        with tracing("t") as trace:
            with obs.span("s"):
                obs.count("x")
            obs.cache_event("c", hits=1)
        assert trace.events == 3


class TestMerge:
    def test_merge_sums_counters_and_caches(self):
        with tracing("parent") as trace:
            obs.count("shared", 1)
            obs.cache_event("c", hits=1, entries=5)
        worker = {
            "counters": {"shared": 2, "worker_only": 7},
            "caches": {"c": {"hits": 4, "entries": 3}},
            "events": 9,
            "spans": [],
        }
        before = trace.events
        trace.merge(worker)
        assert trace.counters == {"shared": 3, "worker_only": 7}
        assert trace.caches["c"] == {"hits": 5, "entries": 5}
        assert trace.events == before + 9
        assert trace.spans == []  # no worker spans -> no holder span

    def test_merge_sums_spilled_bytes_but_gauges_resident_bytes(self):
        # Counters like spilled bytes add up across workers; resident_bytes
        # is a point-in-time gauge, so the merged trace keeps the maximum.
        with tracing("parent") as trace:
            obs.count("store.spilled_bytes", 1000)
            obs.cache_event("store.partitions", loads=1, resident_bytes=300)
        worker = {
            "counters": {"store.spilled_bytes": 2500},
            "caches": {"store.partitions": {"loads": 2, "resident_bytes": 700}},
            "events": 3,
            "spans": [],
        }
        trace.merge(worker)
        assert trace.counters["store.spilled_bytes"] == 3500
        assert trace.caches["store.partitions"] == {
            "loads": 3,
            "resident_bytes": 700,
        }

    def test_merge_attaches_worker_spans_under_labeled_holder(self):
        worker = Trace("worker")
        with worker.span("mine"):
            pass
        with worker.span("serve"):
            pass
        with tracing("parent") as trace:
            with obs.span("sweep"):
                trace.merge(worker.to_dict(), label="worker[PROF/fold0]")
        sweep = trace.spans[0]
        holder = sweep.children[0]
        assert holder.name == "worker[PROF/fold0]"
        assert [c.name for c in holder.children] == ["mine", "serve"]
        assert holder.elapsed_s == pytest.approx(
            sum(c.elapsed_s for c in holder.children)
        )


class TestSerialization:
    def _sample(self) -> Trace:
        with tracing("sample", label="unit") as trace:
            with obs.span("outer", stage="one"):
                with obs.span("inner"):
                    obs.count("n", 3)
            obs.cache_event("c", hits=1, entries=2)
        return trace

    def test_dict_round_trip(self):
        trace = self._sample()
        restored = Trace.from_dict(trace.to_dict())
        assert restored.to_dict() == trace.to_dict()

    def test_json_file_round_trip(self, tmp_path):
        trace = self._sample()
        path = tmp_path / "trace.json"
        trace.write(str(path))
        restored = Trace.read(str(path))
        assert restored.to_dict() == trace.to_dict()
        # Stable output: writing the restored trace reproduces the bytes.
        restored.write(str(tmp_path / "again.json"))
        assert (tmp_path / "again.json").read_text() == path.read_text()

    def test_span_round_trip(self):
        span = Span("s", {"k": "v"})
        span.elapsed_s = 1.5
        span.children.append(Span("child"))
        assert Span.from_dict(span.to_dict()).to_dict() == span.to_dict()


def _traced_task(x: int) -> int:
    obs.count("task.calls")
    with obs.span("task"):
        return x * 2


class TestRunTraced:
    def test_returns_result_and_trace_dict(self):
        result, data = run_traced(_traced_task, 21)
        assert result == 42
        assert data["counters"] == {"task.calls": 1}
        assert [s["name"] for s in data["spans"]] == ["task"]

    def test_worker_trace_is_isolated_from_parent(self):
        with tracing("parent") as trace:
            result, data = run_traced(_traced_task, 1)
        assert result == 2
        assert trace.counters == {}  # recorded on the worker trace only
        assert data["counters"] == {"task.calls": 1}


class TestSummary:
    def test_summary_mentions_spans_counters_and_caches(self):
        with tracing("demo", dataset="I") as trace:
            with obs.span("mine", backend="bigint"):
                obs.count("mine.rules_emitted", 12)
            obs.cache_event("eval.judge_cache", hits=3, misses=1, evictions=2)
        text = trace.summary()
        assert "trace 'demo'" in text and "dataset=I" in text
        assert "mine" in text and "backend=bigint" in text
        assert "mine.rules_emitted" in text and "12" in text
        assert "eval.judge_cache" in text
        assert "hits=3, misses=1, evictions=2" in text


@pytest.fixture
def fitted_factory(small_hierarchy, small_db):
    def build():
        return ProfitMiner(
            small_hierarchy,
            config=ProfitMinerConfig(
                mining=MinerConfig(min_support=0.05, max_body_size=2)
            ),
        ).fit(small_db)

    return build


def _rule_signature(miner):
    return [
        (
            scored.rule.order,
            tuple(sorted(g.describe() for g in scored.rule.body)),
            scored.rule.head.describe(),
            scored.stats.n_matched,
            scored.stats.n_hits,
            scored.stats.rule_profit,
        )
        for scored in miner.require_fitted_recommender().ranked_rules
    ]


class TestTracingIsObservational:
    """Tracing must never change what the pipeline computes."""

    def test_fit_and_serve_identical_traced_and_untraced(
        self, fitted_factory, small_db
    ):
        untraced = fitted_factory()
        with tracing("fit") as trace:
            traced = fitted_factory()
        assert _rule_signature(traced) == _rule_signature(untraced)
        assert trace.counters["mine.rules_emitted"] > 0

        baskets = [t.nontarget_sales for t in small_db.transactions]
        plain = untraced.recommend_many(baskets)
        with tracing("serve") as serve_trace:
            observed = traced.recommend_many(baskets)
        assert [
            (rec.item_id, rec.promo_code) for rec in observed
        ] == [(rec.item_id, rec.promo_code) for rec in plain]
        assert serve_trace.counters["serve.baskets"] == len(baskets)

    def test_whatif_identical_traced_and_untraced(self, fitted_factory):
        from repro.whatif import what_if

        recommender = fitted_factory().require_fitted_recommender()
        basket = [Sale("Perfume", "P1")]
        plain = what_if(recommender, basket)
        with tracing("whatif"):
            observed = what_if(recommender, basket)
        assert observed == plain

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_sweep_identical_traced_and_untraced(self, tiny_dataset_i, n_jobs):
        kwargs = dict(
            min_supports=(0.02, 0.05),
            systems=("PROF+MOA", "MPI"),
            k_folds=2,
            max_body_size=1,
        )
        plain = run_support_sweep(tiny_dataset_i, **kwargs)
        with tracing("sweep") as trace:
            observed = run_support_sweep(
                tiny_dataset_i, n_jobs=n_jobs, **kwargs
            )
        for metric in ("gain", "hit_rate", "model_size"):
            assert observed.series(metric) == plain.series(metric)
        # The worker/sequential split must not lose telemetry: mining ran
        # for the rule-based system either way.
        assert trace.counters["mine.rules_emitted"] > 0
        assert trace.counters["serve.baskets"] > 0

    def test_parallel_sweep_merges_worker_traces(self, tiny_dataset_i):
        kwargs = dict(
            min_supports=(0.02,),
            systems=("PROF+MOA", "MPI"),
            k_folds=2,
            max_body_size=1,
        )
        with tracing("sequential") as seq_trace:
            run_support_sweep(tiny_dataset_i, n_jobs=1, **kwargs)
        with tracing("parallel") as par_trace:
            run_support_sweep(tiny_dataset_i, n_jobs=2, **kwargs)
        # Deterministic work -> identical counter totals after merging.
        assert par_trace.counters == seq_trace.counters
        # The parallel tree records where each cell ran.
        sweep_span = next(s for s in par_trace.spans if s.name == "sweep")
        labels = [c.name for c in sweep_span.children]
        assert any(label.startswith("worker[") for label in labels)
