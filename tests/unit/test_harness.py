"""Unit tests for the experiment harness (paper systems + sweeps)."""

from __future__ import annotations

import pytest

from repro.baselines.knn import KNNRecommender
from repro.baselines.mpi import MPIRecommender
from repro.core.miner import ProfitMiner
from repro.errors import EvaluationError
from repro.eval.harness import (
    PAPER_SYSTEMS,
    eval_config_for_system,
    paper_recommenders,
    run_single_support,
    run_support_sweep,
)
from repro.eval.metrics import EvalConfig


class TestPaperRecommenders:
    def test_all_six_systems(self, small_hierarchy):
        factories = paper_recommenders(small_hierarchy, min_support=0.05)
        assert tuple(factories) == PAPER_SYSTEMS
        built = {name: factory() for name, factory in factories.items()}
        assert isinstance(built["PROF+MOA"], ProfitMiner)
        assert built["PROF+MOA"].config.use_moa
        assert not built["PROF-MOA"].config.use_moa
        assert built["CONF+MOA"].profit_model.name == "binary"
        assert isinstance(built["kNN"], KNNRecommender)
        assert isinstance(built["MPI"], MPIRecommender)

    def test_names_match_labels(self, small_hierarchy):
        for name, factory in paper_recommenders(
            small_hierarchy, min_support=0.05
        ).items():
            assert factory().name == name

    def test_factories_build_fresh_instances(self, small_hierarchy):
        factory = paper_recommenders(small_hierarchy, min_support=0.05)["PROF+MOA"]
        assert factory() is not factory()

    def test_unknown_system_rejected(self, small_hierarchy):
        with pytest.raises(EvaluationError, match="unknown systems"):
            paper_recommenders(small_hierarchy, 0.05, systems=("Bogus",))

    def test_knn_profit_variant_available(self, small_hierarchy):
        factories = paper_recommenders(
            small_hierarchy, 0.05, systems=("kNN(profit)",)
        )
        assert factories["kNN(profit)"]().profit_post_processing


class TestEvalConfigForSystem:
    def test_moa_systems_judged_with_moa(self):
        for system in ("PROF+MOA", "CONF+MOA", "kNN", "kNN(profit)", "MPI"):
            assert eval_config_for_system(None, system).moa_hit_test

    def test_no_moa_systems_judged_exactly(self):
        for system in ("PROF-MOA", "CONF-MOA"):
            assert not eval_config_for_system(None, system).moa_hit_test

    def test_base_config_fields_preserved(self):
        base = EvalConfig(seed=99)
        assert eval_config_for_system(base, "PROF-MOA").seed == 99


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self, tiny_dataset_i):
        return run_support_sweep(
            tiny_dataset_i,
            min_supports=(0.02, 0.05),
            systems=("PROF+MOA", "kNN", "MPI"),
            k_folds=3,
            max_body_size=1,
        )

    def test_rectangular_results(self, sweep):
        assert len(sweep.points) == 3 * 2
        systems = {p.system for p in sweep.points}
        assert systems == {"PROF+MOA", "kNN", "MPI"}

    def test_series_extraction(self, sweep):
        gains = sweep.series("gain")
        assert set(gains) == {"PROF+MOA", "kNN", "MPI"}
        assert [x for x, _ in gains["PROF+MOA"]] == [0.02, 0.05]
        sizes = sweep.series("model_size")
        assert all(v is None for _, v in sizes["MPI"])
        assert all(v >= 1 for _, v in sizes["PROF+MOA"])

    def test_unknown_metric_rejected(self, sweep):
        with pytest.raises(EvaluationError, match="metric"):
            sweep.series("bogus")

    def test_best_system(self, sweep):
        assert sweep.best_system(0.02) in {"PROF+MOA", "kNN", "MPI"}
        with pytest.raises(EvaluationError):
            sweep.best_system(0.5)

    def test_baselines_constant_across_supports(self, sweep):
        knn = dict(sweep.series("gain")["kNN"])
        assert knn[0.02] == knn[0.05]

    def test_empty_supports_rejected(self, tiny_dataset_i):
        with pytest.raises(EvaluationError, match="non-empty"):
            run_support_sweep(tiny_dataset_i, min_supports=())

    def test_best_system_tolerates_float_noise(self):
        from repro.eval.harness import SweepPoint, SweepResult

        # An accumulated support level drifts off the literal: exact
        # equality used to match nothing for such values.
        noisy = sum([0.005] * 6)  # 0.030000000000000002
        assert noisy != 0.03
        result = SweepResult(
            dataset_name="synthetic",
            min_supports=[noisy],
            points=[
                SweepPoint("PROF+MOA", noisy, gain=0.8, hit_rate=0.5, model_size=4),
                SweepPoint("kNN", noisy, gain=0.6, hit_rate=0.4, model_size=None),
            ],
        )
        assert result.best_system(0.03) == "PROF+MOA"
        assert result.best_system(noisy) == "PROF+MOA"
        with pytest.raises(EvaluationError, match="no sweep points"):
            result.best_system(0.05)


class TestSingleSupport:
    def test_returns_cv_per_system(self, tiny_dataset_i):
        results = run_single_support(
            tiny_dataset_i,
            0.05,
            systems=("MPI", "kNN"),
            k_folds=3,
        )
        assert set(results) == {"MPI", "kNN"}
        for cv in results.values():
            assert cv.k == 3
