"""Unit tests for the worker pool's pure pieces (config, protocol, merging)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.obs import Trace, merge_traces
from repro.serve.pool import PoolConfig, _decode_lines, _encode_message


class TestPoolConfig:
    def test_defaults_are_valid(self):
        config = PoolConfig()
        assert config.workers >= 1
        assert config.listener == "auto"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -1},
            {"listener": "proxy"},
            {"restart_backoff_s": 0.0},
            {"restart_backoff_s": -0.1},
            {"restart_backoff_s": 2.0, "restart_backoff_max_s": 1.0},
            {"restart_reset_s": -1.0},
            {"control_timeout_s": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValidationError):
            PoolConfig(**kwargs)

    @pytest.mark.parametrize("mode", ["auto", "reuse_port", "inherit"])
    def test_listener_modes(self, mode):
        assert PoolConfig(listener=mode).listener == mode


class TestControlProtocol:
    def test_round_trip_one_frame(self):
        message = {"op": "reload", "path": "m.json", "generation": 7}
        buffer = bytearray(_encode_message(message))
        assert _decode_lines(buffer) == [message]
        assert buffer == bytearray()

    def test_frames_are_newline_delimited(self):
        raw = _encode_message({"op": "ping", "id": 1})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1

    def test_multiple_frames_split(self):
        buffer = bytearray(
            _encode_message({"op": "ping", "id": 1})
            + _encode_message({"op": "ready", "port": 8321})
        )
        messages = _decode_lines(buffer)
        assert [m["op"] for m in messages] == ["ping", "ready"]
        assert buffer == bytearray()

    def test_partial_tail_stays_buffered(self):
        whole = _encode_message({"op": "ping", "id": 1})
        buffer = bytearray(whole + b'{"op": "rel')
        assert _decode_lines(buffer) == [{"op": "ping", "id": 1}]
        assert bytes(buffer) == b'{"op": "rel'
        # Completing the frame drains it.
        buffer.extend(b'oad"}\n')
        assert _decode_lines(buffer) == [{"op": "reload"}]
        assert buffer == bytearray()

    def test_empty_lines_are_skipped(self):
        buffer = bytearray(b"\n\n" + _encode_message({"op": "ping"}))
        assert _decode_lines(buffer) == [{"op": "ping"}]

    def test_unicode_survives(self):
        message = {"op": "reply", "error": "modèle inconnu — ü"}
        buffer = bytearray(_encode_message(message))
        assert _decode_lines(buffer) == [message]


class TestMergeTraces:
    def _snapshot(self, scans: int, hits: int, misses: int) -> dict:
        trace = Trace("worker")
        trace.count("postings.scans", scans)
        trace.cache_event("basket_memo", hits=hits, misses=misses)
        data = trace.to_dict()
        return {"counters": data["counters"], "caches": data["caches"]}

    def test_counters_sum_across_snapshots(self):
        merged = merge_traces(
            [self._snapshot(10, 3, 1), self._snapshot(5, 2, 2)]
        )
        assert merged.counters["postings.scans"] == 15
        assert merged.caches["basket_memo"]["hits"] == 5
        assert merged.caches["basket_memo"]["misses"] == 3

    def test_fresh_trace_each_call(self):
        """Aggregating cumulative snapshots twice must not double count."""
        snapshots = [self._snapshot(10, 0, 0)]
        first = merge_traces(snapshots)
        second = merge_traces(snapshots)
        assert first.counters["postings.scans"] == 10
        assert second.counters["postings.scans"] == 10

    def test_gauge_stats_take_max(self):
        a = Trace("a")
        a.cache_event("worlds", entries=3)
        b = Trace("b")
        b.cache_event("worlds", entries=5)
        merged = merge_traces(
            [
                {"counters": {}, "caches": a.to_dict()["caches"]},
                {"counters": {}, "caches": b.to_dict()["caches"]},
            ]
        )
        assert merged.caches["worlds"]["entries"] == 5

    def test_empty_iterable_merges_to_empty_trace(self):
        merged = merge_traces([])
        assert merged.counters == {}
        assert merged.caches == {}

    def test_name_is_settable(self):
        assert merge_traces([], name="pool").name == "pool"
