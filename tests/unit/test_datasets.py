"""Unit tests for the paper's dataset I / dataset II builders."""

from __future__ import annotations

import pytest

from repro.data.datasets import (
    DEFAULT_DISPERSION_PROFILE,
    DEFAULT_STEP_WEIGHTS,
    DatasetConfig,
    build_dataset,
    dataset_i_config,
    dataset_ii_config,
    normal_target_specs,
    zipf_target_specs,
)
from repro.data.pricing import PricingModel
from repro.data.quest import QuestConfig
from repro.errors import DataGenerationError


class TestTargetSpecs:
    def test_zipf_ratio(self):
        specs = zipf_target_specs()
        assert specs[0].weight / specs[1].weight == pytest.approx(5.0)
        assert specs[0].cost == 2.0 and specs[1].cost == 10.0

    def test_zipf_requires_two_costs(self):
        with pytest.raises(DataGenerationError):
            zipf_target_specs((1.0, 2.0, 3.0))

    def test_normal_specs_peak_at_mean(self):
        specs = normal_target_specs()
        weights = [s.weight for s in specs]
        assert len(specs) == 10
        peak = max(range(10), key=lambda i: weights[i])
        assert peak in (4, 5)  # mean 5.5 over 1..10
        assert weights[0] < weights[4]
        assert weights[9] < weights[5]

    def test_normal_costs_are_10i(self):
        specs = normal_target_specs()
        assert [s.cost for s in specs] == [10.0 * i for i in range(1, 11)]


class TestDatasetConfigValidation:
    def base(self, **kw):
        defaults = dict(
            name="t",
            n_transactions=10,
            quest=QuestConfig(n_items=20, n_patterns=4),
            targets=zipf_target_specs(),
        )
        defaults.update(kw)
        return DatasetConfig(**defaults)

    def test_happy(self):
        self.base()

    def test_bad_signal(self):
        with pytest.raises(DataGenerationError):
            self.base(signal_strength=1.5)

    def test_bad_dispersion(self):
        with pytest.raises(DataGenerationError):
            self.base(dispersion_profile=())
        with pytest.raises(DataGenerationError):
            self.base(dispersion_profile=(0.0, -0.5))
        with pytest.raises(DataGenerationError):
            self.base(dispersion_profile=(0.0, 0.0))

    def test_bad_step_weights(self):
        with pytest.raises(DataGenerationError):
            self.base(step_weights=(1.0,))
        with pytest.raises(DataGenerationError):
            self.base(step_weights=(-1.0, 1.0, 1.0, 1.0))

    def test_no_targets(self):
        with pytest.raises(DataGenerationError):
            self.base(targets=())

    def test_scaled(self):
        cfg = self.base()
        assert cfg.scaled(99).n_transactions == 99
        assert cfg.scaled(99).name == cfg.name


class TestBuildDataset:
    @pytest.fixture(scope="class")
    def ds(self):
        return build_dataset(
            dataset_i_config(n_transactions=400, n_items=60, n_patterns=18, seed=1)
        )

    def test_transaction_count(self, ds):
        assert len(ds.db) == 400

    def test_every_transaction_valid(self, ds):
        for t in ds.db:
            assert t.target_sale.item_id in ("T1", "T2")
            assert all(s.item_id.startswith("I") for s in t.nontarget_sales)
            assert all(s.quantity == 1.0 for s in t.nontarget_sales)

    def test_zipf_marginal_approximately_held(self, ds):
        # The 5:1 Zipf marginal is exact only in expectation: pairs are
        # sampled per item *window*, and a 60-item dataset has just six
        # windows, so the realized ratio is noisy.  Assert the direction and
        # that both targets occur.
        hist = ds.db.target_sale_histogram()
        t1 = sum(n for (item, _), n in hist.items() if item == "T1")
        t2 = sum(n for (item, _), n in hist.items() if item == "T2")
        assert t1 > 2 * t2
        assert t2 > 0

    def test_deterministic(self):
        kw = dict(n_transactions=100, n_items=40, n_patterns=12, seed=9)
        a = build_dataset(dataset_i_config(**kw))
        b = build_dataset(dataset_i_config(**kw))
        assert [t.target_sale for t in a.db] == [t.target_sale for t in b.db]
        assert [t.basket for t in a.db] == [t.basket for t in b.db]

    def test_seed_changes_data(self):
        a = build_dataset(dataset_i_config(n_transactions=100, n_items=40, seed=1))
        b = build_dataset(dataset_i_config(n_transactions=100, n_items=40, seed=2))
        assert [t.target_sale for t in a.db] != [t.target_sale for t in b.db]

    def test_hierarchy_covers_catalog(self, ds):
        ds.hierarchy.validate_against_catalog(ds.db.catalog)

    def test_profit_distribution_matches_ladders(self, ds):
        hist = ds.target_profit_distribution()
        valid = {
            round(j * 0.1 * cost, 6)
            for cost in (2.0, 10.0)
            for j in range(1, 5)
        }
        assert set(hist) <= valid
        assert sum(hist.values()) == len(ds.db)

    def test_dataset_ii_ten_targets(self):
        ds2 = build_dataset(
            dataset_ii_config(n_transactions=300, n_items=60, n_patterns=18, seed=2)
        )
        targets = {t.target_sale.item_id for t in ds2.db}
        assert targets <= {f"T{i:02d}" for i in range(1, 11)}
        assert len(targets) >= 5  # normal distribution reaches several items

    def test_dataset_ii_middle_items_most_frequent(self):
        ds2 = build_dataset(
            dataset_ii_config(n_transactions=600, n_items=60, n_patterns=18, seed=2)
        )
        counts: dict[str, int] = {}
        for t in ds2.db:
            counts[t.target_sale.item_id] = counts.get(t.target_sale.item_id, 0) + 1
        extremes = counts.get("T01", 0) + counts.get("T10", 0)
        middle = counts.get("T05", 0) + counts.get("T06", 0)
        assert middle > extremes

    def test_signal_strength_zero_removes_association(self):
        """With no signal, baskets carry no information about targets."""
        import dataclasses

        cfg = dataset_i_config(
            n_transactions=300, n_items=40, n_patterns=12, seed=4
        )
        cfg = dataclasses.replace(cfg, signal_strength=0.0)
        ds = build_dataset(cfg)
        assert len(ds.db) == 300  # still builds fine

    def test_defaults_documented(self):
        assert len(DEFAULT_STEP_WEIGHTS) == PricingModel().m
        assert sum(DEFAULT_DISPERSION_PROFILE) == pytest.approx(1.0)


class TestStreamingGeneration:
    """iter_dataset_transactions is the exact streaming twin of build_dataset."""

    def test_streamed_transactions_match_batch(self):
        from repro.data.datasets import dataset_catalog, iter_dataset_transactions

        config = dataset_i_config(n_transactions=150, n_items=40, seed=9)
        batch = build_dataset(config).db.transactions
        streamed = list(iter_dataset_transactions(config))
        assert streamed == batch
        # Passing a prebuilt catalog must not change the RNG streams.
        catalog = dataset_catalog(config)
        assert list(iter_dataset_transactions(config, catalog)) == batch

    def test_streamed_dataset_ii_matches_batch(self):
        from repro.data.datasets import iter_dataset_transactions

        config = dataset_ii_config(n_transactions=120, n_items=40, seed=2)
        assert (
            list(iter_dataset_transactions(config))
            == build_dataset(config).db.transactions
        )
