"""Unit tests for evaluation metrics (gain, hit rate, profit ranges)."""

from __future__ import annotations

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.recommender import Recommendation, Recommender
from repro.core.sales import TransactionDB
from repro.errors import EvaluationError
from repro.eval.behavior import behavior_x2_y30
from repro.eval.metrics import EvalConfig, EvalResult, TransactionOutcome, evaluate
from repro.obs.trace import tracing


class ConstantRecommender(Recommender):
    """Test double recommending one fixed pair."""

    def __init__(self, item_id: str, promo_code: str) -> None:
        super().__init__()
        self.name = f"const({item_id},{promo_code})"
        self._pair = (item_id, promo_code)
        self._fitted = True

    def fit(self, db: TransactionDB) -> "ConstantRecommender":
        return self

    def recommend(self, basket) -> Recommendation:
        return Recommendation(*self._pair)


class TestEvaluate:
    def test_cheapest_head_hits_every_sunchip_sale(self, small_db, small_hierarchy):
        rec = ConstantRecommender("Sunchip", "L")
        result = evaluate(rec, small_db, small_hierarchy)
        # 59 of 60 transactions bought Sunchip (1 bought Diamond)
        assert result.hit_rate == pytest.approx(59 / 60)

    def test_gain_saving_moa(self, small_db, small_hierarchy):
        rec = ConstantRecommender("Sunchip", "L")
        result = evaluate(rec, small_db, small_hierarchy)
        # every hit credits the L profit of 1.8
        expected_generated = 59 * 1.8
        assert result.generated_profit == pytest.approx(expected_generated)
        assert result.gain == pytest.approx(
            expected_generated / small_db.total_recorded_profit()
        )

    def test_gain_capped_at_one_for_saving_moa(self, small_db, small_hierarchy):
        for code in ("L", "M", "H"):
            result = evaluate(
                ConstantRecommender("Sunchip", code), small_db, small_hierarchy
            )
            assert result.gain <= 1.0 + 1e-9

    def test_exact_hit_test_without_moa(self, small_db, small_hierarchy):
        config = EvalConfig(moa_hit_test=False)
        result = evaluate(
            ConstantRecommender("Sunchip", "L"), small_db, small_hierarchy, config
        )
        assert result.hit_rate == pytest.approx(29 / 60)  # only exact L sales

    def test_behavior_lifts_gain(self, small_db, small_hierarchy):
        base = evaluate(
            ConstantRecommender("Sunchip", "L"), small_db, small_hierarchy
        )
        lifted = evaluate(
            ConstantRecommender("Sunchip", "L"),
            small_db,
            small_hierarchy,
            EvalConfig(behavior=behavior_x2_y30(), seed=1),
        )
        assert lifted.generated_profit > base.generated_profit
        multipliers = {o.quantity_multiplier for o in lifted.outcomes}
        assert multipliers <= {1.0, 2.0}

    def test_behavior_never_fires_on_exact_price(self, small_db, small_hierarchy):
        result = evaluate(
            ConstantRecommender("Sunchip", "H"),
            small_db,
            small_hierarchy,
            EvalConfig(behavior=behavior_x2_y30(), seed=1),
        )
        # H is the top of the ladder: hits are exact, gap 0, no multiplier.
        assert all(o.quantity_multiplier == 1.0 for o in result.outcomes)

    def test_empty_validation_rejected(self, small_db, small_hierarchy):
        empty = TransactionDB(catalog=small_db.catalog, transactions=[])
        with pytest.raises(EvaluationError, match="empty"):
            evaluate(ConstantRecommender("Sunchip", "L"), empty, small_hierarchy)

    def test_works_with_fitted_miner(self, small_db, small_hierarchy):
        miner = ProfitMiner(
            small_hierarchy,
            config=ProfitMinerConfig(mining=MinerConfig(min_support=0.05, max_body_size=2)),
        ).fit(small_db)
        result = evaluate(miner, small_db, small_hierarchy)
        assert result.model_size == miner.model_size
        assert 0 < result.gain <= 1.0


class TestEvalResult:
    def make(self, rows) -> EvalResult:
        outcomes = [
            TransactionOutcome(
                tid=i,
                recommendation=Recommendation("T", "P"),
                hit=hit,
                achieved_profit=achieved,
                recorded_profit=recorded,
            )
            for i, (hit, achieved, recorded) in enumerate(rows)
        ]
        return EvalResult(recommender_name="x", outcomes=outcomes)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            EvalResult(recommender_name="x", outcomes=[])

    def test_zero_recorded_profit_rejected(self):
        result = self.make([(True, 1.0, 0.0)])
        with pytest.raises(EvaluationError, match="gain undefined"):
            result.gain

    def test_profit_ranges_bucket_by_recorded(self):
        rows = [
            (True, 1.0, 1.0),   # Low (max 9 → [0,3))
            (True, 1.0, 2.0),   # Low
            (False, 0.0, 5.0),  # Medium
            (True, 9.0, 9.0),   # High
        ]
        ranges = self.make(rows).hit_rate_by_profit_range()
        assert [r[0] for r in ranges] == ["Low", "Medium", "High"]
        assert ranges[0][1] == pytest.approx(1.0)
        assert ranges[1][1] == pytest.approx(0.0)
        assert ranges[2][1] == pytest.approx(1.0)
        assert [r[2] for r in ranges] == [2, 1, 1]

    def test_empty_range_reports_zero(self):
        ranges = self.make([(True, 1.0, 1.0), (True, 9.0, 9.0)]).hit_rate_by_profit_range()
        assert ranges[1] == ("Medium", 0.0, 0)

    def test_custom_range_count(self):
        ranges = self.make([(True, 1.0, 1.0), (True, 2.0, 2.0)]).hit_rate_by_profit_range(2)
        assert [r[0] for r in ranges] == ["range1", "range2"]

    def test_bad_range_count(self):
        with pytest.raises(EvaluationError):
            self.make([(True, 1.0, 1.0)]).hit_rate_by_profit_range(0)


class TestEvalCacheLRU:
    """Regression tests for the judge/eval-prep caches' LRU eviction.

    The caches used to be flushed wholesale at the size limit, throwing
    away 16 live entries to make room for one; they must instead evict
    only the single least-recently-used entry, with a cache hit counting
    as a use.
    """

    def test_judge_cache_evicts_only_the_oldest(self, small_db, small_hierarchy):
        from repro.core.hierarchy import ConceptHierarchy
        from repro.eval import metrics as metrics_mod

        metrics_mod._judge_cache.clear()
        limit = metrics_mod._JUDGE_CACHE_LIMIT
        hierarchies = [
            ConceptHierarchy.for_catalog(small_db.catalog)
            for _ in range(limit)
        ]
        judges = [
            metrics_mod._judge_for(small_db, hierarchy, True)
            for hierarchy in hierarchies
        ]
        # A hit counts as a use: entry 0 moves to the back of the order.
        assert metrics_mod._judge_for(small_db, hierarchies[0], True) is judges[0]

        with tracing("lru") as trace:
            extra = ConceptHierarchy.for_catalog(small_db.catalog)
            metrics_mod._judge_for(small_db, extra, True)
        assert len(metrics_mod._judge_cache) == limit
        assert trace.caches["eval.judge_cache"]["evictions"] == 1

        # The 17th judge evicted exactly one entry — the true oldest
        # (entry 1); the recently-used entry 0 and everything younger
        # survived with object identity intact.
        assert metrics_mod._judge_for(small_db, hierarchies[0], True) is judges[0]
        for idx in range(2, limit):
            assert (
                metrics_mod._judge_for(small_db, hierarchies[idx], True)
                is judges[idx]
            )
        assert (
            metrics_mod._judge_for(small_db, hierarchies[1], True)
            is not judges[1]
        )

    def test_eval_prep_cache_evicts_only_the_oldest(self, small_db):
        from repro.eval import metrics as metrics_mod

        metrics_mod._eval_prep_cache.clear()
        limit = metrics_mod._EVAL_PREP_CACHE_LIMIT
        dbs = [
            small_db.subset(list(range(5 + idx))) for idx in range(limit)
        ]
        baskets = [metrics_mod._eval_prep(db)[0] for db in dbs]
        # Hit on the oldest entry: it must move to the back of the order.
        assert metrics_mod._eval_prep(dbs[0])[0] is baskets[0]

        with tracing("lru") as trace:
            extra = small_db.subset(list(range(30)))
            metrics_mod._eval_prep(extra)
        assert len(metrics_mod._eval_prep_cache) == limit
        assert trace.caches["eval.prep_cache"]["evictions"] == 1

        assert metrics_mod._eval_prep(dbs[0])[0] is baskets[0]
        assert metrics_mod._eval_prep(dbs[1])[0] is not baskets[1]
