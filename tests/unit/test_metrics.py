"""Unit tests for evaluation metrics (gain, hit rate, profit ranges)."""

from __future__ import annotations

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.recommender import Recommendation, Recommender
from repro.core.sales import TransactionDB
from repro.errors import EvaluationError
from repro.eval.behavior import behavior_x2_y30
from repro.eval.metrics import EvalConfig, EvalResult, TransactionOutcome, evaluate


class ConstantRecommender(Recommender):
    """Test double recommending one fixed pair."""

    def __init__(self, item_id: str, promo_code: str) -> None:
        super().__init__()
        self.name = f"const({item_id},{promo_code})"
        self._pair = (item_id, promo_code)
        self._fitted = True

    def fit(self, db: TransactionDB) -> "ConstantRecommender":
        return self

    def recommend(self, basket) -> Recommendation:
        return Recommendation(*self._pair)


class TestEvaluate:
    def test_cheapest_head_hits_every_sunchip_sale(self, small_db, small_hierarchy):
        rec = ConstantRecommender("Sunchip", "L")
        result = evaluate(rec, small_db, small_hierarchy)
        # 59 of 60 transactions bought Sunchip (1 bought Diamond)
        assert result.hit_rate == pytest.approx(59 / 60)

    def test_gain_saving_moa(self, small_db, small_hierarchy):
        rec = ConstantRecommender("Sunchip", "L")
        result = evaluate(rec, small_db, small_hierarchy)
        # every hit credits the L profit of 1.8
        expected_generated = 59 * 1.8
        assert result.generated_profit == pytest.approx(expected_generated)
        assert result.gain == pytest.approx(
            expected_generated / small_db.total_recorded_profit()
        )

    def test_gain_capped_at_one_for_saving_moa(self, small_db, small_hierarchy):
        for code in ("L", "M", "H"):
            result = evaluate(
                ConstantRecommender("Sunchip", code), small_db, small_hierarchy
            )
            assert result.gain <= 1.0 + 1e-9

    def test_exact_hit_test_without_moa(self, small_db, small_hierarchy):
        config = EvalConfig(moa_hit_test=False)
        result = evaluate(
            ConstantRecommender("Sunchip", "L"), small_db, small_hierarchy, config
        )
        assert result.hit_rate == pytest.approx(29 / 60)  # only exact L sales

    def test_behavior_lifts_gain(self, small_db, small_hierarchy):
        base = evaluate(
            ConstantRecommender("Sunchip", "L"), small_db, small_hierarchy
        )
        lifted = evaluate(
            ConstantRecommender("Sunchip", "L"),
            small_db,
            small_hierarchy,
            EvalConfig(behavior=behavior_x2_y30(), seed=1),
        )
        assert lifted.generated_profit > base.generated_profit
        multipliers = {o.quantity_multiplier for o in lifted.outcomes}
        assert multipliers <= {1.0, 2.0}

    def test_behavior_never_fires_on_exact_price(self, small_db, small_hierarchy):
        result = evaluate(
            ConstantRecommender("Sunchip", "H"),
            small_db,
            small_hierarchy,
            EvalConfig(behavior=behavior_x2_y30(), seed=1),
        )
        # H is the top of the ladder: hits are exact, gap 0, no multiplier.
        assert all(o.quantity_multiplier == 1.0 for o in result.outcomes)

    def test_empty_validation_rejected(self, small_db, small_hierarchy):
        empty = TransactionDB(catalog=small_db.catalog, transactions=[])
        with pytest.raises(EvaluationError, match="empty"):
            evaluate(ConstantRecommender("Sunchip", "L"), empty, small_hierarchy)

    def test_works_with_fitted_miner(self, small_db, small_hierarchy):
        miner = ProfitMiner(
            small_hierarchy,
            config=ProfitMinerConfig(mining=MinerConfig(min_support=0.05, max_body_size=2)),
        ).fit(small_db)
        result = evaluate(miner, small_db, small_hierarchy)
        assert result.model_size == miner.model_size
        assert 0 < result.gain <= 1.0


class TestEvalResult:
    def make(self, rows) -> EvalResult:
        outcomes = [
            TransactionOutcome(
                tid=i,
                recommendation=Recommendation("T", "P"),
                hit=hit,
                achieved_profit=achieved,
                recorded_profit=recorded,
            )
            for i, (hit, achieved, recorded) in enumerate(rows)
        ]
        return EvalResult(recommender_name="x", outcomes=outcomes)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            EvalResult(recommender_name="x", outcomes=[])

    def test_zero_recorded_profit_rejected(self):
        result = self.make([(True, 1.0, 0.0)])
        with pytest.raises(EvaluationError, match="gain undefined"):
            result.gain

    def test_profit_ranges_bucket_by_recorded(self):
        rows = [
            (True, 1.0, 1.0),   # Low (max 9 → [0,3))
            (True, 1.0, 2.0),   # Low
            (False, 0.0, 5.0),  # Medium
            (True, 9.0, 9.0),   # High
        ]
        ranges = self.make(rows).hit_rate_by_profit_range()
        assert [r[0] for r in ranges] == ["Low", "Medium", "High"]
        assert ranges[0][1] == pytest.approx(1.0)
        assert ranges[1][1] == pytest.approx(0.0)
        assert ranges[2][1] == pytest.approx(1.0)
        assert [r[2] for r in ranges] == [2, 1, 1]

    def test_empty_range_reports_zero(self):
        ranges = self.make([(True, 1.0, 1.0), (True, 9.0, 9.0)]).hit_rate_by_profit_range()
        assert ranges[1] == ("Medium", 0.0, 0)

    def test_custom_range_count(self):
        ranges = self.make([(True, 1.0, 1.0), (True, 2.0, 2.0)]).hit_rate_by_profit_range(2)
        assert [r[0] for r in ranges] == ["range1", "range2"]

    def test_bad_range_count(self):
        with pytest.raises(EvaluationError):
            self.make([(True, 1.0, 1.0)]).hit_rate_by_profit_range(0)
