"""Unit tests for the serving daemon's pure pieces (HTTP, config, parsing)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ValidationError
from repro.serve import ServeConfig, trace_sample_period
from repro.serve.daemon import _parse_basket, _parse_sale
from repro.serve.http import (
    MAX_HEADER_BYTES,
    HeadCache,
    HttpError,
    Request,
    json_response,
    read_request,
    render_response,
)


def parse_bytes(
    raw: bytes, head_cache: HeadCache | None = None
) -> Request | None:
    """Drive :func:`read_request` over an in-memory stream."""

    async def run() -> Request | None:
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, head_cache)

    return asyncio.run(run())


class TestReadRequest:
    def test_parses_post_with_body(self):
        body = b'{"basket": []}'
        raw = (
            b"POST /recommend HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse_bytes(raw)
        assert request is not None
        assert request.method == "POST"
        assert request.path == "/recommend"
        assert request.headers["content-type"] == "application/json"
        assert request.body == body
        assert request.json() == {"basket": []}
        assert request.keep_alive

    def test_get_without_body(self):
        request = parse_bytes(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert request is not None
        assert (request.method, request.path) == ("GET", "/healthz")
        assert request.body == b""
        assert request.json() == {}

    def test_connection_close_header(self):
        request = parse_bytes(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert request is not None
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_bytes(b"") is None

    def test_truncated_head_raises_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(b"GET /healthz HTT")
        assert excinfo.value.status == 400

    def test_malformed_request_line_raises_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_bad_content_length_raises_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: pony\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_raises_413(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(raw)
        assert excinfo.value.status == 413

    def test_truncated_body_raises_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(raw)
        assert excinfo.value.status == 400

    def test_body_not_json_raises_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
        request = parse_bytes(raw)
        assert request is not None
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_oversized_header_block_raises_431(self):
        filler = b"X-Filler: " + b"a" * MAX_HEADER_BYTES + b"\r\n"
        raw = b"GET /healthz HTTP/1.1\r\n" + filler + b"\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(raw)
        assert excinfo.value.status == 431

    def test_pipelined_second_request_raises_400(self):
        one = b"GET /healthz HTTP/1.1\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(one + one)  # second request sent before a response
        assert excinfo.value.status == 400
        assert "pipelined" in str(excinfo.value)

    def test_pipelined_bytes_after_body_raise_400(self):
        body = b'{"basket": []}'
        raw = (
            b"POST /recommend HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
            + b"GET /stats HTTP/1.1\r\n\r\n"
        )
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(raw)
        assert excinfo.value.status == 400

    def test_sequential_keep_alive_requests_still_parse(self):
        """Back-to-back requests are fine when read one per response."""

        async def run() -> list[Request]:
            reader = asyncio.StreamReader()
            cache = HeadCache()
            head = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            reader.feed_data(head)
            first = await read_request(reader, cache)
            reader.feed_data(head)
            reader.feed_eof()
            second = await read_request(reader, cache)
            assert first is not None and second is not None
            return [first, second]

        first, second = asyncio.run(run())
        assert (first.method, first.path) == ("GET", "/healthz")
        # The second parse was served from the head cache: the exact
        # same headers dict object is reused.
        assert second.headers is first.headers


class TestHeadCache:
    HEAD = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"

    def test_miss_then_hit(self):
        cache = HeadCache()
        assert cache.get(self.HEAD) is None
        request = parse_bytes(self.HEAD, cache)
        assert request is not None
        parsed = cache.get(self.HEAD)
        assert parsed is not None
        assert parsed[:2] == ("GET", "/healthz")
        assert parse_bytes(self.HEAD, cache).headers is parsed[2]

    def test_cached_parse_matches_cold_parse(self):
        cache = HeadCache()
        body = b'{"basket": []}'
        raw = (
            b"POST /recommend HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        cold = parse_bytes(raw, cache)
        warm = parse_bytes(raw, cache)
        assert (cold.method, cold.path, cold.headers, cold.body) == (
            warm.method,
            warm.path,
            warm.headers,
            warm.body,
        )

    def test_eviction_keeps_cache_bounded(self):
        cache = HeadCache()
        for i in range(HeadCache.MAX_ENTRIES + 5):
            parse_bytes(f"GET /p{i} HTTP/1.1\r\n\r\n".encode(), cache)
        assert len(cache) == HeadCache.MAX_ENTRIES
        # Insertion-order eviction: the oldest heads are gone, the
        # newest survive.
        assert cache.get(b"GET /p0 HTTP/1.1\r\n\r\n") is None
        assert cache.get(
            f"GET /p{HeadCache.MAX_ENTRIES + 4} HTTP/1.1\r\n\r\n".encode()
        ) is not None


class TestResponses:
    def test_render_response_frames_body(self):
        raw = render_response(200, b"hi", "text/plain", keep_alive=True)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b"hi"
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 2" in head
        assert b"Connection: keep-alive" in head

    def test_json_response_round_trips(self):
        raw = json_response(503, {"status": "down"}, keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"503 Service Unavailable" in head
        assert b"Connection: close" in head
        assert json.loads(body) == {"status": "down"}

    def test_retry_after_header_emitted(self):
        raw = json_response(503, {"error": "full"}, retry_after=1)
        head, _, _body = raw.partition(b"\r\n\r\n")
        assert b"Retry-After: 1" in head
        # And absent when not asked for.
        assert b"Retry-After" not in json_response(503, {"error": "full"})

    def test_cached_head_fragment_matches_cold_render(self):
        # Render twice: the second call reuses the precomputed fragment
        # and must produce byte-identical framing.
        first = render_response(200, b"abc", "application/json", True)
        second = render_response(200, b"xyz", "application/json", True)
        head_1, _, body_1 = first.partition(b"\r\n\r\n")
        head_2, _, body_2 = second.partition(b"\r\n\r\n")
        assert head_1 == head_2
        assert (body_1, body_2) == (b"abc", b"xyz")

    def test_431_reason_phrase(self):
        raw = render_response(431, b"", "application/json", False)
        assert raw.startswith(b"HTTP/1.1 431 Request Header Fields Too Large")


class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.max_batch_size >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_linger_ms": -1.0},
            {"trace_sample_period": -1},
            {"poll_interval_s": -0.5},
            {"max_queue_depth": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValidationError):
            ServeConfig(**kwargs)


class TestTraceSamplePeriod:
    def test_zero_disables(self):
        assert trace_sample_period(0.0) == 0

    def test_one_traces_everything(self):
        assert trace_sample_period(1.0) == 1

    def test_fraction_becomes_stride(self):
        assert trace_sample_period(0.5) == 2
        assert trace_sample_period(0.1) == 10
        assert trace_sample_period(0.001) == 1000

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_out_of_range_rejected(self, rate):
        with pytest.raises(ValidationError):
            trace_sample_period(rate)


class TestBasketParsing:
    def test_parses_sales_with_aliases_and_default_quantity(self):
        sales = _parse_basket(
            [
                {"item": "Bread", "promo": "P1"},
                {"item_id": "Perfume", "promo_code": "P1", "quantity": 2},
            ]
        )
        assert [(s.item_id, s.promo_code, s.quantity) for s in sales] == [
            ("Bread", "P1", 1.0),
            ("Perfume", "P1", 2.0),
        ]

    def test_empty_basket_allowed(self):
        assert _parse_basket([]) == []

    @pytest.mark.parametrize(
        "entry",
        [
            "not-a-dict",
            {"promo": "P1"},
            {"item": "Bread"},
            {"item": 7, "promo": "P1"},
            {"item": "Bread", "promo": "P1", "quantity": "many"},
            {"item": "Bread", "promo": "P1", "quantity": True},
            {"item": "Bread", "promo": "P1", "quantity": -1},
            {"item": "", "promo": "P1"},
        ],
    )
    def test_malformed_sale_raises_400(self, entry):
        with pytest.raises(HttpError) as excinfo:
            _parse_sale(entry)
        assert excinfo.value.status == 400

    def test_basket_must_be_list(self):
        with pytest.raises(HttpError) as excinfo:
            _parse_basket({"item": "Bread"})
        assert excinfo.value.status == 400
