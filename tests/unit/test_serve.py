"""Unit tests for the serving daemon's pure pieces (HTTP, config, parsing)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ValidationError
from repro.serve import ServeConfig, trace_sample_period
from repro.serve.daemon import _parse_basket, _parse_sale
from repro.serve.http import (
    HttpError,
    Request,
    json_response,
    read_request,
    render_response,
)


def parse_bytes(raw: bytes) -> Request | None:
    """Drive :func:`read_request` over an in-memory stream."""

    async def run() -> Request | None:
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestReadRequest:
    def test_parses_post_with_body(self):
        body = b'{"basket": []}'
        raw = (
            b"POST /recommend HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse_bytes(raw)
        assert request is not None
        assert request.method == "POST"
        assert request.path == "/recommend"
        assert request.headers["content-type"] == "application/json"
        assert request.body == body
        assert request.json() == {"basket": []}
        assert request.keep_alive

    def test_get_without_body(self):
        request = parse_bytes(b"GET /healthz HTTP/1.1\r\n\r\n")
        assert request is not None
        assert (request.method, request.path) == ("GET", "/healthz")
        assert request.body == b""
        assert request.json() == {}

    def test_connection_close_header(self):
        request = parse_bytes(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert request is not None
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse_bytes(b"") is None

    def test_truncated_head_raises_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(b"GET /healthz HTT")
        assert excinfo.value.status == 400

    def test_malformed_request_line_raises_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_bad_content_length_raises_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: pony\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_raises_413(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(raw)
        assert excinfo.value.status == 413

    def test_truncated_body_raises_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        with pytest.raises(HttpError) as excinfo:
            parse_bytes(raw)
        assert excinfo.value.status == 400

    def test_body_not_json_raises_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"
        request = parse_bytes(raw)
        assert request is not None
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_render_response_frames_body(self):
        raw = render_response(200, b"hi", "text/plain", keep_alive=True)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b"hi"
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 2" in head
        assert b"Connection: keep-alive" in head

    def test_json_response_round_trips(self):
        raw = json_response(503, {"status": "down"}, keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"503 Service Unavailable" in head
        assert b"Connection: close" in head
        assert json.loads(body) == {"status": "down"}


class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.max_batch_size >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_linger_ms": -1.0},
            {"trace_sample_period": -1},
            {"poll_interval_s": -0.5},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValidationError):
            ServeConfig(**kwargs)


class TestTraceSamplePeriod:
    def test_zero_disables(self):
        assert trace_sample_period(0.0) == 0

    def test_one_traces_everything(self):
        assert trace_sample_period(1.0) == 1

    def test_fraction_becomes_stride(self):
        assert trace_sample_period(0.5) == 2
        assert trace_sample_period(0.1) == 10
        assert trace_sample_period(0.001) == 1000

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_out_of_range_rejected(self, rate):
        with pytest.raises(ValidationError):
            trace_sample_period(rate)


class TestBasketParsing:
    def test_parses_sales_with_aliases_and_default_quantity(self):
        sales = _parse_basket(
            [
                {"item": "Bread", "promo": "P1"},
                {"item_id": "Perfume", "promo_code": "P1", "quantity": 2},
            ]
        )
        assert [(s.item_id, s.promo_code, s.quantity) for s in sales] == [
            ("Bread", "P1", 1.0),
            ("Perfume", "P1", 2.0),
        ]

    def test_empty_basket_allowed(self):
        assert _parse_basket([]) == []

    @pytest.mark.parametrize(
        "entry",
        [
            "not-a-dict",
            {"promo": "P1"},
            {"item": "Bread"},
            {"item": 7, "promo": "P1"},
            {"item": "Bread", "promo": "P1", "quantity": "many"},
            {"item": "Bread", "promo": "P1", "quantity": True},
            {"item": "Bread", "promo": "P1", "quantity": -1},
            {"item": "", "promo": "P1"},
        ],
    )
    def test_malformed_sale_raises_400(self, entry):
        with pytest.raises(HttpError) as excinfo:
            _parse_sale(entry)
        assert excinfo.value.status == 400

    def test_basket_must_be_list(self):
        with pytest.raises(HttpError) as excinfo:
            _parse_basket({"item": "Bread"})
        assert excinfo.value.status == 400
