"""Unit tests for the figure-reproduction experiment drivers."""

from __future__ import annotations

import pytest

from repro.eval.experiments import (
    ExperimentScale,
    behavior_gain,
    gain_and_size_sweep,
    get_dataset,
    knn_postprocessing_delta,
    profit_distribution,
    profit_range_hit_rates,
    scale_from_env,
)
from repro.errors import EvaluationError


@pytest.fixture(scope="module")
def tiny() -> ExperimentScale:
    return ExperimentScale.tiny()


class TestScale:
    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert scale_from_env().label == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "PAPER")
        assert scale_from_env().label == "paper"
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env().label == "small"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(EvaluationError, match="REPRO_SCALE"):
            scale_from_env()

    def test_all_scales_constructible(self):
        for factory in (
            ExperimentScale.tiny,
            ExperimentScale.small,
            ExperimentScale.medium,
            ExperimentScale.paper,
        ):
            scale = factory()
            assert scale.n_transactions >= 100
            assert scale.min_supports


class TestDatasets:
    def test_cached_per_scale(self, tiny):
        assert get_dataset("I", tiny) is get_dataset("I", tiny)
        assert get_dataset("I", tiny) is not get_dataset("II", tiny)

    def test_unknown_dataset_rejected(self, tiny):
        with pytest.raises(EvaluationError, match="'I' or 'II'"):
            get_dataset("III", tiny)


class TestExperiments:
    def test_sweep_covers_all_panels(self, tiny):
        sweep = gain_and_size_sweep("I", tiny)
        assert sweep is gain_and_size_sweep("I", tiny)  # cached
        assert set(sweep.series("gain"))
        assert set(sweep.series("hit_rate"))
        assert set(sweep.series("model_size"))

    def test_profit_distribution_matches_ladder(self, tiny):
        hist = profit_distribution("I", tiny)
        assert sum(hist.values()) == tiny.n_transactions
        assert all(p > 0 for p in hist)

    def test_profit_range_rows(self, tiny):
        rows = profit_range_hit_rates("I", tiny)
        for system, ranges in rows.items():
            assert [r[0] for r in ranges] == ["Low", "Medium", "High"]
            assert all(0 <= r[1] <= 1 for r in ranges)

    def test_behavior_gain_exceeds_plain(self, tiny):
        gains = behavior_gain("I", tiny)
        assert "(x=2,y=30%)" in gains and "(x=3,y=40%)" in gains
        for label, per_system in gains.items():
            assert per_system, label
        x2 = gains["(x=2,y=30%)"]["PROF+MOA"]
        x3 = gains["(x=3,y=40%)"]["PROF+MOA"]
        assert x3 >= x2  # the stronger behavior lifts gain at least as much

    def test_knn_postprocessing_delta(self, tiny):
        gains = knn_postprocessing_delta("I", tiny)
        assert set(gains) == {"kNN", "kNN(profit)"}
        # the paper finds post-processing changes gain by only a few percent
        assert abs(gains["kNN"] - gains["kNN(profit)"]) < 0.5


class TestLearningCurve:
    def test_shape_and_validation(self, tiny):
        from repro.eval.experiments import learning_curve
        from repro.errors import EvaluationError
        import pytest

        curve = learning_curve(
            "I", tiny, fractions=(0.5, 1.0), systems=("MPI",)
        )
        assert set(curve) == {0.5, 1.0}
        assert all("MPI" in row for row in curve.values())
        with pytest.raises(EvaluationError, match="fractions"):
            learning_curve("I", tiny, fractions=(0.0,), systems=("MPI",))
