"""Unit tests for plain-text report rendering."""

from __future__ import annotations

from repro.eval.reporting import format_histogram, format_series, format_table


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(
            ["system", "gain"],
            [["PROF+MOA", 0.76], ["kNN", 0.4512349]],
            title="Fig 3(a)",
        )
        lines = text.splitlines()
        assert lines[0] == "Fig 3(a)"
        assert "0.7600" in text and "0.4512" in text
        header, rule = lines[1], lines[2]
        assert len(header) == len(rule)

    def test_none_rendered_as_dash(self):
        text = format_table(["a"], [[None]])
        assert "-" in text.splitlines()[-1]


class TestFormatSeries:
    def test_systems_as_columns(self):
        series = {
            "A": [(0.01, 1.0), (0.02, 2.0)],
            "B": [(0.01, 3.0)],
        }
        text = format_series(series, x_label="minsup")
        lines = text.splitlines()
        assert "minsup" in lines[1]
        assert "A" in lines[1] and "B" in lines[1]
        assert "3.0000" in text
        # missing (B, 0.02) cell rendered as dash
        assert lines[-1].strip().endswith("-")


class TestFormatHistogram:
    def test_bars_proportional(self):
        text = format_histogram({1.0: 10, 2.0: 40}, title="profits")
        lines = text.splitlines()
        assert lines[0] == "profits"
        short, long = lines[1], lines[2]
        assert long.count("#") == 40
        assert short.count("#") == 10

    def test_empty(self):
        assert "empty" in format_histogram({})
