"""Unit tests for the paper's pricing model (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.data.pricing import PricingModel, price_code_name
from repro.errors import DataGenerationError


class TestPricingModel:
    def test_paper_defaults(self):
        model = PricingModel()
        assert model.m == 4
        assert model.delta == pytest.approx(0.10)

    def test_nontarget_cost_is_c_over_i(self):
        model = PricingModel(max_cost=10.0)
        assert model.nontarget_cost(1) == pytest.approx(10.0)
        assert model.nontarget_cost(4) == pytest.approx(2.5)

    def test_price_ladder_formula(self):
        model = PricingModel()
        ladder = model.price_ladder(2.0)
        assert [p.code for p in ladder] == ["P1", "P2", "P3", "P4"]
        assert [p.price for p in ladder] == pytest.approx([2.2, 2.4, 2.6, 2.8])
        assert all(p.cost == 2.0 for p in ladder)
        assert all(p.packing == 1 for p in ladder)

    def test_profit_at_step_is_j_delta_cost(self):
        model = PricingModel()
        for j in range(1, 5):
            assert model.profit_at_step(2.0, j) == pytest.approx(j * 0.1 * 2.0)
            ladder = model.price_ladder(2.0)
            assert ladder[j - 1].profit == pytest.approx(model.profit_at_step(2.0, j))

    def test_item_builders(self):
        model = PricingModel()
        nt = model.nontarget_item("I0003", 3)
        assert not nt.is_target
        assert nt.promotions[0].cost == pytest.approx(10 / 3)
        t = model.target_item("T1", 2.0)
        assert t.is_target
        assert len(t.promotions) == 4

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            PricingModel(m=0)
        with pytest.raises(DataGenerationError):
            PricingModel(delta=0)
        with pytest.raises(DataGenerationError):
            PricingModel(max_cost=0)
        model = PricingModel()
        with pytest.raises(DataGenerationError):
            model.nontarget_cost(0)
        with pytest.raises(DataGenerationError):
            model.price_ladder(-1.0)
        with pytest.raises(DataGenerationError):
            model.profit_at_step(2.0, 5)

    def test_price_code_name(self):
        assert price_code_name(1) == "P1"
        assert price_code_name(12) == "P12"

    def test_ladder_is_totally_ordered_by_favorability(self):
        from repro.core.promotion import is_more_favorable

        ladder = PricingModel().price_ladder(5.0)
        for i, cheap in enumerate(ladder):
            for expensive in ladder[i + 1 :]:
                assert is_more_favorable(cheap, expensive)
