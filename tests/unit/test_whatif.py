"""Unit tests for the what-if decision-surface analysis."""

from __future__ import annotations

import pytest

from repro.core import (
    ConceptHierarchy,
    Item,
    ItemCatalog,
    Sale,
    Transaction,
    TransactionDB,
)
from repro.core.generalized import GSale
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.errors import ValidationError
from repro.whatif import what_if

from tests.conftest import promo


@pytest.fixture
def fitted(small_hierarchy, small_db):
    return ProfitMiner(
        small_hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.05, max_body_size=2)
        ),
    ).fit(small_db)


class TestWhatIf:
    def test_covers_every_candidate_pair(self, fitted, small_db):
        options = what_if(
            fitted.require_fitted_recommender(), [Sale("Perfume", "P1")]
        )
        pairs = {(o.item_id, o.promo_code) for o in options}
        expected = {
            (item.item_id, promo.code)
            for item in small_db.catalog.target_items
            for promo in item.promotions
        }
        assert pairs == expected

    def test_sorted_by_expected_profit(self, fitted):
        options = what_if(
            fitted.require_fitted_recommender(), [Sale("Perfume", "P1")]
        )
        values = [o.expected_profit for o in options]
        assert values == sorted(values, reverse=True)

    def test_top_option_matches_mpf_choice(self, fitted):
        recommender = fitted.require_fitted_recommender()
        basket = [Sale("Perfume", "P1")]
        top = what_if(recommender, basket)[0]
        pick = recommender.recommend(basket)
        assert (top.item_id, top.promo_code) == (pick.item_id, pick.promo_code)

    def test_expected_profit_is_acceptance_times_margin_times_quantity(
        self, fitted
    ):
        for option in what_if(
            fitted.require_fitted_recommender(), [Sale("Bread", "P1")]
        ):
            assert option.expected_profit == pytest.approx(
                option.acceptance_estimate
                * option.profit_per_package
                * option.quantity_estimate
            )
            assert 0 <= option.acceptance_estimate <= 1
            assert option.quantity_estimate > 0

    def test_unsupported_candidates_get_zero(self, fitted):
        options = what_if(
            fitted.require_fitted_recommender(), [Sale("Bread", "P1")]
        )
        unsupported = [o for o in options if o.supporting_rule is None]
        for option in unsupported:
            assert option.acceptance_estimate == 0.0
            assert option.expected_profit == 0.0

    def test_describe_readable(self, fitted):
        option = what_if(
            fitted.require_fitted_recommender(), [Sale("Perfume", "P1")]
        )[0]
        text = option.describe()
        assert "E[profit]" in text and option.item_id in text
        assert "qty≈" in text


@pytest.fixture
def quantity_fitted():
    """A world where the best offer is a cheap item bought in bulk.

    Gem sells one package at $10 profit per hit; Gum sells fifty packages
    at $1 profit each, $50 per hit.  Ranking offers by
    ``confidence × profit_per_package`` alone — the pre-fix behaviour —
    would put Gem on top and contradict the MPF recommendation.
    """
    catalog = ItemCatalog.from_items(
        [
            Item("Trigger", (promo("T1", 1.0, 0.5),)),
            Item("Gem", (promo("G", 11.0, 1.0),), is_target=True),
            Item("Gum", (promo("U", 2.0, 1.0),), is_target=True),
        ]
    )
    hierarchy = ConceptHierarchy.for_catalog(catalog)
    transactions = [
        Transaction(tid, (Sale("Trigger", "T1"),), Sale("Gem", "G", 1.0))
        for tid in range(10)
    ] + [
        Transaction(tid, (Sale("Trigger", "T1"),), Sale("Gum", "U", 50.0))
        for tid in range(10, 20)
    ]
    db = TransactionDB(catalog=catalog, transactions=transactions)
    return ProfitMiner(
        hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.1, max_body_size=1)
        ),
    ).fit(db)


class TestQuantityWeighting:
    def test_heterogeneous_quantities_top_row_matches_mpf(
        self, quantity_fitted
    ):
        recommender = quantity_fitted.require_fitted_recommender()
        basket = [Sale("Trigger", "T1")]
        options = what_if(recommender, basket)
        pick = recommender.recommend(basket)
        top = options[0]
        assert (top.item_id, top.promo_code) == (pick.item_id, pick.promo_code)
        assert (top.item_id, top.promo_code) == ("Gum", "U")

    def test_quantity_estimate_reflects_credited_volume(self, quantity_fitted):
        options = what_if(
            quantity_fitted.require_fitted_recommender(),
            [Sale("Trigger", "T1")],
        )
        by_item = {option.item_id: option for option in options}
        gum, gem = by_item["Gum"], by_item["Gem"]
        assert gum.quantity_estimate == pytest.approx(50.0)
        assert gem.quantity_estimate == pytest.approx(1.0)
        # $0.5 × $1 × 50 = $25 beats $0.5 × $10 × 1 = $5, matching the
        # rules' Prof_re ordering even though Gem's per-package profit
        # is ten times Gum's.
        assert gum.expected_profit > gem.expected_profit
        assert gum.expected_profit == pytest.approx(
            gum.supporting_rule.stats.confidence
            * gum.supporting_rule.stats.average_profit_per_hit
        )


class TestPromoFreeHeads:
    def test_promo_free_candidate_head_raises(self, fitted, monkeypatch):
        recommender = fitted.require_fitted_recommender()
        bad_head = GSale.item("Sunchip")
        monkeypatch.setattr(
            type(recommender.moa),
            "all_candidate_heads",
            lambda self: [bad_head],
        )
        with pytest.raises(ValidationError, match="no promotion code"):
            what_if(recommender, [Sale("Perfume", "P1")])
