"""Unit tests for the what-if decision-surface analysis."""

from __future__ import annotations

import pytest

from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.sales import Sale
from repro.whatif import what_if


@pytest.fixture
def fitted(small_hierarchy, small_db):
    return ProfitMiner(
        small_hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.05, max_body_size=2)
        ),
    ).fit(small_db)


class TestWhatIf:
    def test_covers_every_candidate_pair(self, fitted, small_db):
        options = what_if(
            fitted.require_fitted_recommender(), [Sale("Perfume", "P1")]
        )
        pairs = {(o.item_id, o.promo_code) for o in options}
        expected = {
            (item.item_id, promo.code)
            for item in small_db.catalog.target_items
            for promo in item.promotions
        }
        assert pairs == expected

    def test_sorted_by_expected_profit(self, fitted):
        options = what_if(
            fitted.require_fitted_recommender(), [Sale("Perfume", "P1")]
        )
        values = [o.expected_profit for o in options]
        assert values == sorted(values, reverse=True)

    def test_top_option_matches_mpf_choice(self, fitted):
        recommender = fitted.require_fitted_recommender()
        basket = [Sale("Perfume", "P1")]
        top = what_if(recommender, basket)[0]
        pick = recommender.recommend(basket)
        assert (top.item_id, top.promo_code) == (pick.item_id, pick.promo_code)

    def test_expected_profit_is_acceptance_times_margin(self, fitted):
        for option in what_if(
            fitted.require_fitted_recommender(), [Sale("Bread", "P1")]
        ):
            assert option.expected_profit == pytest.approx(
                option.acceptance_estimate * option.profit_per_package
            )
            assert 0 <= option.acceptance_estimate <= 1

    def test_unsupported_candidates_get_zero(self, fitted):
        options = what_if(
            fitted.require_fitted_recommender(), [Sale("Bread", "P1")]
        )
        unsupported = [o for o in options if o.supporting_rule is None]
        for option in unsupported:
            assert option.acceptance_estimate == 0.0
            assert option.expected_profit == 0.0

    def test_describe_readable(self, fitted):
        option = what_if(
            fitted.require_fitted_recommender(), [Sale("Perfume", "P1")]
        )[0]
        text = option.describe()
        assert "E[profit]" in text and option.item_id in text
