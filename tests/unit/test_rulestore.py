"""Unit tests for the shape-split columnar rule store."""

from __future__ import annotations

import pytest

from repro.core.generalized import GSale
from repro.core.miner import ProfitMiner, ProfitMinerConfig
from repro.core.mining import MinerConfig
from repro.core.rulestore import (
    COLUMNS,
    SHAPES,
    RuleStore,
    parse_symbol_spec,
    shape_of_body,
)
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def fitted():
    from repro.data.datasets import build_dataset, dataset_i_config

    # Big enough that every shape table is populated (33 rules: 1
    # default, 2 concept, 14 item, 16 promo at this seed).
    dataset = build_dataset(
        dataset_i_config(n_transactions=200, n_items=40, seed=7)
    )
    return ProfitMiner(
        dataset.hierarchy,
        config=ProfitMinerConfig(
            mining=MinerConfig(min_support=0.02, max_body_size=2)
        ),
    ).fit(dataset.db)


@pytest.fixture(scope="module")
def store(fitted):
    return fitted.require_fitted_recommender().rule_store


class TestShapeOfBody:
    def test_empty_body_is_default(self):
        assert shape_of_body(frozenset()) == "default"

    def test_all_concepts_is_concept(self):
        body = {GSale.concept("Food"), GSale.concept("Drink")}
        assert shape_of_body(body) == "concept"

    def test_any_item_without_promo_is_item(self):
        body = {GSale.concept("Food"), GSale.item("Bread")}
        assert shape_of_body(body) == "item"

    def test_promo_membership_dominates(self):
        body = {
            GSale.concept("Food"),
            GSale.item("Bread"),
            GSale.promo_form("Milk", "P1"),
        }
        assert shape_of_body(body) == "promo"


class TestParseSymbolSpec:
    def test_gsale_passthrough(self):
        gsale = GSale.item("Bread")
        assert parse_symbol_spec(gsale) is gsale

    def test_bracketed_concept(self):
        assert parse_symbol_spec("[Food]") == GSale.concept("Food")

    def test_promo_form(self):
        assert parse_symbol_spec("Bread@P1") == GSale.promo_form("Bread", "P1")

    def test_bare_item(self):
        assert parse_symbol_spec("Bread") == GSale.item("Bread")

    def test_whitespace_is_stripped(self):
        assert parse_symbol_spec(" [ Food ] ") == GSale.concept("Food")
        assert parse_symbol_spec(" Bread @ P1 ") == GSale.promo_form(
            "Bread", "P1"
        )

    @pytest.mark.parametrize("bad", ["", "   ", 7, None])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValidationError):
            parse_symbol_spec(bad)


class TestStoreStructure:
    def test_shapes_partition_the_rules(self, store, fitted):
        recommender = fitted.require_fitted_recommender()
        counts = store.shape_counts()
        assert set(counts) == set(SHAPES)
        assert sum(counts.values()) == recommender.model_size
        assert counts["default"] == 1  # exactly one empty-body rule
        # Every shape is exercised by this fixture.
        assert all(counts[shape] > 0 for shape in SHAPES)

    def test_location_round_trips_every_rank(self, store):
        seen = set()
        for rank in range(store.n_rules):
            shape, row = store.location_of(rank)
            assert 0 <= row < len(store.tables[shape])
            assert store.tables[shape].ranks[row] == rank
            seen.add((shape, row))
        assert len(seen) == store.n_rules

    def test_view_is_the_ranked_list(self, store, fitted):
        legacy = fitted.require_fitted_recommender().ranked_rules
        assert list(store.view) == list(legacy)
        assert store.view[-1] is legacy[len(legacy) - 1]
        assert store.view[1:3] == list(legacy)[1:3]

    def test_serving_columns_match_compiled(self, store, fitted):
        compiled = fitted.require_fitted_recommender().compiled
        assert store.global_postings() == compiled.postings
        assert store.default_ranks() == compiled.always_match
        assert store.body_sizes() == compiled.body_sizes
        assert store.all_body_ids() == compiled.body_ids

    def test_store_bytes_positive_and_stats_serializable(self, store):
        import json

        assert store.store_bytes() > 0
        json.dumps(store.stats())

    def test_column_round_trip(self, store):
        groups = {
            shape: table.to_columns() for shape, table in store.tables.items()
        }
        for columns in groups.values():
            assert set(columns) == set(COLUMNS)
        rebuilt = RuleStore.from_columns(store.symbols, groups, name=store.name)
        assert rebuilt.n_rules == store.n_rules
        assert rebuilt.global_postings() == store.global_postings()
        assert [s.rule for s in rebuilt.view] == [s.rule for s in store.view]

    def test_corrupt_rank_permutation_rejected(self, store):
        groups = {
            shape: table.to_columns() for shape, table in store.tables.items()
        }
        # Point two rules at the same global rank: no longer a permutation.
        for columns in groups.values():
            if len(columns["ranks"]) >= 2:
                columns["ranks"][0] = columns["ranks"][1]
                break
        with pytest.raises(ValidationError):
            RuleStore.from_columns(store.symbols, groups, name=store.name)

    def test_misaligned_columns_rejected(self, store):
        groups = {
            shape: table.to_columns() for shape, table in store.tables.items()
        }
        for columns in groups.values():
            if columns["ranks"]:
                del columns["heads"][0]
                break
        with pytest.raises(ValidationError):
            RuleStore.from_columns(store.symbols, groups, name=store.name)


class TestQuery:
    def test_no_filters_returns_every_rule(self, store):
        hits = store.query()
        assert len(hits) == store.n_rules
        assert [h.rank for h in hits] == list(range(store.n_rules))

    def test_shape_filter(self, store):
        for shape in SHAPES:
            hits = store.query(shape=shape)
            assert len(hits) == store.shape_counts()[shape]
            assert all(h.shape == shape for h in hits)

    def test_head_promo_filter(self, store):
        promos = {s.rule.head.promo for s in store.view}
        promo = sorted(p for p in promos if p)[0]
        hits = store.query(head_promo=promo)
        assert hits
        assert all(h.scored.rule.head.promo == promo for h in hits)
        expected = sum(1 for s in store.view if s.rule.head.promo == promo)
        assert len(hits) == expected

    def test_head_under_unknown_concept_is_empty(self, store):
        assert store.query(head_under="NoSuchConcept") == []
        assert store.query(head_under="NoSuchConcept", naive=True) == []

    def test_body_mentions_unknown_symbol_is_empty(self, store):
        assert store.query(body_mentions=["NoSuchItem"]) == []
        assert store.query(body_mentions=["NoSuchItem"], naive=True) == []

    def test_top_truncates_best_first(self, store):
        hits = store.query(top=3)
        assert [h.rank for h in hits] == [0, 1, 2]
        assert store.query(top=0) == []

    def test_min_conf_floor(self, store):
        hits = store.query(min_conf=0.5)
        assert all(h.scored.stats.confidence >= 0.5 for h in hits)
        naive = store.query(min_conf=0.5, naive=True)
        assert [h.rank for h in hits] == [h.rank for h in naive]

    def test_unknown_shape_rejected(self, store):
        with pytest.raises(ValidationError, match="galaxy"):
            store.query(shape="galaxy")

    def test_negative_top_rejected(self, store):
        with pytest.raises(ValidationError, match="top"):
            store.query(top=-1)

    def test_hit_dict_shape(self, store):
        (hit,) = store.query(shape="default")
        row = hit.to_dict()
        assert row["shape"] == "default"
        assert row["body"] == ""
        assert row["rank"] == hit.rank + 1
        assert isinstance(row["confidence"], float)
        assert isinstance(row["support"], float)

    def test_query_through_the_miner_facade(self, fitted):
        hits = fitted.query_rules(shape="concept", top=2)
        assert len(hits) <= 2
        assert all(h.shape == "concept" for h in hits)
