"""Unit tests for the FP-growth mining backend."""

from __future__ import annotations

import pytest

from repro.core.mining import MinerConfig, TransactionIndex, mine_rules
from repro.core.fpgrowth import frequent_bodies_fpgrowth
from repro.core.profit import SavingMOA
from repro.errors import MiningError, ValidationError


@pytest.fixture
def index(small_db, small_moa):
    return TransactionIndex(db=small_db, moa=small_moa, profit_model=SavingMOA())


class TestConfig:
    def test_algorithm_validated(self):
        with pytest.raises(ValidationError, match="algorithm"):
            MinerConfig(algorithm="eclat")
        MinerConfig(algorithm="fpgrowth")


class TestFrequentBodies:
    def test_bodies_in_generation_order(self, index):
        bodies = frequent_bodies_fpgrowth(
            index, 3, MinerConfig(min_support=0.05, max_body_size=2)
        )
        keys = list(bodies)
        assert keys == sorted(keys, key=lambda t: (len(t), t))

    def test_masks_exact(self, index):
        bodies = frequent_bodies_fpgrowth(
            index, 3, MinerConfig(min_support=0.05, max_body_size=2)
        )
        for body_ids, mask in bodies.items():
            assert mask == index.body_mask(body_ids)
            assert mask.bit_count() >= 3

    def test_bodies_ancestor_free(self, index, small_moa):
        bodies = frequent_bodies_fpgrowth(
            index, 3, MinerConfig(min_support=0.05, max_body_size=3)
        )
        for body_ids in bodies:
            gsales = [index.gsales[g] for g in body_ids]
            assert small_moa.is_ancestor_free(gsales)

    def test_max_body_size_respected(self, index):
        bodies = frequent_bodies_fpgrowth(
            index, 3, MinerConfig(min_support=0.05, max_body_size=1)
        )
        assert all(len(body) == 1 for body in bodies)

    def test_explosion_guard(self, index):
        config = MinerConfig(
            min_support=0.02, max_body_size=3, max_candidates_per_level=2
        )
        with pytest.raises(MiningError, match="explosion"):
            frequent_bodies_fpgrowth(index, 1, config)


class TestEndToEnd:
    def test_miner_routes_to_fpgrowth(self, small_db, small_moa):
        result = mine_rules(
            small_db,
            small_moa,
            SavingMOA(),
            MinerConfig(min_support=0.05, max_body_size=2, algorithm="fpgrowth"),
        )
        assert result.scored_rules
        assert result.frequent_body_count == len(result.body_tid_masks) or (
            result.frequent_body_count >= len({s.rule.body for s in result.scored_rules})
        )
