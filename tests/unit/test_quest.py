"""Unit tests for the IBM Quest-style basket generator."""

from __future__ import annotations

import pytest

from repro.data.quest import QuestConfig, QuestGenerator
from repro.errors import DataGenerationError


class TestQuestConfig:
    def test_defaults_valid(self):
        QuestConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_items": 1},
            {"n_patterns": 0},
            {"avg_pattern_size": 0.5},
            {"avg_transaction_size": 0},
            {"correlation": 1.5},
            {"corruption_mean": -0.1},
            {"corruption_sd": -1},
            {"max_transaction_size": 0},
            {"window_size": 0},
            {"window_size": 10_000},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(DataGenerationError):
            QuestConfig(**kwargs)

    def test_n_windows(self):
        assert QuestConfig(n_items=100, window_size=10).n_windows == 10
        assert QuestConfig(n_items=100).n_windows == 1


class TestPatternGeneration:
    def test_deterministic_given_seed(self):
        cfg = QuestConfig(n_items=50, n_patterns=10)
        a = QuestGenerator(config=cfg, seed=42)
        b = QuestGenerator(config=cfg, seed=42)
        assert [p.items for p in a.patterns] == [p.items for p in b.patterns]

    def test_different_seeds_differ(self):
        cfg = QuestConfig(n_items=200, n_patterns=20)
        a = QuestGenerator(config=cfg, seed=1)
        b = QuestGenerator(config=cfg, seed=2)
        assert [p.items for p in a.patterns] != [p.items for p in b.patterns]

    def test_pattern_items_in_range(self):
        gen = QuestGenerator(config=QuestConfig(n_items=30, n_patterns=15), seed=0)
        for pattern in gen.patterns:
            assert all(0 <= i < 30 for i in pattern.items)
            assert len(pattern.items) >= 1

    def test_corruption_levels_clipped(self):
        gen = QuestGenerator(
            config=QuestConfig(n_items=30, n_patterns=50, corruption_sd=0.5),
            seed=0,
        )
        assert all(0 <= p.corruption <= 1 for p in gen.patterns)

    def test_windowed_patterns_stay_in_window(self):
        cfg = QuestConfig(n_items=100, n_patterns=30, window_size=10)
        gen = QuestGenerator(config=cfg, seed=0)
        for pattern in gen.patterns:
            window = gen.window_of_pattern(pattern.pattern_id)
            lo, hi = window * 10, window * 10 + 10
            assert all(lo <= i < hi for i in pattern.items)

    def test_window_assignment_round_robin(self):
        cfg = QuestConfig(n_items=100, n_patterns=30, window_size=10)
        gen = QuestGenerator(config=cfg, seed=0)
        assert gen.window_of_pattern(0) == 0
        assert gen.window_of_pattern(10) == 0
        assert gen.window_of_pattern(13) == 3


class TestBasketGeneration:
    def test_basket_counts(self):
        gen = QuestGenerator(config=QuestConfig(n_items=50, n_patterns=10), seed=0)
        baskets = gen.generate(200)
        assert len(baskets) == 200

    def test_iter_generate_matches_generate(self):
        config = QuestConfig(n_items=50, n_patterns=10)
        batch = QuestGenerator(config=config, seed=4).generate(200)
        streamed = list(QuestGenerator(config=config, seed=4).iter_generate(200))
        assert streamed == batch

    def test_iter_generate_is_lazy(self):
        gen = QuestGenerator(config=QuestConfig(n_items=50, n_patterns=10), seed=4)
        iterator = gen.iter_generate(10**9)  # must not materialize anything
        first = next(iterator)
        assert first.items

    def test_baskets_nonempty_and_sorted_unique(self):
        gen = QuestGenerator(config=QuestConfig(n_items=50, n_patterns=10), seed=0)
        for basket in gen.generate(200):
            assert len(basket.items) >= 1
            assert list(basket.items) == sorted(set(basket.items))

    def test_size_cap_respected(self):
        cfg = QuestConfig(
            n_items=100,
            n_patterns=10,
            avg_transaction_size=30,
            max_transaction_size=8,
        )
        gen = QuestGenerator(config=cfg, seed=0)
        # The cap bounds the Poisson budget; the last pattern placed may
        # overshoot slightly (the original generator behaves the same), so
        # allow one pattern's worth of slack.
        assert all(len(b.items) <= 8 + 10 for b in gen.generate(100))

    def test_dominant_pattern_is_valid_id(self):
        cfg = QuestConfig(n_items=50, n_patterns=10)
        gen = QuestGenerator(config=cfg, seed=0)
        for basket in gen.generate(100):
            assert 0 <= basket.dominant_pattern < 10

    def test_avg_size_tracks_parameter(self):
        cfg = QuestConfig(n_items=500, n_patterns=50, avg_transaction_size=8)
        gen = QuestGenerator(config=cfg, seed=0)
        sizes = [len(b.items) for b in gen.generate(500)]
        assert 4 < sum(sizes) / len(sizes) < 12

    def test_weighted_patterns_skew_item_frequencies(self):
        """Exponential pattern weights must produce a skewed item histogram."""
        cfg = QuestConfig(n_items=200, n_patterns=20, avg_transaction_size=8)
        gen = QuestGenerator(config=cfg, seed=5)
        counts: dict[int, int] = {}
        for basket in gen.generate(400):
            for item in basket.items:
                counts[item] = counts.get(item, 0) + 1
        freqs = sorted(counts.values(), reverse=True)
        assert freqs[0] > 4 * freqs[len(freqs) // 2]

    def test_invalid_n_transactions(self):
        gen = QuestGenerator(config=QuestConfig(n_items=50, n_patterns=5), seed=0)
        with pytest.raises(DataGenerationError):
            gen.generate(0)
