"""Unit tests for sales, transactions and the transaction database."""

from __future__ import annotations

import pytest

from repro.core.sales import Sale, Transaction, TransactionDB, concat
from repro.errors import CatalogError, ValidationError


class TestSale:
    def test_defaults_to_unit_quantity(self):
        sale = Sale("X", "P1")
        assert sale.quantity == 1.0

    @pytest.mark.parametrize("qty", [0.0, -1.0])
    def test_nonpositive_quantity_rejected(self, qty):
        with pytest.raises(ValidationError, match="quantity"):
            Sale("X", "P1", quantity=qty)

    def test_empty_fields_rejected(self):
        with pytest.raises(ValidationError):
            Sale("", "P1")
        with pytest.raises(ValidationError):
            Sale("X", "")

    def test_recorded_profit_and_spend(self, small_catalog):
        sale = Sale("Sunchip", "M", quantity=3)
        assert sale.recorded_profit(small_catalog) == pytest.approx(3 * 2.5)
        assert sale.recorded_spend(small_catalog) == pytest.approx(3 * 4.5)

    def test_units_accounts_for_packing(self, small_catalog):
        assert Sale("Bread", "P1", quantity=2).units(small_catalog) == 2


class TestTransaction:
    def test_requires_nontarget_sales(self):
        with pytest.raises(ValidationError, match="non-target"):
            Transaction(0, (), Sale("Sunchip", "L"))

    def test_rejects_duplicate_nontarget_items(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Transaction(
                0,
                (Sale("Bread", "P1"), Sale("Bread", "P2")),
                Sale("Sunchip", "L"),
            )

    def test_rejects_target_in_basket(self):
        with pytest.raises(ValidationError, match="also appears"):
            Transaction(
                0,
                (Sale("Sunchip", "L"),),
                Sale("Sunchip", "M"),
            )

    def test_negative_tid_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            Transaction(-1, (Sale("Bread", "P1"),), Sale("Sunchip", "L"))

    def test_basket_property(self):
        t = Transaction(
            0, (Sale("Bread", "P1"), Sale("Perfume", "P1")), Sale("Sunchip", "L")
        )
        assert t.basket == ("Bread", "Perfume")


class TestTransactionDB:
    def test_validates_target_item_kind(self, small_catalog):
        bad = Transaction(0, (Sale("Bread", "P1"),), Sale("Perfume", "P1"))
        with pytest.raises(ValidationError, match="not a target"):
            TransactionDB(small_catalog, [bad])

    def test_validates_target_used_as_nontarget(self, small_catalog):
        bad = Transaction(0, (Sale("Sunchip", "L"),), Sale("Diamond", "D"))
        with pytest.raises(ValidationError, match="target item"):
            TransactionDB(small_catalog, [bad])

    def test_validates_promotion_codes_exist(self, small_catalog):
        bad = Transaction(0, (Sale("Bread", "P9"),), Sale("Sunchip", "L"))
        with pytest.raises(CatalogError):
            TransactionDB(small_catalog, [bad])

    def test_append_validates(self, small_catalog, small_db):
        before = len(small_db)
        small_db.append(
            Transaction(999, (Sale("Bread", "P1"),), Sale("Sunchip", "L"))
        )
        assert len(small_db) == before + 1
        with pytest.raises(ValidationError):
            small_db.append(
                Transaction(1000, (Sale("Bread", "P1"),), Sale("Bread", "P1"))
            )

    def test_subset_and_filtered(self, small_db):
        sub = small_db.subset([0, 1, 2])
        assert len(sub) == 3
        assert sub.catalog is small_db.catalog
        perfume_only = small_db.filtered(lambda t: "Perfume" in t.basket)
        assert all("Perfume" in t.basket for t in perfume_only)
        assert len(perfume_only) == 31

    def test_total_recorded_profit(self, small_db):
        # 15×M(2.5) + 15×H(3.0) + 29×L(1.8) + 1×Diamond(40)
        expected = 15 * 2.5 + 15 * 3.0 + 29 * 1.8 + 40.0
        assert small_db.total_recorded_profit() == pytest.approx(expected)

    def test_target_sale_histogram(self, small_db):
        hist = small_db.target_sale_histogram()
        assert hist[("Sunchip", "L")] == 29
        assert hist[("Diamond", "D")] == 1

    def test_concat_requires_shared_catalog(self, small_db, small_catalog):
        merged = concat([small_db.subset([0, 1]), small_db.subset([2, 3])])
        assert len(merged) == 4
        other = TransactionDB(
            catalog=type(small_catalog).from_items(list(small_catalog)),
            transactions=[],
        )
        with pytest.raises(ValidationError, match="share one catalog"):
            concat([small_db, other])

    def test_concat_empty_rejected(self):
        with pytest.raises(ValidationError, match="zero"):
            concat([])
