"""Differential tests of the accelerated fit path.

The sweep acceleration (shared :class:`~repro.core.index_cache.FitCache`,
mine-once support sweeps, parallel cross-validation) is only admissible
because every layer is exact: these tests pin the fast paths point-for-point
against the independent per-level refits they replace.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.index_cache import FitCache
from repro.core.mining import (
    MinerConfig,
    TransactionIndex,
    filter_mining_result,
    mine_rules,
)
from repro.core.moa import MOAHierarchy
from repro.core.profit import BinaryProfit, SavingMOA
from repro.data.datasets import build_dataset, dataset_i_config
from repro.eval.cross_validation import cross_validate, kfold_indices
from repro.eval.harness import (
    MinerFactory,
    eval_config_for_system,
    paper_recommenders,
    run_support_sweep,
)

SUPPORTS = (0.01, 0.02, 0.05)
SYSTEMS = ("PROF+MOA", "CONF-MOA", "kNN")
K_FOLDS = 3
SEED = 3


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        dataset_i_config(n_transactions=600, n_items=80, n_patterns=60, seed=SEED)
    )


@pytest.fixture(scope="module")
def splits(dataset):
    return kfold_indices(len(dataset.db), k=K_FOLDS, seed=SEED)


@pytest.fixture(scope="module")
def moa(dataset):
    return MOAHierarchy(dataset.db.catalog, dataset.hierarchy, use_moa=True)


def _rule_signature(result):
    return [
        (s.rule.body, s.rule.head, s.rule.order, s.stats) for s in result.scored_rules
    ]


def _ranked_signature(miner):
    return [
        (s.rule.body, s.rule.head, s.stats.rule_profit)
        for s in miner.require_fitted_recommender().ranked_rules
    ]


def _sweep_kwargs(**overrides):
    kwargs = dict(
        systems=SYSTEMS, k_folds=K_FOLDS, max_body_size=2, seed=SEED
    )
    kwargs.update(overrides)
    return kwargs


# ----------------------------------------------------------------------
# Mine-once filtering
# ----------------------------------------------------------------------


class TestFilterMiningResult:
    def test_matches_direct_mining(self, dataset, moa):
        base = mine_rules(
            dataset.db,
            moa,
            SavingMOA(),
            MinerConfig(min_support=SUPPORTS[0], max_body_size=2),
        )
        for min_support in SUPPORTS[1:]:
            direct = mine_rules(
                dataset.db,
                moa,
                SavingMOA(),
                MinerConfig(min_support=min_support, max_body_size=2),
            )
            filtered = filter_mining_result(base, min_support)
            assert _rule_signature(filtered) == _rule_signature(direct)
            assert filtered.default_rule.rule.head == direct.default_rule.rule.head
            assert filtered.default_rule.stats == direct.default_rule.stats
            # Documented deviation: the filter counts only rule-emitting
            # bodies, a lower bound on the direct run's frequent-body count.
            assert filtered.frequent_body_count <= direct.frequent_body_count

    def test_lower_support_than_base_rejected(self, dataset, moa):
        # The base run never generated rules below its own threshold;
        # silently returning its rule set would present an incomplete
        # result as complete, so filtering downward must fail loudly.
        base = mine_rules(
            dataset.db,
            moa,
            SavingMOA(),
            MinerConfig(min_support=SUPPORTS[1], max_body_size=2),
        )
        from repro.errors import MiningError

        with pytest.raises(MiningError, match="cannot filter"):
            filter_mining_result(base, SUPPORTS[0])
        # Same absolute count is fine — only strictly lower counts raise.
        same = filter_mining_result(base, SUPPORTS[1])
        assert same.minsup_count == base.minsup_count

    def test_chained_equals_one_shot(self, dataset, moa):
        base = mine_rules(
            dataset.db,
            moa,
            SavingMOA(),
            MinerConfig(min_support=SUPPORTS[0], max_body_size=2),
        )
        chained = filter_mining_result(
            filter_mining_result(base, SUPPORTS[1]), SUPPORTS[2]
        )
        one_shot = filter_mining_result(base, SUPPORTS[2])
        assert _rule_signature(chained) == _rule_signature(one_shot)
        assert chained.frequent_body_count == one_shot.frequent_body_count

    def test_full_fit_path_matches_refit(self, dataset):
        """fit_from_mining_result on a filtered result == a fresh fit.

        Covers the covering + pruning stages on top of the filter,
        including the undominated-order hints the filter translates.
        """
        factory = paper_recommenders(
            dataset.hierarchy, SUPPORTS[0], max_body_size=2, systems=("PROF+MOA",)
        )["PROF+MOA"]
        base = factory()
        base.fit(dataset.db)
        previous = base.mining_result
        for min_support in SUPPORTS[1:]:
            previous = filter_mining_result(previous, min_support)
            derived = factory.at_support(min_support)
            derived.fit_from_mining_result(previous)
            refit = factory.at_support(min_support)
            refit.fit(dataset.db)
            assert _ranked_signature(derived) == _ranked_signature(refit)


# ----------------------------------------------------------------------
# FitCache sharing
# ----------------------------------------------------------------------


class TestFitCache:
    def test_moa_and_index_reuse(self, dataset):
        cache = FitCache()
        catalog = dataset.db.catalog
        moa = cache.moa_for(catalog, dataset.hierarchy, True)
        assert cache.moa_for(catalog, dataset.hierarchy, True) is moa
        assert cache.moa_for(catalog, dataset.hierarchy, False) is not moa
        index = cache.index_for(dataset.db, moa, SavingMOA())
        assert cache.index_for(dataset.db, moa, SavingMOA()) is index
        assert cache.stats.moa_hits == 1
        assert cache.stats.index_hits == 1

    def test_structural_twin_matches_fresh_index(self, dataset, moa):
        """A with_profit_model twin mines exactly like a cold build."""
        cache = FitCache()
        shared_moa = cache.moa_for(dataset.db.catalog, dataset.hierarchy, True)
        cache.index_for(dataset.db, shared_moa, SavingMOA())
        twin = cache.index_for(dataset.db, shared_moa, BinaryProfit())
        assert cache.stats.structural_shares == 1
        fresh = TransactionIndex(
            db=dataset.db, moa=moa, profit_model=BinaryProfit()
        )
        config = MinerConfig(min_support=SUPPORTS[1], max_body_size=2)
        from_twin = mine_rules(dataset.db, shared_moa, BinaryProfit(), config, index=twin)
        from_fresh = mine_rules(dataset.db, moa, BinaryProfit(), config, index=fresh)
        assert _rule_signature(from_twin) == _rule_signature(from_fresh)

    def test_cached_fit_matches_uncached(self, dataset):
        cache = FitCache()
        for system in ("PROF+MOA", "CONF+MOA", "PROF-MOA"):
            factory = paper_recommenders(
                dataset.hierarchy, SUPPORTS[1], max_body_size=2, systems=(system,)
            )[system]
            cached = factory()
            cached.fit(dataset.db, cache=cache)
            plain = factory()
            plain.fit(dataset.db)
            assert _ranked_signature(cached) == _ranked_signature(plain)
        # Three systems over one db: one structural build, twins for the
        # profit-model variants, a fresh index only for the -MOA setting.
        assert cache.stats.index_misses == 3
        assert cache.stats.structural_shares == 1

    def test_clear_resets(self, dataset):
        cache = FitCache()
        cache.moa_for(dataset.db.catalog, dataset.hierarchy, True)
        cache.clear()
        assert cache.stats.moa_misses == 0
        cache.moa_for(dataset.db.catalog, dataset.hierarchy, True)
        assert cache.stats.moa_misses == 1


# ----------------------------------------------------------------------
# Sweep differentials
# ----------------------------------------------------------------------


def _sweep_table(sweep):
    return {
        (p.system, p.min_support): (p.gain, p.hit_rate, p.model_size)
        for p in sweep.points
    }


class TestSweepEquivalence:
    def test_mine_once_matches_per_level_refit(self, dataset):
        fast = run_support_sweep(dataset, SUPPORTS, **_sweep_kwargs())
        reference = run_support_sweep(
            dataset, SUPPORTS, **_sweep_kwargs(mine_once=False)
        )
        assert _sweep_table(fast) == _sweep_table(reference)
        for key, cv in reference.cv_results.items():
            assert fast.cv_results[key].fold_results == cv.fold_results

    def test_sweep_matches_independent_cross_validation(self, dataset, splits):
        """The whole accelerated stack vs a driver with no sharing at all."""
        sweep = run_support_sweep(dataset, SUPPORTS, **_sweep_kwargs())
        for system in SYSTEMS:
            for min_support in SUPPORTS:
                factory = paper_recommenders(
                    dataset.hierarchy,
                    min_support,
                    max_body_size=2,
                    systems=(system,),
                )[system]
                cv = cross_validate(
                    factory,
                    dataset.db,
                    dataset.hierarchy,
                    eval_config_for_system(None, system),
                    splits=splits,
                )
                fast = sweep.cv_results[(system, min_support)]
                assert fast.fold_results == cv.fold_results, (
                    f"{system} at {min_support} diverged"
                )

    def test_parallel_sweep_matches_sequential(self, dataset):
        sequential = run_support_sweep(dataset, SUPPORTS[:2], **_sweep_kwargs())
        parallel = run_support_sweep(
            dataset, SUPPORTS[:2], **_sweep_kwargs(n_jobs=2)
        )
        assert _sweep_table(parallel) == _sweep_table(sequential)
        for key, cv in sequential.cv_results.items():
            assert parallel.cv_results[key].fold_results == cv.fold_results


class TestParallelCrossValidation:
    def test_miner_factory_is_picklable(self, dataset):
        factory = paper_recommenders(
            dataset.hierarchy, SUPPORTS[1], max_body_size=2, systems=("PROF+MOA",)
        )["PROF+MOA"]
        assert isinstance(factory, MinerFactory)
        clone = pickle.loads(pickle.dumps(factory))
        assert _ranked_signature(clone().fit(dataset.db)) == _ranked_signature(
            factory().fit(dataset.db)
        )

    def test_parallel_folds_match_sequential(self, dataset, splits):
        factory = paper_recommenders(
            dataset.hierarchy, SUPPORTS[1], max_body_size=2, systems=("PROF+MOA",)
        )["PROF+MOA"]
        sequential = cross_validate(
            factory,
            dataset.db,
            dataset.hierarchy,
            eval_config_for_system(None, "PROF+MOA"),
            splits=splits,
        )
        parallel = cross_validate(
            factory,
            dataset.db,
            dataset.hierarchy,
            eval_config_for_system(None, "PROF+MOA"),
            splits=splits,
            n_jobs=2,
        )
        assert parallel.fold_results == sequential.fold_results
        assert parallel.gain == sequential.gain


# ----------------------------------------------------------------------
# Satellite fixes
# ----------------------------------------------------------------------


def test_body_mask_empty_body_matches_every_transaction(dataset, moa):
    index = TransactionIndex(db=dataset.db, moa=moa, profit_model=SavingMOA())
    mask = index.body_mask([])
    assert mask.bit_count() == len(dataset.db)
    assert mask == (1 << index.n) - 1


def test_sweep_series_uses_plain_attributes(dataset):
    sweep = run_support_sweep(
        dataset, SUPPORTS[1:], **_sweep_kwargs(systems=("CONF+MOA",))
    )
    series = sweep.series("model_size")
    assert set(series) == {"CONF+MOA"}
    points = {p.min_support: p.model_size for p in sweep.points}
    assert series["CONF+MOA"] == sorted(points.items())
