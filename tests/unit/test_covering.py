"""Unit tests for the covering tree (Section 4.1, Definition 8)."""

from __future__ import annotations

import pytest

from repro.core.covering import build_covering_tree
from repro.core.mining import MinerConfig, mine_rules
from repro.core.profit import SavingMOA


@pytest.fixture
def mined(small_db, small_moa):
    return mine_rules(
        small_db,
        small_moa,
        SavingMOA(),
        MinerConfig(min_support=0.05, max_body_size=2),
    )


@pytest.fixture
def tree(mined):
    return build_covering_tree(mined)


class TestTreeStructure:
    def test_root_is_default_rule(self, tree):
        assert tree.root.scored.rule.is_default
        assert tree.root.parent is None

    def test_parent_is_strictly_more_general(self, tree):
        moa = tree.index.moa
        for node in tree.nodes():
            if node.parent is None:
                continue
            assert moa.body_generalizes(
                node.parent.scored.rule.body, node.scored.rule.body
            )
            assert node.parent.scored.rule.body != node.scored.rule.body

    def test_parent_ranks_below_child(self, tree):
        # After dominated-rule removal, every more-general surviving rule is
        # ranked lower — "rules are increasingly more specific and ranked
        # higher walking down the tree".
        for node in tree.nodes():
            if node.parent is not None:
                assert node.parent.scored.rank_key() > node.scored.rank_key()

    def test_parent_is_highest_ranked_generalizer(self, tree):
        moa = tree.index.moa
        nodes = tree.nodes()
        for node in nodes:
            if node.parent is None:
                continue
            generalizers = [
                other
                for other in nodes
                if other is not node
                and other.scored.rule.body != node.scored.rule.body
                and moa.body_generalizes(
                    other.scored.rule.body, node.scored.rule.body
                )
            ]
            best = min(generalizers, key=lambda n: n.scored.rank_key())
            assert node.parent is best

    def test_children_backlinks_consistent(self, tree):
        for node in tree.nodes():
            for child in node.children:
                assert child.parent is node

    def test_no_dominated_rules_survive(self, tree):
        moa = tree.index.moa
        survivors = [node.scored for node in tree.nodes()]
        for scored in survivors:
            for other in survivors:
                if other is scored:
                    continue
                if (
                    other.rank_key() < scored.rank_key()
                    and moa.body_generalizes(other.rule.body, scored.rule.body)
                ):
                    pytest.fail(
                        f"{scored.rule.describe()} is dominated by "
                        f"{other.rule.describe()} but survived"
                    )


class TestCoverage:
    def test_coverage_partitions_transactions(self, tree, small_db):
        union = 0
        total = 0
        for node in tree.nodes():
            assert union & node.cover_mask == 0, "coverage overlaps"
            union |= node.cover_mask
            total += node.n_covered
        assert union == (1 << len(small_db)) - 1
        assert total == len(small_db)

    def test_coverage_is_mpf_assignment(self, tree, small_db):
        """Each transaction must be covered by its highest-ranked match."""
        moa = tree.index.moa
        nodes_by_rank = sorted(tree.nodes(), key=lambda n: n.scored.rank_key())
        for pos, transaction in enumerate(small_db):
            gsales = moa.generalizations_of_basket(transaction.nontarget_sales)
            expected = next(
                node
                for node in nodes_by_rank
                if node.scored.rule.body <= gsales
            )
            assert expected.cover_mask >> pos & 1, (
                f"transaction {pos} not covered by its MPF rule "
                f"{expected.scored.rule.describe()}"
            )

    def test_postorder_visits_children_first(self, tree):
        seen = set()
        for node in tree.postorder():
            for child in node.children:
                assert id(child) in seen
            seen.add(id(node))

    def test_len_counts_nodes(self, tree):
        assert len(tree) == len(tree.nodes())

    def test_dominated_removed_counter(self, mined, tree):
        total_rules = len(mined.all_rules)
        assert tree.n_dominated_removed == total_rules - len(tree)
