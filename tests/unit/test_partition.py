"""Unit tests for the SON two-pass partitioned miner.

The differential properties in ``tests/property/test_ooc_differential``
pin bit-identity against the in-RAM backends; these tests cover the
machinery itself: the n-independent local threshold, anti-monotone union
pruning, the persisted SON state (round-trip, corruption detection,
config echo), and the refresh entry points' error contract.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.core.engine.kernel import HAVE_NUMPY
from repro.core.engine.store import ChunkedTransactionStore
from repro.core.mining import MinerConfig, TransactionIndex, mine_rules
from repro.core.partition import (
    _local_minsup,
    _prune_union,
    mine_partitioned_db,
    mine_store,
    refresh_store,
)
from repro.core.profit import SavingMOA
from repro.errors import MiningError, SerializationError, ValidationError
from repro.obs import trace as obs

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the out-of-core miner needs numpy"
)

CONFIG = MinerConfig(
    min_support=0.05, max_body_size=2, backend="ooc", partition_size=16
)


@pytest.fixture
def small_store(small_db, small_moa, tmp_path):
    return ChunkedTransactionStore.build(
        tmp_path / "store",
        small_db,
        small_moa,
        SavingMOA(),
        partition_size=16,
    )


class TestLocalThreshold:
    def test_ceiling_of_scaled_support(self):
        # count_p < ceil(s * n_p) for every partition implies the global
        # count is < s * n, so every globally frequent body survives pass 1.
        assert _local_minsup(0.1, 100) == 10
        assert _local_minsup(0.101, 100) == 11
        assert _local_minsup(0.1, 7) == 1

    def test_floor_of_one(self):
        assert _local_minsup(0.0001, 5) == 1

    def test_independent_of_global_n(self):
        # The threshold must depend only on the partition — that is what
        # makes old pass-1 results reusable after the store grows.
        for n_p in (1, 16, 63, 64, 1000):
            assert _local_minsup(0.25, n_p) == max(1, -(-n_p // 4))


class TestPruneUnion:
    def test_drops_bodies_with_missing_subsets(self):
        union = {(1,), (2,), (1, 2), (1, 3)}
        # (1, 3) needs (3,) in the union; (1, 2) has both subsets.
        assert _prune_union(union) == [(1,), (2,), (1, 2)]

    def test_canonical_order(self):
        union = {(2,), (1,), (3,), (1, 3), (1, 2)}
        pruned = _prune_union(union)
        assert pruned == sorted(pruned, key=lambda b: (len(b), b))

    def test_prune_is_monotone_under_union_growth(self):
        # Refresh only ever *adds* to the raw union; pruning must never
        # lose a previously kept body when that happens.
        old = {(1,), (2,), (1, 2)}
        new = old | {(3,), (1, 3)}
        assert set(_prune_union(old)) <= set(_prune_union(new))


class TestMineStore:
    def test_matches_dense_mine(self, small_store, small_db, small_moa):
        ooc = mine_store(small_store, CONFIG)
        dense = mine_rules(
            small_db, small_moa, SavingMOA(), replace(CONFIG, backend="dense")
        )
        assert [s.rule for s in ooc.all_rules] == [
            s.rule for s in dense.all_rules
        ]
        assert [s.stats for s in ooc.all_rules] == [
            s.stats for s in dense.all_rules
        ]
        assert ooc.body_tid_masks == dense.body_tid_masks

    def test_emits_partition_counters(self, small_store):
        with obs.tracing("t") as trace:
            mine_store(small_store, CONFIG)
        assert (
            trace.counters["partition.partitions_mined"]
            == small_store.n_partitions
        )
        assert trace.counters["partition.union_candidates"] >= 1
        assert trace.counters["partition.globally_frequent"] >= 1
        assert trace.counters["mine.backend.ooc"] == 1

    def test_result_supports_filtering(self, small_store, small_db, small_moa):
        from repro.core.mining import filter_mining_result

        ooc = mine_store(small_store, CONFIG)
        dense = mine_rules(
            small_db, small_moa, SavingMOA(), replace(CONFIG, backend="dense")
        )
        filtered_ooc = filter_mining_result(ooc, 0.2)
        filtered_dense = filter_mining_result(dense, 0.2)
        assert [s.rule for s in filtered_ooc.all_rules] == [
            s.rule for s in filtered_dense.all_rules
        ]


class TestRouting:
    def test_backend_ooc_via_mine_rules(self, small_db, small_moa):
        ooc = mine_rules(small_db, small_moa, SavingMOA(), CONFIG)
        dense = mine_rules(
            small_db, small_moa, SavingMOA(), replace(CONFIG, backend="dense")
        )
        assert [s.rule for s in ooc.all_rules] == [
            s.rule for s in dense.all_rules
        ]

    def test_injected_index_rejected(self, small_db, small_moa):
        index = TransactionIndex(
            db=small_db, moa=small_moa, profit_model=SavingMOA()
        )
        with pytest.raises(MiningError, match="injected"):
            mine_rules(small_db, small_moa, SavingMOA(), CONFIG, index=index)

    def test_store_dir_must_be_fresh(self, small_db, small_moa, tmp_path):
        config = replace(CONFIG, store_dir=str(tmp_path / "d"))
        mine_partitioned_db(small_db, small_moa, SavingMOA(), config)
        with pytest.raises(MiningError, match="already contains"):
            mine_partitioned_db(small_db, small_moa, SavingMOA(), config)

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            MinerConfig(partition_size=0)
        with pytest.raises(ValidationError):
            MinerConfig(max_resident_mb=0.0)


class TestRefreshErrors:
    def test_refresh_without_state_is_loud(self, small_store, small_db):
        with pytest.raises(MiningError, match="no SON mining state"):
            refresh_store(small_store, list(small_db)[:4], CONFIG)

    def test_refresh_with_different_config_is_loud(self, small_store, small_db):
        mine_store(small_store, CONFIG)
        changed = replace(CONFIG, min_support=0.2)
        with pytest.raises(MiningError, match="differs"):
            refresh_store(small_store, list(small_db)[:4], changed)

    def test_refresh_needs_new_transactions(self, small_store):
        mine_store(small_store, CONFIG)
        with pytest.raises(MiningError, match="at least one"):
            refresh_store(small_store, [], CONFIG)

    def test_refresh_after_external_append_is_loud(
        self, small_store, small_db
    ):
        # Appending outside refresh_store leaves the state behind the
        # store; refreshing then would silently double-count, so it must
        # refuse.
        mine_store(small_store, CONFIG)
        small_store.append(list(small_db)[:4])
        with pytest.raises(MiningError, match="re-mine"):
            refresh_store(small_store, list(small_db)[:4], CONFIG)

    def test_corrupt_state_json_is_loud(self, small_store, small_db):
        mine_store(small_store, CONFIG)
        path = small_store.root / "son_state.json"
        path.write_text(path.read_text()[:40])
        with pytest.raises(SerializationError, match="corrupt"):
            refresh_store(small_store, list(small_db)[:4], CONFIG)

    def test_truncated_pair_counts_is_loud(self, small_store, small_db):
        mine_store(small_store, CONFIG)
        path = small_store.root / "son_state.pairs.i64"
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(SerializationError, match="truncated|corrupt"):
            refresh_store(small_store, list(small_db)[:4], CONFIG)

    def test_truncated_profits_is_loud(self, small_store, small_db):
        mine_store(small_store, CONFIG)
        path = small_store.root / "son_state.profits.f64"
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(SerializationError, match="truncated|corrupt"):
            refresh_store(small_store, list(small_db)[:4], CONFIG)

    def test_truncated_masks_is_loud(self, small_store, small_db):
        mine_store(small_store, CONFIG)
        path = small_store.root / "son_state.masks.bin"
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(SerializationError, match="truncated|corrupt"):
            refresh_store(small_store, list(small_db)[:4], CONFIG)

    def test_foreign_state_format_is_loud(self, small_store, small_db):
        mine_store(small_store, CONFIG)
        path = small_store.root / "son_state.json"
        payload = json.loads(path.read_text())
        payload["format"] = "not-son-state"
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="format"):
            refresh_store(small_store, list(small_db)[:4], CONFIG)


class TestRefresh:
    def test_refresh_equals_full_remine(
        self, small_db, small_moa, tmp_path
    ):
        transactions = list(small_db)
        base, extra = transactions[:48], transactions[48:]
        store = ChunkedTransactionStore.build(
            tmp_path / "grow", base, small_moa, SavingMOA(), partition_size=16
        )
        mine_store(store, CONFIG)
        refreshed = refresh_store(store, extra, CONFIG)
        full = mine_rules(
            small_db, small_moa, SavingMOA(), replace(CONFIG, backend="dense")
        )
        assert [s.rule for s in refreshed.all_rules] == [
            s.rule for s in full.all_rules
        ]
        assert [s.stats for s in refreshed.all_rules] == [
            s.stats for s in full.all_rules
        ]
        assert refreshed.body_tid_masks == full.body_tid_masks

    def test_repeated_refresh(self, small_db, small_moa, tmp_path):
        transactions = list(small_db)
        store = ChunkedTransactionStore.build(
            tmp_path / "grow",
            transactions[:20],
            small_moa,
            SavingMOA(),
            partition_size=16,
        )
        mine_store(store, CONFIG)
        refresh_store(store, transactions[20:40], CONFIG)
        refreshed = refresh_store(store, transactions[40:], CONFIG)
        full = mine_rules(
            small_db, small_moa, SavingMOA(), replace(CONFIG, backend="dense")
        )
        assert [s.rule for s in refreshed.all_rules] == [
            s.rule for s in full.all_rules
        ]

    def test_refresh_emits_delta_counter(self, small_db, small_moa, tmp_path):
        transactions = list(small_db)
        store = ChunkedTransactionStore.build(
            tmp_path / "grow",
            transactions[:48],
            small_moa,
            SavingMOA(),
            partition_size=16,
        )
        mine_store(store, CONFIG)
        with obs.tracing("t") as trace:
            refresh_store(store, transactions[48:], CONFIG)
        assert "partition.delta_candidates" in trace.counters
        # Pass 1 on refresh touches only the appended partitions.
        assert trace.counters["partition.partitions_mined"] < store.n_partitions
