"""Unit tests for the concept hierarchy (rooted DAG)."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import ROOT_CONCEPT, ConceptHierarchy
from repro.errors import HierarchyError


@pytest.fixture
def food_hierarchy() -> ConceptHierarchy:
    """The paper's Flake_Chicken ∈ Chicken ⊂ Meat ⊂ Food ⊂ ANY chain."""
    return ConceptHierarchy(
        parents={
            "Food": (ROOT_CONCEPT,),
            "Meat": ("Food",),
            "Chicken": ("Meat",),
            "Flake_Chicken": ("Chicken",),
            "Sunchip": (ROOT_CONCEPT,),
        },
        items={"Flake_Chicken", "Sunchip"},
    )


class TestConstruction:
    def test_flat_hierarchy(self):
        h = ConceptHierarchy.flat(["a", "b"])
        assert h.parents_of("a") == (ROOT_CONCEPT,)
        assert h.concepts == set()

    def test_from_groups_attaches_orphans_to_root(self):
        h = ConceptHierarchy.from_groups({"G": ["a"]}, items=["a", "b"])
        assert h.parents_of("b") == (ROOT_CONCEPT,)
        assert h.parents_of("a") == ("G",)
        assert h.parents_of("G") == (ROOT_CONCEPT,)

    def test_root_cannot_have_parents(self):
        with pytest.raises(HierarchyError, match="root"):
            ConceptHierarchy(parents={ROOT_CONCEPT: ("X",)}, items=set())

    def test_cycle_detected(self):
        with pytest.raises(HierarchyError, match="cycle"):
            ConceptHierarchy(
                parents={"A": ("B",), "B": ("A",)},
                items=set(),
            )

    def test_item_cannot_be_parent(self):
        with pytest.raises(HierarchyError, match="cannot be a parent"):
            ConceptHierarchy(
                parents={"a": (ROOT_CONCEPT,), "b": ("a",)},
                items={"a", "b"},
            )

    def test_dangling_parent_rejected(self):
        with pytest.raises(HierarchyError, match="unknown parent"):
            ConceptHierarchy(parents={"a": ("Ghost",)}, items={"a"})

    def test_detached_item_rejected(self):
        with pytest.raises(HierarchyError, match="not attached"):
            ConceptHierarchy(parents={}, items={"a"})

    def test_empty_parent_tuple_rejected(self):
        with pytest.raises(HierarchyError, match="empty"):
            ConceptHierarchy(parents={"a": ()}, items={"a"})


class TestQueries:
    def test_ancestors_exclude_root_by_default(self, food_hierarchy):
        assert food_hierarchy.ancestors_of("Flake_Chicken") == {
            "Chicken",
            "Meat",
            "Food",
        }

    def test_ancestors_with_root(self, food_hierarchy):
        assert ROOT_CONCEPT in food_hierarchy.ancestors_of(
            "Flake_Chicken", include_root=True
        )

    def test_target_style_item_has_no_concept_ancestors(self, food_hierarchy):
        assert food_hierarchy.ancestors_of("Sunchip") == set()

    def test_is_ancestor(self, food_hierarchy):
        assert food_hierarchy.is_ancestor("Meat", "Flake_Chicken")
        assert not food_hierarchy.is_ancestor("Flake_Chicken", "Meat")
        assert food_hierarchy.is_ancestor(ROOT_CONCEPT, "Meat")
        assert not food_hierarchy.is_ancestor(ROOT_CONCEPT, ROOT_CONCEPT)

    def test_depth(self, food_hierarchy):
        assert food_hierarchy.depth_of(ROOT_CONCEPT) == 0
        assert food_hierarchy.depth_of("Food") == 1
        assert food_hierarchy.depth_of("Flake_Chicken") == 4

    def test_children_of(self, food_hierarchy):
        assert food_hierarchy.children_of("Meat") == ["Chicken"]

    def test_unknown_node_raises(self, food_hierarchy):
        with pytest.raises(HierarchyError, match="unknown"):
            food_hierarchy.parents_of("Ghost")

    def test_multiple_inheritance_dag(self):
        h = ConceptHierarchy(
            parents={
                "Snack": (ROOT_CONCEPT,),
                "Healthy": (ROOT_CONCEPT,),
                "Granola": ("Snack", "Healthy"),
            },
            items={"Granola"},
        )
        assert h.ancestors_of("Granola") == {"Snack", "Healthy"}


class TestCatalogValidation:
    def test_targets_must_hang_off_root(self, small_catalog):
        bad = ConceptHierarchy.for_catalog
        with pytest.raises(HierarchyError, match="direct child"):
            bad(small_catalog, {"Luxury": ["Diamond"]})

    def test_missing_nontarget_rejected(self, small_catalog):
        h = ConceptHierarchy.from_groups({}, items=["Perfume"])
        with pytest.raises(HierarchyError, match="missing"):
            h.validate_against_catalog(small_catalog)

    def test_for_catalog_happy_path(self, small_catalog):
        h = ConceptHierarchy.for_catalog(small_catalog, {"Grocery": ["Bread"]})
        assert h.ancestors_of("Bread") == {"Grocery"}
        assert h.parents_of("Sunchip") == (ROOT_CONCEPT,)


class TestDotExport:
    def test_dot_contains_all_nodes_and_edges(self, food_hierarchy):
        from repro.core.hierarchy import to_dot

        dot = to_dot(food_hierarchy)
        assert dot.startswith("digraph H {")
        assert '"Meat" -> "Chicken";' in dot
        assert '"ANY" [shape=doublecircle];' in dot
        assert '"Flake_Chicken" [shape=box];' in dot
        assert dot.rstrip().endswith("}")

    def test_dot_deterministic(self, food_hierarchy):
        from repro.core.hierarchy import to_dot

        assert to_dot(food_hierarchy) == to_dot(food_hierarchy)
