"""Unit tests for the synthetic grouped hierarchy generator."""

from __future__ import annotations

import pytest

from repro.core.hierarchy import ROOT_CONCEPT
from repro.core.items import Item, ItemCatalog
from repro.data.hierarchy_gen import grouped_hierarchy
from repro.errors import DataGenerationError

from tests.conftest import promo


@pytest.fixture
def catalog() -> ItemCatalog:
    items = [Item(f"I{i:03d}", (promo("P1", 1.0, 0.5),)) for i in range(25)]
    items.append(Item("T1", (promo("P1", 2.0, 1.0),), is_target=True))
    return ItemCatalog.from_items(items)


class TestGroupedHierarchy:
    def test_group_sizes(self, catalog):
        h = grouped_hierarchy(catalog, group_size=10, fanout=2, levels=2)
        assert set(h.children_of("C1")) == {f"I{i:03d}" for i in range(10)}
        assert len(h.children_of("C3")) == 5  # remainder group

    def test_two_levels(self, catalog):
        h = grouped_hierarchy(catalog, group_size=10, fanout=2, levels=2)
        assert h.parents_of("C1") == ("D1",)
        assert h.parents_of("C3") == ("D2",)
        assert h.parents_of("D1") == (ROOT_CONCEPT,)

    def test_single_level(self, catalog):
        h = grouped_hierarchy(catalog, group_size=5, levels=1)
        assert h.parents_of("C1") == (ROOT_CONCEPT,)
        assert "D1" not in h.concepts

    def test_targets_stay_under_root(self, catalog):
        h = grouped_hierarchy(catalog, group_size=10)
        assert h.parents_of("T1") == (ROOT_CONCEPT,)

    def test_validates_against_catalog(self, catalog):
        h = grouped_hierarchy(catalog)
        h.validate_against_catalog(catalog)

    def test_single_group_stops_stacking(self, catalog):
        h = grouped_hierarchy(catalog, group_size=100, levels=3)
        assert h.parents_of("C1") == (ROOT_CONCEPT,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group_size": 0},
            {"fanout": 0},
            {"levels": 0},
            {"levels": 99},
        ],
    )
    def test_validation(self, catalog, kwargs):
        with pytest.raises(DataGenerationError):
            grouped_hierarchy(catalog, **kwargs)
