"""Unit tests for the multi-packing dataset III."""

from __future__ import annotations

import pytest

from repro.core.generalized import GSale
from repro.core.moa import MOAHierarchy
from repro.core.promotion import is_more_favorable
from repro.core.sales import Sale
from repro.data.packs import PacksConfig, make_dataset_packs, pack_code_name
from repro.errors import DataGenerationError


@pytest.fixture(scope="module")
def packs():
    return make_dataset_packs(
        PacksConfig(n_transactions=400, n_items=60, seed=3)
    )


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_transactions": 0},
            {"bulk_share": 1.5},
            {"dispersion": -0.1},
            {"signal_strength": 2.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(DataGenerationError):
            PacksConfig(**kwargs)

    def test_code_names(self):
        assert pack_code_name("S", 1) == "S1"
        assert pack_code_name("B", 2) == "B2"
        with pytest.raises(DataGenerationError):
            pack_code_name("X", 1)
        with pytest.raises(DataGenerationError):
            pack_code_name("S", 3)


class TestChains:
    def test_two_incomparable_chains(self, packs):
        item = packs.db.catalog.get("T1")
        s1, s2 = item.promotion("S1"), item.promotion("S2")
        b1, b2 = item.promotion("B1"), item.promotion("B2")
        assert is_more_favorable(s1, s2)
        assert is_more_favorable(b1, b2)
        for single in (s1, s2):
            for bulk in (b1, b2):
                assert not is_more_favorable(single, bulk)
                assert not is_more_favorable(bulk, single)

    def test_bulk_discounts_per_unit(self, packs):
        item = packs.db.catalog.get("T1")
        assert item.promotion("B1").unit_price < item.promotion("S1").unit_price
        assert item.promotion("B1").packing == 4

    def test_moa_never_crosses_modes(self, packs):
        moa = MOAHierarchy(packs.db.catalog, packs.hierarchy)
        heads = moa.target_heads_of_sale(Sale("T1", "S2"))
        assert heads == {
            GSale.promo_form("T1", "S1"),
            GSale.promo_form("T1", "S2"),
        }
        heads = moa.target_heads_of_sale(Sale("T1", "B2"))
        assert heads == {
            GSale.promo_form("T1", "B1"),
            GSale.promo_form("T1", "B2"),
        }


class TestGeneration:
    def test_shapes(self, packs):
        assert len(packs.db) == 400
        assert packs.name == "dataset-III-packs"
        modes = {t.target_sale.promo_code[0] for t in packs.db}
        assert modes == {"S", "B"}

    def test_bulk_buyers_buy_single_packages(self, packs):
        for t in packs.db:
            if t.target_sale.promo_code.startswith("B"):
                assert t.target_sale.quantity == 1.0
            else:
                assert 1 <= t.target_sale.quantity <= 4

    def test_deterministic(self):
        config = PacksConfig(n_transactions=100, n_items=40, seed=5)
        a = make_dataset_packs(config)
        b = make_dataset_packs(config)
        assert [t.target_sale for t in a.db] == [t.target_sale for t in b.db]

    def test_bulk_share_zero_removes_bulk(self):
        ds = make_dataset_packs(
            PacksConfig(
                n_transactions=200,
                n_items=40,
                bulk_share=0.0,
                signal_strength=1.0,
                seed=1,
            )
        )
        assert all(t.target_sale.promo_code.startswith("S") for t in ds.db)

    def test_hierarchy_valid(self, packs):
        packs.hierarchy.validate_against_catalog(packs.db.catalog)
