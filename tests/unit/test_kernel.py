"""Unit tests for the dense chunked-bitset kernel (engine layer)."""

from __future__ import annotations

import pytest

from repro.core.engine import kernel as kernel_mod
from repro.core.engine.kernel import (
    BACKENDS,
    DENSE_MIN_TRANSACTIONS,
    HAVE_NUMPY,
    DenseBitsetKernel,
    map_chunks,
    parallel_ranges,
    resolve_backend,
    resolve_jobs,
)
from repro.core.mining import TransactionIndex
from repro.errors import MiningError, ValidationError

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="dense kernel needs numpy"
)

# Masks straddling the uint64 chunk seams: empty, single low bit, the
# 63/64/65 boundary bits, a full first chunk, and a sparse wide mask.
BOUNDARY_MASKS = [
    0,
    1,
    1 << 63,
    1 << 64,
    1 << 65,
    (1 << 64) - 1,
    (1 << 129) | (1 << 64) | 1,
]


@needs_numpy
class TestMaskRoundTrip:
    @pytest.mark.parametrize("mask", BOUNDARY_MASKS)
    def test_from_int_to_int_exact(self, mask):
        kernel = DenseBitsetKernel(130, {})
        assert DenseBitsetKernel.to_int(kernel.from_int(mask)) == mask

    @pytest.mark.parametrize("mask", BOUNDARY_MASKS)
    def test_positions_match_iter_bits(self, mask):
        kernel = DenseBitsetKernel(130, {})
        assert kernel.positions(mask).tolist() == list(
            TransactionIndex.iter_bits(mask)
        )

    def test_pack_masks_popcounts(self):
        kernel = DenseBitsetKernel(130, {})
        matrix = kernel.pack_masks(BOUNDARY_MASKS)
        assert kernel.popcounts(matrix).tolist() == [
            mask.bit_count() for mask in BOUNDARY_MASKS
        ]


@needs_numpy
class TestJoinPairs:
    def test_join_keeps_exactly_frequent_intersections(self):
        masks = {0: 0b1111, 1: 0b0110, 2: 0b1010, 3: 0b0001}
        kernel = DenseBitsetKernel(4, masks)
        rows = kernel.gather_rows([0, 1, 2, 3])
        left, right = [0, 0, 1], [1, 2, 3]
        kept, anded = kernel.join_pairs(rows, left, right, min_count=2)
        expected = [
            (pos, masks[l] & masks[r])
            for pos, (l, r) in enumerate(zip(left, right))
            if (masks[l] & masks[r]).bit_count() >= 2
        ]
        assert kept == [pos for pos, _ in expected]
        assert [DenseBitsetKernel.to_int(row) for row in anded] == [
            mask for _, mask in expected
        ]

    def test_intersect_unknown_gid_is_empty(self):
        kernel = DenseBitsetKernel(4, {0: 0b1111})
        assert kernel.intersect_to_int([0, 99]) == 0
        assert kernel.intersect_to_int([0]) == 0b1111


class TestResolveBackend:
    def test_explicit_bigint_always_wins(self):
        assert resolve_backend("bigint", 10**9) == "bigint"

    @needs_numpy
    def test_auto_thresholds_on_size(self):
        assert resolve_backend("auto", DENSE_MIN_TRANSACTIONS - 1) == "bigint"
        assert resolve_backend("auto", DENSE_MIN_TRANSACTIONS) == "dense"

    def test_unknown_backend_rejected(self):
        with pytest.raises(MiningError, match="unknown mining backend"):
            resolve_backend("sparse", 100)

    def test_without_numpy_auto_falls_back_dense_raises(self, monkeypatch):
        monkeypatch.setattr(kernel_mod, "HAVE_NUMPY", False)
        assert kernel_mod.resolve_backend("auto", 10**9) == "bigint"
        with pytest.raises(MiningError, match="requires numpy"):
            kernel_mod.resolve_backend("dense", 10**9)

    def test_backends_tuple_matches_cli_choices(self):
        assert set(BACKENDS) == {"auto", "dense", "bigint", "ooc"}


class TestResolveJobs:
    def test_defaults_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2  # explicit wins over the env

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValidationError, match="n_jobs"):
            resolve_jobs(0)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValidationError, match="REPRO_JOBS"):
            resolve_jobs(None)


class TestChunkedDispatch:
    def test_parallel_ranges_cover_without_overlap(self):
        for total, size in [(0, 4), (3, 4), (8, 4), (9, 4), (1, 1)]:
            ranges = parallel_ranges(total, size)
            flat = [i for start, stop in ranges for i in range(start, stop)]
            assert flat == list(range(total))

    def test_map_chunks_sequential_order(self):
        seen = []

        def work(start, stop):
            seen.append((start, stop))
            return list(range(start, stop))

        chunks = list(map_chunks(work, 10, 3, None, 1))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
        assert seen == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_map_chunks_threaded_preserves_order(self):
        from concurrent.futures import ThreadPoolExecutor

        def work(start, stop):
            return list(range(start, stop))

        with ThreadPoolExecutor(max_workers=3) as executor:
            chunks = list(map_chunks(work, 100, 7, executor, 3))
        assert [i for chunk in chunks for i in chunk] == list(range(100))
